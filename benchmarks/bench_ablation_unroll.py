"""Ablation: unroll factor and pipeline depth beyond the paper's sweep.

DESIGN.md §5.1: the register file caps useful unrolling.  We sweep unroll
factors 1–4 at several software-pipeline depths, print the surface, and
verify the paper's qualitative findings: deeper pipelining helps until the
even-pipe issue bound (~5 cycles/transition), and the spilled variant is
always worse than its unspilled sibling.
"""

import pytest

from repro.analysis import ascii_table
from repro.core import DFATile
from repro.core import kernels as K
from repro.dfa import AhoCorasick
from repro.workloads import random_signatures, streams_for_tile

PATTERNS = random_signatures(8, 3, 7, seed=70)


@pytest.fixture(scope="module")
def tile():
    return DFATile(AhoCorasick(PATTERNS, 32).to_dfa())


def run_spec(tile, unroll, depth, admit, spill=False):
    """Temporarily install a custom spec as version 2 and measure it."""
    saved = K.KERNEL_SPECS[2]
    K.KERNEL_SPECS[2] = K.KernelSpec(2, True, unroll, depth, spill,
                                     "ablation", admit=admit)
    try:
        tile._kernel_cache.clear()
        streams = streams_for_tile(192, PATTERNS, seed=71)
        result = tile.run_streams(streams, version=2)
        return result.cycles_per_transition, result.stats
    finally:
        K.KERNEL_SPECS[2] = saved
        tile._kernel_cache.clear()


def test_unroll_depth_surface(tile, report):
    rows = []
    surface = {}
    for unroll in (1, 2, 3, 4):
        for depth in (3, 6, 9, 12, 16):
            cpt, stats = run_spec(tile, unroll, depth, admit=2)
            surface[(unroll, depth)] = cpt
            rows.append([unroll, depth, round(cpt, 2),
                         round(stats.stall_pct, 1),
                         round(stats.dual_issue_pct, 1),
                         stats.registers_used])
    text = ascii_table(
        ["unroll", "depth", "cyc/tr", "stall%", "dual%", "regs"],
        rows, title="Ablation - unroll factor x pipeline depth "
                    "(version-2 kernel skeleton)")
    report("ablation_unroll", text)
    # Depth helps at every unroll factor.
    for unroll in (1, 2, 3, 4):
        assert surface[(unroll, 16)] <= surface[(unroll, 3)]
    # Unrolling amortizes the loop fill/drain bubble.
    assert surface[(3, 16)] < surface[(1, 16)]


def test_even_pipe_issue_bound(tile):
    """No configuration beats ~5 cycles/transition: 5 even-pipe
    instructions per transition bound the kernel."""
    best = min(run_spec(tile, u, 16, admit=3)[0] for u in (2, 3, 4))
    assert best >= 5.0


def test_spill_always_regresses(tile):
    for unroll in (3, 4):
        clean, _ = run_spec(tile, unroll, 16, admit=3, spill=False)
        spilled, _ = run_spec(tile, unroll, 16, admit=3, spill=True)
        assert spilled > clean


def test_register_demand_grows_with_depth(tile):
    _, shallow = run_spec(tile, 2, 3, admit=1)
    _, deep = run_spec(tile, 2, 16, admit=1)
    assert deep.registers_used > shallow.registers_used


def test_benchmark_kernel_build(benchmark, tile):
    builder = tile._builder

    def build():
        return builder.build(4, 16368)  # largest unroll-3 block in 16 KB

    kernel = benchmark.pedantic(build, rounds=3, iterations=1)
    assert kernel.transitions == 16368
