"""Ablation: input-block size (DESIGN.md §5.4).

The buffer size threads through three of the paper's trade-offs at once:

* **DMA efficiency** (Figure 2) — small blocks waste bus time on setup;
* **tile capacity** (Figure 3) — big buffers eat STT space;
* **latency hiding** (Figure 5) — the compute/transfer ratio sets the
  double-buffering headroom.

This bench sweeps the block size across the paper's range and prints the
full trade surface; the paper's choices (4–16 KB buffers, transfers ≥
512 B) sit exactly on the efficient frontier.
"""

import pytest

from repro.analysis import PAPER_TILE_GBPS, ascii_table
from repro.cell.memory import BandwidthModel
from repro.core.planner import PlanError, plan_tile
from repro.core.schedule import double_buffer_schedule

BLOCKS = [64, 128, 256, 512, 1024, 4096, 8192, 16384, 32768]


@pytest.fixture(scope="module")
def surface():
    bw = BandwidthModel()
    rows = {}
    for size in BLOCKS:
        plan = plan_tile(buffer_bytes=size)
        compute = size * 8 / (PAPER_TILE_GBPS * 1e9)
        transfer = bw.transfer_seconds(size, block_size=size)
        sched = double_buffer_schedule(8, compute, transfer)
        rows[size] = {
            "states": plan.max_states,
            "dma_eff": bw.per_spe_uncontended(size) / bw.per_spe_uncontended(
                1 << 20),
            "headroom": compute / transfer,
            "hidden": sched.exposed_transfer_time() <= transfer * 1.01,
        }
    return rows


def test_block_size_report(surface, report):
    rows = []
    for size, r in surface.items():
        rows.append([
            f"{size} B",
            r["states"],
            f"{r['dma_eff'] * 100:.0f}%",
            round(r["headroom"], 2),
            "yes" if r["hidden"] else "NO",
        ])
    text = ascii_table(
        ["block", "tile states", "DMA efficiency", "compute/transfer",
         "transfers hidden"],
        rows, title="Ablation - input block size "
                    "(capacity vs DMA efficiency vs hiding)")
    report("ablation_block_size", text)


def test_capacity_monotone_against_block_size(surface):
    states = [surface[b]["states"] for b in BLOCKS]
    assert all(a >= b for a, b in zip(states, states[1:]))


def test_dma_efficiency_monotone_with_block_size(surface):
    eff = [surface[b]["dma_eff"] for b in BLOCKS]
    assert all(a <= b for a, b in zip(eff, eff[1:]))


def test_hiding_holds_across_paper_range(surface):
    """Paper: overlap works 'down to 512 bytes'."""
    for size in BLOCKS:
        if size >= 512:
            assert surface[size]["hidden"]


def test_headroom_grows_with_block_size(surface):
    """Bigger blocks amortize the DMA setup, widening the compute margin
    that makes the Figure-5 overlap robust.  Above ~256 B the contended
    per-SPE rate is pinned at 2.76 GB/s, so the ratio plateaus at 4.3."""
    assert surface[16384]["headroom"] > surface[64]["headroom"]
    assert surface[16384]["headroom"] > 4


def test_paper_choice_on_the_frontier(surface):
    """4-16 KB: >= 1500 states AND >= 97 % DMA efficiency AND hidden."""
    for size in (4096, 8192, 16384):
        r = surface[size]
        assert r["states"] >= 1500
        assert r["dma_eff"] > 0.9
        assert r["hidden"]
    # 10x bigger buffers sacrifice hundreds of states for <2% efficiency.
    assert surface[32768]["states"] < surface[16384]["states"] - 200


def test_benchmark_surface(benchmark):
    bw = BandwidthModel()

    def sweep():
        return [bw.per_spe_uncontended(b) for b in BLOCKS for _ in range(8)]

    values = benchmark(sweep)
    assert len(values) == len(BLOCKS) * 8
