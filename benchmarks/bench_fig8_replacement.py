"""Figure 8: the dynamic STT-replacement schedule.

Each 25.64 µs period processes one input buffer against the resident STT
slot while the MFC refills the other input buffer (5.94 µs) and streams
one 47-48 KB chunk of the next dictionary slice into the shadow slot
(17.5-17.8 µs) — a complete 95 KB slice lands every two periods.  We
rebuild the timeline, verify the overlap invariants, and render the Gantt
chart next to the paper's numbers.
"""

import pytest

from repro.analysis import ascii_table
from repro.core import replacement_schedule
from repro.core.replacement import HALF_TILE_STT_BYTES, ReplacementMatcher
from repro.core.schedule import ScheduleError
from repro.workloads import plant_matches, random_payload, \
    random_signatures

PAPER_PERIOD_US = 25.64
PAPER_INPUT_US = 5.94
PAPER_CHUNK1_US = 17.83
PAPER_CHUNK2_US = 17.46


@pytest.fixture(scope="module")
def schedule():
    return replacement_schedule(3, periods=8)


def test_figure8_report(schedule, report):
    rows = [
        ["compute period", PAPER_PERIOD_US,
         round(schedule.on("compute")[0].duration * 1e6, 2)],
        ["input load", PAPER_INPUT_US,
         round([iv for iv in schedule.on("dma")
                if "input" in iv.label][0].duration * 1e6, 2)],
        ["STT chunk 1/2", PAPER_CHUNK1_US,
         round([iv for iv in schedule.on("dma")
                if "chunk 1/2" in iv.label][0].duration * 1e6, 2)],
        ["STT chunk 2/2", PAPER_CHUNK2_US,
         round([iv for iv in schedule.on("dma")
                if "chunk 2/2" in iv.label][0].duration * 1e6, 2)],
    ]
    table = ascii_table(["interval", "paper us", "measured us"], rows,
                        title="Figure 8 - dynamic STT replacement "
                              "schedule")
    report("fig8_replacement", table + "\n\n" + schedule.render())


def test_paper_interval_durations(schedule):
    period = schedule.on("compute")[0].duration * 1e6
    assert period == pytest.approx(PAPER_PERIOD_US, rel=0.01)
    chunks = [iv for iv in schedule.on("dma") if "chunk" in iv.label]
    assert chunks[0].duration * 1e6 == pytest.approx(PAPER_CHUNK1_US,
                                                     rel=0.02)
    assert chunks[1].duration * 1e6 == pytest.approx(PAPER_CHUNK2_US,
                                                     rel=0.02)


def test_slice_load_spans_two_periods(schedule):
    """One 95 KB slice needs two periods of DMA slack — the 2(n-1) term."""
    computes = schedule.on("compute")
    period = computes[0].duration
    chunks = [iv for iv in schedule.on("dma") if "chunk" in iv.label]
    slice_time = chunks[0].duration + chunks[1].duration
    assert period < slice_time < 2 * period


def test_dma_fits_inside_period(schedule):
    """input load + one chunk must fit one period (the paper's chunking
    exists precisely to satisfy this)."""
    period = schedule.on("compute")[0].duration
    input_t = [iv for iv in schedule.on("dma")
               if "input" in iv.label][0].duration
    chunk_t = max(iv.duration for iv in schedule.on("dma")
                  if "chunk" in iv.label)
    assert input_t + chunk_t < period


def test_oversized_slice_rejected():
    with pytest.raises(ScheduleError, match="infeasible"):
        replacement_schedule(2, periods=4,
                             stt_bytes=HALF_TILE_STT_BYTES * 4)


def test_schedule_invariants(schedule):
    schedule.verify()  # no double booking, no buffer conflicts


def test_functional_replacement_still_exact():
    """Time multiplexing the dictionary must not change the matches."""
    patterns = random_signatures(40, 3, 8, seed=31)
    matcher = ReplacementMatcher.from_patterns(patterns,
                                               states_per_slice=60)
    assert matcher.num_slices >= 3
    from repro.core.engine import VectorDFAEngine
    from repro.dfa import build_dfa
    block = plant_matches(random_payload(30_000, seed=1), patterns, 80,
                          seed=2)
    assert matcher.scan_block(block)[0] == \
        VectorDFAEngine(build_dfa(patterns, 32)).count_block(block)


def test_benchmark_schedule_construction(benchmark):
    def build():
        return replacement_schedule(5, periods=40)

    sched = benchmark(build)
    sched.verify()
