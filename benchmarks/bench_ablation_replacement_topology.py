"""Ablation: replacement topology (DESIGN.md §5.3).

The paper's §6 deploys dynamic STT replacement as P parallel SPEs *each*
cycling through all n slices — throughput P·5.11/(2(n−1)).  An
alternative spends SPEs on *series* chains that keep slices resident
(k ≤ 2 per SPE needs no DMA cycling at all).  ``plan_topology`` optimizes
over the spectrum; this bench maps where each strategy wins.

Finding (and shape assertion): for dictionaries beyond ~P slices the
series-distributed layout dominates the paper's formula, by a growing
factor — an observation the paper's evaluation does not explore.
"""

import pytest

from repro.analysis import ascii_table
from repro.core.replacement import (
    chain_gbps,
    effective_gbps,
    plan_topology,
)

SPES = 8


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for n in range(1, 17):
        paper = effective_gbps(n, num_spes=SPES)
        best = plan_topology(n, SPES)
        out[n] = (paper, best)
    return out


def test_topology_report(sweep, report):
    rows = []
    for n, (paper, best) in sweep.items():
        rows.append([
            n,
            round(paper, 2),
            round(best.gbps, 2),
            best.slices_per_spe,
            f"{best.parallel_chains}x{best.chain_length}",
            round(best.gbps / paper, 2),
        ])
    text = ascii_table(
        ["slices", "paper Gbps", "best Gbps", "slices/SPE", "chains",
         "gain"],
        rows, title=f"Ablation - replacement topology on {SPES} SPEs "
                    f"(paper: every SPE cycles all slices)")
    report("ablation_replacement_topology", text)


def test_small_dictionaries_agree(sweep):
    """Up to one slice per SPE both strategies coincide (fully parallel,
    fully resident)."""
    paper, best = sweep[1]
    assert best.gbps == pytest.approx(paper)
    assert best.slices_per_spe == 1


def test_series_wins_for_large_dictionaries(sweep):
    for n in (8, 12, 16):
        paper, best = sweep[n]
        assert best.gbps > paper
    # The advantage grows with dictionary size.
    gains = [sweep[n][1].gbps / sweep[n][0] for n in (8, 12, 16)]
    assert gains[0] < gains[-1]


def test_best_never_below_paper(sweep):
    """The paper's strategy is inside the search space, so the optimum
    can never be worse."""
    for n, (paper, best) in sweep.items():
        assert best.gbps >= paper - 1e-9


def test_resident_chain_throughput_model():
    assert chain_gbps(1) == pytest.approx(5.11)
    assert chain_gbps(2) == pytest.approx(5.11 / 2)
    assert chain_gbps(3) == pytest.approx(5.11 / 4)
    with pytest.raises(Exception):
        chain_gbps(0)


def test_plan_describe_mentions_strategy(sweep):
    _, best = sweep[16]
    assert "Gbps" in best.describe()


def test_benchmark_planner(benchmark):
    def plan_all():
        return [plan_topology(n, p)
                for n in range(1, 33) for p in (1, 2, 4, 8)]

    plans = benchmark(plan_all)
    assert len(plans) == 32 * 4
