"""Figure 2: aggregate main-memory bandwidth vs SPE count and block size.

The paper's figure shows four curves (64/128/256/512+ byte blocks) rising
with the number of SPEs and saturating near the arbiter's heavy-traffic
limit; only blocks ≥ 256 B get close to the peak.  We reproduce the series
from the bandwidth model and verify the MFC's actual per-transfer timing
agrees with it.
"""

import pytest

from repro.analysis import ascii_chart, ascii_table
from repro.cell.local_store import LocalStore
from repro.cell.memory import BandwidthModel, HEAVY_TRAFFIC_AGGREGATE, \
    MainMemory
from repro.cell.mfc import MFC

BLOCK_SIZES = [64, 128, 256, 512, 4096]
SPE_COUNTS = [1, 2, 3, 4, 5, 6, 7, 8]


@pytest.fixture(scope="module")
def series():
    bw = BandwidthModel()
    return {
        bs: [bw.aggregate(p, bs) / 1e9 for p in SPE_COUNTS]
        for bs in BLOCK_SIZES
    }


def test_figure2_report(series, report):
    rows = []
    for bs, values in series.items():
        label = f"{bs} B" if bs < 512 else f"{bs} B (≥512)"
        rows.append([label] + [round(v, 2) for v in values])
    table = ascii_table(
        ["block size"] + [f"{p} SPE" for p in SPE_COUNTS], rows,
        title="Figure 2 - aggregate memory bandwidth (GB/s) vs SPEs")
    chart = ascii_chart(
        [(f"{bs}B", SPE_COUNTS, values) for bs, values in series.items()],
        title="Figure 2 shape", x_label="SPEs", y_label="GB/s")
    report("fig2_bandwidth", table + "\n\n" + chart)


def test_large_blocks_saturate_at_heavy_traffic(series):
    assert series[4096][-1] == pytest.approx(
        HEAVY_TRAFFIC_AGGREGATE / 1e9)
    assert series[512][-1] == pytest.approx(
        HEAVY_TRAFFIC_AGGREGATE / 1e9)


def test_256_byte_blocks_close_to_peak(series):
    """Paper: 'close to the peak only when blocks are at least 256 B'."""
    assert series[256][-1] > 0.85 * HEAVY_TRAFFIC_AGGREGATE / 1e9
    assert series[128][-1] < 0.85 * HEAVY_TRAFFIC_AGGREGATE / 1e9


def test_small_blocks_never_saturate(series):
    assert series[64][-1] < 0.6 * HEAVY_TRAFFIC_AGGREGATE / 1e9


def test_monotone_in_spes(series):
    for values in series.values():
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_monotone_in_block_size(series):
    for p_idx in range(len(SPE_COUNTS)):
        col = [series[bs][p_idx] for bs in BLOCK_SIZES]
        assert all(b >= a - 1e-9 for a, b in zip(col, col[1:]))


def test_mfc_timing_agrees_with_model(series):
    """The DMA engine's per-command durations implement the same curve."""
    mem = MainMemory(1 << 20)
    mfc = MFC(LocalStore(), mem, num_contending=8)
    for bs in (64, 256, 4096):
        cmd = mfc.get(0, 0, bs, tag=0)
        expected = BandwidthModel().transfer_seconds(bs, 8, bs)
        assert cmd.duration_s == pytest.approx(expected)


def test_benchmark_bandwidth_model(benchmark):
    bw = BandwidthModel()

    def sweep():
        return [bw.aggregate(p, bs)
                for p in SPE_COUNTS for bs in BLOCK_SIZES]

    values = benchmark(sweep)
    assert len(values) == len(SPE_COUNTS) * len(BLOCK_SIZES)
