"""Future work (§7): Bloom-filter string matching on the Cell.

The paper closes by announcing Bloom-filter exploration.  This bench
builds that system at model level and quantifies the trade the FPGA
literature (refs [7, 13, 14]) describes:

* **capacity** — the DFA tile's 190 KB STT holds ~1500 states; the same
  bytes as Bloom bits hold >100k signatures at a 1 % false-positive rate;
* **throughput** — the Bloom scan pays per *distinct pattern length* and
  degrades with the verification rate (hits + false positives), while the
  DFA's cost is one transition per byte, flat;
* **exactness** — Bloom screening plus verification finds exactly the DFA
  engine's matches (no false negatives; fp filtered).
"""

import pytest

from repro.analysis import ascii_table
from repro.core.bloom_tile import BloomTile, bloom_capacity
from repro.core.planner import plan_tile
from repro.dfa import AhoCorasick
from repro.workloads import plant_matches, random_payload, \
    random_signatures


@pytest.fixture(scope="module")
def dictionaries():
    uniform = [bytes(p) for p in random_signatures(50, 8, 8, seed=80)]
    spread = random_signatures(50, 4, 16, seed=81)
    return uniform, spread


def test_future_bloom_report(dictionaries, report):
    uniform, spread = dictionaries
    plan = plan_tile()
    rows = []
    for name, patterns in (("uniform length (8)", uniform),
                           ("lengths 4..16", spread)):
        tile = BloomTile(patterns, plan=plan)
        block = plant_matches(random_payload(30_000, seed=82), patterns,
                              60, seed=83)
        result = tile.scan(block)
        rows.append([
            name,
            tile.num_length_groups,
            round(tile.cycles_per_byte(), 1),
            round(result.modelled_gbps, 2),
            result.total_matches,
            result.false_positives,
        ])
    capacity = bloom_capacity(plan.stt_capacity * 8, 0.01)
    header = (f"Future work (§7): Bloom tile on a {plan.stt_capacity // 1024}"
              f" KB budget — capacity {capacity} signatures @1% fp "
              f"(DFA tile: {plan.max_states} states)")
    text = ascii_table(
        ["dictionary", "length groups", "cyc/byte", "Gbps", "matches",
         "false pos"],
        rows, title=header)
    report("future_bloom", text)


def test_capacity_headline(dictionaries):
    plan = plan_tile()
    assert bloom_capacity(plan.stt_capacity * 8, 0.01) > 100 * \
        plan.max_states


def test_throughput_penalty_for_length_spread(dictionaries):
    """More distinct lengths -> more filters probed per byte -> slower."""
    uniform, spread = dictionaries
    t_uniform = BloomTile(uniform)
    t_spread = BloomTile(spread)
    assert t_spread.num_length_groups > t_uniform.num_length_groups
    assert t_spread.modelled_gbps() < t_uniform.modelled_gbps()


def test_bloom_slower_than_dfa_tile_on_spread_dictionaries(dictionaries):
    """With a realistic length spread the Bloom scan's per-byte cost
    exceeds the DFA kernel's ~5.5 cycles."""
    _, spread = dictionaries
    tile = BloomTile(spread)
    assert tile.cycles_per_byte() > 5.5


def test_exactness_against_dfa(dictionaries):
    uniform, _ = dictionaries
    tile = BloomTile(uniform)
    block = plant_matches(random_payload(20_000, seed=84), uniform, 40,
                          seed=85)
    ac = AhoCorasick(uniform, 32)
    assert tile.scan(block).events == ac.find_all(block)


def test_benchmark_bloom_scan(dictionaries, benchmark):
    uniform, _ = dictionaries
    tile = BloomTile(uniform)
    block = plant_matches(random_payload(40_000, seed=86), uniform, 40,
                          seed=87)

    def scan():
        return tile.scan(block)

    result = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert result.total_matches >= 40 // 2
