"""Engine comparison: the vectorized DFA engine vs the classic baselines.

Not a paper table — this is the library's own value proposition: measure
MB/s of the numpy lockstep engine against Aho–Corasick (pure Python),
Wu–Manber, Boyer–Moore and the Bloom scanner on the same planted workload,
plus the adversarial robustness gap (§1's argument, quantified).
"""

import time

import pytest

from repro.analysis import ascii_table
from repro.baselines import (
    BloomMatcher,
    BoyerMooreMatcher,
    CommentzWalterMatcher,
    KMPMatcher,
    WuManberMatcher,
)
from repro.core.engine import VectorDFAEngine
from repro.dfa import AhoCorasick, build_dfa
from repro.workloads import adversarial_payload, plant_matches, \
    random_payload, random_signatures

PATTERNS = random_signatures(25, 4, 10, seed=50)
BLOCK = plant_matches(random_payload(400_000, seed=51), PATTERNS, 200,
                      seed=52)


def mb_per_s(fn, data):
    t0 = time.perf_counter()
    fn(data)
    dt = time.perf_counter() - t0
    return len(data) / dt / 1e6


def test_engine_comparison_report(report):
    dfa = build_dfa(PATTERNS, 32)
    engine = VectorDFAEngine(dfa)
    ac = AhoCorasick(PATTERNS, 32)
    small = BLOCK[:60_000]  # pure-Python matchers get a smaller slice
    entries = [
        ("numpy lockstep DFA", lambda d: engine.count_block(d), BLOCK),
        ("Aho-Corasick (py)", lambda d: ac.count(d), small),
        ("Wu-Manber", WuManberMatcher(PATTERNS).count, small),
        ("Boyer-Moore", BoyerMooreMatcher(PATTERNS).count, small),
        ("Commentz-Walter", CommentzWalterMatcher(PATTERNS).count, small),
        ("Bloom scanner", BloomMatcher(PATTERNS).count, small),
        ("KMP", KMPMatcher(PATTERNS).count, small),
    ]
    rows = []
    for name, fn, data in entries:
        rows.append([name, len(data) // 1000, round(mb_per_s(fn, data), 2)])
    text = ascii_table(["engine", "input KB", "MB/s"], rows,
                       title="Engine throughput on planted traffic "
                             "(25 signatures)")
    report("engines", text)


def test_vector_engine_is_fastest_python_path():
    dfa = build_dfa(PATTERNS, 32)
    engine = VectorDFAEngine(dfa)
    ac = AhoCorasick(PATTERNS, 32)
    small = BLOCK[:60_000]
    v = mb_per_s(lambda d: engine.count_block(d), BLOCK)
    a = mb_per_s(lambda d: ac.count(d), small)
    assert v > a


def test_all_engines_agree_on_the_block():
    small = BLOCK[:60_000]
    expected = len(AhoCorasick(PATTERNS, 32).find_all(small))
    for matcher in (WuManberMatcher(PATTERNS), BloomMatcher(PATTERNS),
                    BoyerMooreMatcher(PATTERNS)):
        assert matcher.count(small) == expected


def test_adversarial_gap_quantified(report):
    """DFA cost flat; skip-based matchers degrade on hostile input."""
    target = min(PATTERNS, key=len)
    wm = WuManberMatcher([target])
    n = 300_000
    friendly = bytes([0]) * n
    hostile = adversarial_payload(target, n, mismatch_at_end=False)
    w_f = wm.scan_work(friendly)
    w_h = wm.scan_work(hostile)
    dfa = build_dfa([target], 32)
    engine = VectorDFAEngine(dfa)
    t_f = mb_per_s(lambda d: engine.count_block(d), friendly)
    t_h = mb_per_s(lambda d: engine.count_block(d), hostile)
    text = ascii_table(
        ["engine", "friendly", "hostile", "degradation"],
        [["Wu-Manber (inspections)", w_f, w_h, round(w_h / w_f, 2)],
         ["DFA engine (MB/s)", round(t_f, 1), round(t_h, 1),
          round(t_f / t_h, 2)]],
        title="Adversarial input sensitivity (paper §1 argument)")
    report("adversarial_gap", text)
    assert w_h > w_f                 # heuristics degrade
    assert t_f / t_h < 1.5           # DFA stays (nearly) flat


def test_benchmark_vector_engine(benchmark):
    engine = VectorDFAEngine(build_dfa(PATTERNS, 32))

    def scan():
        return engine.count_block(BLOCK)

    count = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert count >= 200
