"""Engine comparison: the vectorized DFA engine vs the classic baselines.

Not a paper table — this is the library's own value proposition: measure
MB/s of the numpy lockstep engine against Aho–Corasick (pure Python),
Wu–Manber, Boyer–Moore and the Bloom scanner on the same planted workload,
plus the adversarial robustness gap (§1's argument, quantified).

The lockstep engine appears twice: the current flag-encoded flat-table
loop (states as pre-scaled row offsets, final flag in pointer bit 0,
strip-mined time loop) and a faithful re-implementation of the seed's
inner loop (2-D fancy gather + separate final-state gather per step), so
the win of the paper's §4 pointer trick on the host is measured, not
asserted.
"""

import time

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.baselines import (
    BloomMatcher,
    BoyerMooreMatcher,
    CommentzWalterMatcher,
    KMPMatcher,
    WuManberMatcher,
)
from repro.core.engine import VectorDFAEngine
from repro.dfa import AhoCorasick, build_dfa
from repro.workloads import adversarial_payload, plant_matches, \
    random_payload, random_signatures

PATTERNS = random_signatures(25, 4, 10, seed=50)
BLOCK = plant_matches(random_payload(400_000, seed=51), PATTERNS, 200,
                      seed=52)


class SeedLockstepEngine:
    """The seed revision's inner loop, kept verbatim for comparison.

    Per input position: one 2-D fancy-index gather (which hides a
    ``state × alphabet`` multiply), one final-mask gather, one add — and
    a per-pass ``np.vstack`` regroup in the chunked fixpoint.
    """

    def __init__(self, dfa):
        self.dfa = dfa
        self.table = np.ascontiguousarray(dfa.transitions, dtype=np.int32)
        self.final = np.ascontiguousarray(dfa.final_mask)
        self.start = dfa.start

    def _scan(self, data, start_states=None):
        n, length = data.shape
        states = np.full(n, self.start, dtype=np.int32) \
            if start_states is None else start_states.astype(np.int32)
        counts = np.zeros(n, dtype=np.int64)
        table, final = self.table, self.final
        cols = np.ascontiguousarray(data.T)
        for t in range(length):
            states = table[states, cols[t]]
            counts += final[states]
        return counts, states

    def count_block(self, block, chunks=64, max_passes=64):
        n = len(block)
        if n == 0:
            return 0
        arr = np.frombuffer(block, dtype=np.uint8)
        chunks = min(chunks, n)
        bounds = np.linspace(0, n, chunks + 1).astype(np.int64)
        pieces = [arr[bounds[i]:bounds[i + 1]] for i in range(chunks)]
        entry = np.full(chunks, self.start, dtype=np.int32)
        exit_states = np.empty(chunks, dtype=np.int32)
        counts = np.zeros(chunks, dtype=np.int64)
        todo = list(range(chunks))
        for _ in range(max_passes):
            by_len = {}
            for ci in todo:
                by_len.setdefault(len(pieces[ci]), []).append(ci)
            for length, group in by_len.items():
                if length == 0:
                    for ci in group:
                        exit_states[ci] = entry[ci]
                        counts[ci] = 0
                    continue
                data = np.vstack([pieces[ci] for ci in group])
                got, fin = self._scan(data, entry[np.asarray(group)])
                for j, ci in enumerate(group):
                    counts[ci] = got[j]
                    exit_states[ci] = fin[j]
            todo = []
            for ci in range(1, chunks):
                if exit_states[ci - 1] != entry[ci]:
                    entry[ci] = exit_states[ci - 1]
                    todo.append(ci)
            if not todo:
                break
        return int(counts.sum())


def mb_per_s(fn, data):
    t0 = time.perf_counter()
    fn(data)
    dt = time.perf_counter() - t0
    return len(data) / dt / 1e6


def test_engine_comparison_report(report, report_json):
    dfa = build_dfa(PATTERNS, 32)
    engine = VectorDFAEngine(dfa)
    seed = SeedLockstepEngine(dfa)
    ac = AhoCorasick(PATTERNS, 32)
    small = BLOCK[:60_000]  # pure-Python matchers get a smaller slice
    entries = [
        ("flat-table DFA", lambda d: engine.count_block(d), BLOCK),
        # chunks=64 is a speculation-granularity request, not a lane
        # count: the engine's lane floor widens it so dispatch overhead
        # per gather stays amortized (this row used to lose 40% to
        # 64-lane dispatch economics).
        ("flat-table DFA x64", lambda d: engine.count_block(
            d, chunks=64), BLOCK),
        ("seed lockstep DFA", lambda d: seed.count_block(d), BLOCK),
        ("Aho-Corasick (py)", lambda d: ac.count(d), small),
        ("Wu-Manber", WuManberMatcher(PATTERNS).count, small),
        ("Boyer-Moore", BoyerMooreMatcher(PATTERNS).count, small),
        ("Commentz-Walter", CommentzWalterMatcher(PATTERNS).count, small),
        ("Bloom scanner", BloomMatcher(PATTERNS).count, small),
        ("KMP", KMPMatcher(PATTERNS).count, small),
    ]
    rows = []
    rates = {}
    for name, fn, data in entries:
        rate = round(mb_per_s(fn, data), 2)
        rates[name] = rate
        rows.append([name, len(data) // 1000, rate])
    text = ascii_table(["engine", "input KB", "MB/s"], rows,
                       title="Engine throughput on planted traffic "
                             "(25 signatures)")
    report("engines", text)
    report_json("engines", {
        "workload": {"block_bytes": len(BLOCK), "patterns": len(PATTERNS),
                     "alphabet": 32},
        "mb_per_s": rates,
        "flat_vs_seed_speedup": round(
            rates["flat-table DFA"] / rates["seed lockstep DFA"], 2),
    })


def test_flat_table_loop_beats_seed_loop():
    """The §4 pointer trick on the host: ≥ 2× over the seed inner loop
    (both at their defaults), with identical counts."""
    dfa = build_dfa(PATTERNS, 32)
    engine = VectorDFAEngine(dfa)
    seed = SeedLockstepEngine(dfa)
    assert engine.count_block(BLOCK) == seed.count_block(BLOCK)
    flat_rate = min(mb_per_s(engine.count_block, BLOCK) for _ in range(3))
    seed_rate = max(mb_per_s(seed.count_block, BLOCK) for _ in range(3))
    assert flat_rate >= 2.0 * seed_rate, \
        f"flat loop {flat_rate:.2f} MB/s vs seed {seed_rate:.2f} MB/s"


def test_vector_engine_is_fastest_python_path():
    dfa = build_dfa(PATTERNS, 32)
    engine = VectorDFAEngine(dfa)
    ac = AhoCorasick(PATTERNS, 32)
    small = BLOCK[:60_000]
    v = mb_per_s(lambda d: engine.count_block(d), BLOCK)
    a = mb_per_s(lambda d: ac.count(d), small)
    assert v > a


def test_all_engines_agree_on_the_block():
    small = BLOCK[:60_000]
    expected = len(AhoCorasick(PATTERNS, 32).find_all(small))
    for matcher in (WuManberMatcher(PATTERNS), BloomMatcher(PATTERNS),
                    BoyerMooreMatcher(PATTERNS)):
        assert matcher.count(small) == expected


def test_adversarial_gap_quantified(report):
    """DFA cost flat; skip-based matchers degrade on hostile input."""
    target = min(PATTERNS, key=len)
    wm = WuManberMatcher([target])
    n = 300_000
    friendly = bytes([0]) * n
    hostile = adversarial_payload(target, n, mismatch_at_end=False)
    w_f = wm.scan_work(friendly)
    w_h = wm.scan_work(hostile)
    dfa = build_dfa([target], 32)
    engine = VectorDFAEngine(dfa)
    t_f = mb_per_s(lambda d: engine.count_block(d), friendly)
    t_h = mb_per_s(lambda d: engine.count_block(d), hostile)
    text = ascii_table(
        ["engine", "friendly", "hostile", "degradation"],
        [["Wu-Manber (inspections)", w_f, w_h, round(w_h / w_f, 2)],
         ["DFA engine (MB/s)", round(t_f, 1), round(t_h, 1),
          round(t_f / t_h, 2)]],
        title="Adversarial input sensitivity (paper §1 argument)")
    report("adversarial_gap", text)
    assert w_h > w_f                 # heuristics degrade
    assert t_f / t_h < 1.5           # DFA stays (nearly) flat


def test_benchmark_vector_engine(benchmark):
    engine = VectorDFAEngine(build_dfa(PATTERNS, 32))

    def scan():
        return engine.count_block(BLOCK)

    count = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert count >= 200
