"""Ablation: the paper's complete-table STT vs default-transition
compression (DESIGN.md §5; paper §4's deliberate design choice).

The dense table costs one load per transition and ~W·4 bytes per state;
failure-link compression stores only goto edges (n−1 exceptions) but makes
the per-byte cost input-dependent.  This bench quantifies both sides on
dictionaries at the tile's operating points, and computes the effective
tile capacity each representation buys.
"""

import pytest

from repro.analysis import ascii_table
from repro.core.compressed import CompressedSTT
from repro.core.planner import plan_tile
from repro.dfa import AhoCorasick
from repro.workloads import adversarial_payload, random_payload, \
    signatures_for_states


@pytest.fixture(scope="module")
def cases():
    out = []
    for states in (200, 800, 1500):
        patterns = signatures_for_states(states, seed=90 + states)
        ac = AhoCorasick(patterns, 32)
        out.append((states, ac, CompressedSTT.from_aho_corasick(ac)))
    return out


def test_compression_report(cases, report):
    plan = plan_tile()
    rows = []
    benign = random_payload(4000, seed=91)
    for states, ac, comp in cases:
        hostile = adversarial_payload(ac.patterns[0], 4000,
                                      mismatch_at_end=False)
        rows.append([
            ac.num_states,
            round(comp.stats.dense_bytes / 1024, 1),
            round(comp.stats.compressed_bytes / 1024, 1),
            round(comp.stats.ratio, 3),
            comp.stats.max_chain_length,
            round(comp.average_hops(benign), 2),
            round(comp.average_hops(hostile), 2),
        ])
    text = ascii_table(
        ["states", "dense KB", "compressed KB", "ratio", "max chain",
         "hops (benign)", "hops (hostile)"],
        rows, title="Ablation - dense STT (paper) vs default-transition "
                    "compression")
    capacity_note = (
        f"\ndense tile capacity: {plan.max_states} states; at the "
        f"measured ratio a compressed tile would hold roughly "
        f"{int(plan.max_states / max(c[2].stats.ratio for c in cases))} "
        f"states — the price is input-dependent per-byte cost.")
    report("ablation_stt_compression", text + capacity_note)


def test_compression_improves_with_dictionary_size(cases):
    ratios = [comp.stats.ratio for _, _, comp in cases]
    assert all(r < 0.25 for r in ratios)


def test_counts_identical_across_representations(cases):
    block = random_payload(5000, seed=92)
    for _, ac, comp in cases:
        assert comp.count_matches(block)[0] == \
            ac.to_dfa().count_matches(block)


def test_hostile_input_costs_more_fallbacks(cases):
    benign = bytes(4000)
    for _, ac, comp in cases:
        hostile = adversarial_payload(ac.patterns[0], 4000,
                                      mismatch_at_end=False)
        assert comp.average_hops(hostile) >= comp.average_hops(benign)


def test_dense_per_byte_cost_is_flat_by_construction(cases):
    """The dense table's cost is exactly one lookup per byte, which is
    the content-independence §1 demands; the compressed table's is not."""
    _, ac, comp = cases[-1]
    hostile = adversarial_payload(ac.patterns[0], 2000,
                                  mismatch_at_end=False)
    benign = bytes(2000)
    assert len(ac.to_dfa().state_trace(hostile)) == \
        len(ac.to_dfa().state_trace(benign)) == 2000
    assert comp.average_hops(hostile) != comp.average_hops(benign) or \
        comp.average_hops(hostile) == 0


def test_benchmark_compressed_scan(cases, benchmark):
    _, ac, comp = cases[0]
    block = random_payload(20_000, seed=93)

    def scan():
        return comp.count_matches(block)

    count, hops = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert hops >= 0
