"""Ablation: the paper's complete-table STT vs default-transition
compression (DESIGN.md §5; paper §4's deliberate design choice).

The dense table costs one load per transition and ~W·4 bytes per state;
failure-link compression stores only goto edges (n−1 exceptions) but makes
the per-byte cost input-dependent.  This bench quantifies both sides on
dictionaries at the tile's operating points, and computes the effective
tile capacity each representation buys.

Two compressed representations are measured.  :class:`CompressedSTT` is
the faithful D2FA-style chain ablation (input-dependent hops — the
paper's reason to refuse it).  :class:`ColdRowStore` inside the
hot/cold fused table is the variant that actually *ships*: cold rows
compress against one shared default with a bounded one-probe slow path,
so the budget sweep below measures the production encoder's
footprint/hit-rate trade-off, with counts asserted identical to the
dense reference at every budget.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core.compiled import compile_dictionary
from repro.core.compressed import CompressedSTT
from repro.core.engine import HOTCOLD_LANES_TARGET, count_arr
from repro.core.planner import plan_tile
from repro.dfa import AhoCorasick
from repro.dfa.alphabet import identity_fold
from repro.workloads import adversarial_payload, plant_matches, \
    random_payload, signatures_for_states


@pytest.fixture(scope="module")
def cases():
    out = []
    for states in (200, 800, 1500):
        patterns = signatures_for_states(states, seed=90 + states)
        ac = AhoCorasick(patterns, 32)
        out.append((states, ac, CompressedSTT.from_aho_corasick(ac)))
    return out


def test_compression_report(cases, report):
    plan = plan_tile()
    rows = []
    benign = random_payload(4000, seed=91)
    for states, ac, comp in cases:
        hostile = adversarial_payload(ac.patterns[0], 4000,
                                      mismatch_at_end=False)
        rows.append([
            ac.num_states,
            round(comp.stats.dense_bytes / 1024, 1),
            round(comp.stats.compressed_bytes / 1024, 1),
            round(comp.stats.ratio, 3),
            comp.stats.max_chain_length,
            round(comp.average_hops(benign), 2),
            round(comp.average_hops(hostile), 2),
        ])
    text = ascii_table(
        ["states", "dense KB", "compressed KB", "ratio", "max chain",
         "hops (benign)", "hops (hostile)"],
        rows, title="Ablation - dense STT (paper) vs default-transition "
                    "compression")
    capacity_note = (
        f"\ndense tile capacity: {plan.max_states} states; at the "
        f"measured ratio a compressed tile would hold roughly "
        f"{int(plan.max_states / max(c[2].stats.ratio for c in cases))} "
        f"states — the price is input-dependent per-byte cost.")
    report("ablation_stt_compression", text + capacity_note)


def test_compression_improves_with_dictionary_size(cases):
    ratios = [comp.stats.ratio for _, _, comp in cases]
    assert all(r < 0.25 for r in ratios)


def test_counts_identical_across_representations(cases):
    block = random_payload(5000, seed=92)
    for _, ac, comp in cases:
        assert comp.count_matches(block)[0] == \
            ac.to_dfa().count_matches(block)


def test_hostile_input_costs_more_fallbacks(cases):
    benign = bytes(4000)
    for _, ac, comp in cases:
        hostile = adversarial_payload(ac.patterns[0], 4000,
                                      mismatch_at_end=False)
        assert comp.average_hops(hostile) >= comp.average_hops(benign)


def test_dense_per_byte_cost_is_flat_by_construction(cases):
    """The dense table's cost is exactly one lookup per byte, which is
    the content-independence §1 demands; the compressed table's is not."""
    _, ac, comp = cases[-1]
    hostile = adversarial_payload(ac.patterns[0], 2000,
                                  mismatch_at_end=False)
    benign = bytes(2000)
    assert len(ac.to_dfa().state_trace(hostile)) == \
        len(ac.to_dfa().state_trace(benign)) == 2000
    assert comp.average_hops(hostile) != comp.average_hops(benign) or \
        comp.average_hops(hostile) == 0


# -- the shipping encoder: ColdRowStore inside the hot/cold table ---------

#: Hot-partition budgets for the sweep — from starved (almost every
#: state cold) through the production default's neighborhood.
BUDGETS = (8 * 1024, 32 * 1024, 256 * 1024)


@pytest.fixture(scope="module")
def shipping():
    """Compiled dictionaries plus a planted corpus per operating point."""
    out = []
    for states in (200, 800):
        patterns = signatures_for_states(states, seed=90 + states)
        compiled = compile_dictionary(patterns, fold=identity_fold(32))
        payload = bytes(plant_matches(random_payload(200_000,
                                                     seed=94 + states),
                                      patterns, 80, seed=95 + states))
        arr = np.frombuffer(payload, dtype=np.uint8)
        fused = compiled.fused_scanner()
        dense_total = int(fused.count_arr_per_dfa(
            arr, 256, weights=fused.weights)[0].sum())
        out.append((states, compiled, arr, dense_total))
    return out


def test_cold_row_budget_sweep_report(shipping, report):
    """Sweep the hot budget through the *shipping* encoder and assert
    every point counts bit-identically to the dense fused reference."""
    rows = []
    for states, compiled, arr, dense_total in shipping:
        for budget in BUDGETS:
            table = compiled.hot_cold_table(budget_bytes=budget)
            scanner = table.scanner()
            total = int(count_arr(scanner, arr, 256, scanner.start,
                                  weights=scanner.weights,
                                  lanes_target=HOTCOLD_LANES_TARGET)[0])
            assert total == dense_total, \
                f"hot/cold diverged at {states} states, " \
                f"budget {budget}: {total} != {dense_total}"
            rows.append([
                table.num_states,
                f"{budget // 1024}K",
                f"{table.num_hot}/{table.num_states}",
                round(compiled.fused_table_bytes / 1024, 1),
                round(table.table_bytes / 1024, 1),
                round(table.table_bytes / compiled.fused_table_bytes, 3),
                table.cold.stored_transitions,
                round(scanner.hot_hit_rate, 4),
            ])
    text = ascii_table(
        ["states", "budget", "hot set", "dense KB", "hc KB", "ratio",
         "cold edges", "hot hit"],
        rows, title="Shipping encoder - hot/cold split + ColdRowStore "
                    "default-transition cold rows (counts == dense)")
    report("ablation_cold_rows", text)


def test_cold_row_hit_rate_grows_with_budget(shipping):
    """Hottest-first renumbering means a bigger hot budget can only add
    states to the resident set — the observed hit rate must follow."""
    for states, compiled, arr, _ in shipping:
        hits = []
        for budget in BUDGETS:
            table = compiled.hot_cold_table(budget_bytes=budget)
            scanner = table.scanner()
            count_arr(scanner, arr, 256, scanner.start,
                      weights=scanner.weights,
                      lanes_target=HOTCOLD_LANES_TARGET)
            hits.append(scanner.hot_hit_rate)
        assert hits == sorted(hits), \
            f"hit rate not monotone in budget at {states} states: {hits}"
        assert hits[-1] > 0.9, \
            f"generous budget should keep the scan hot, got {hits[-1]}"


def test_cold_rows_round_trip_the_dense_table(shipping):
    """Every (cold state, symbol) answered by the ColdRowStore must
    equal the dense union-automaton transition, encoded or defaulted."""
    _, compiled, _, _ = shipping[0]
    table = compiled.hot_cold_table(budget_bytes=BUDGETS[0])
    union = compiled.union_dfa()
    dense = np.asarray(union.transitions, dtype=np.int64)
    final = np.asarray(union.final_mask, dtype=np.int64)
    w = table.symbol_width
    for cold_id, state in enumerate(table.cold_states[:64]):
        got = table.cold.lookup(np.full(w, cold_id, dtype=np.int64),
                                np.arange(w, dtype=np.int64))
        succ = dense[int(state)]
        expect = table.entry_cells[succ] + final[succ]
        assert np.array_equal(got, expect), \
            f"cold row {cold_id} (state {int(state)}) diverged"


def test_benchmark_compressed_scan(cases, benchmark):
    _, ac, comp = cases[0]
    block = random_payload(20_000, seed=93)

    def scan():
        return comp.count_matches(block)

    count, hops = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert hops >= 0
