"""Policy layer: verdict overhead and rule hot-swap under load.

The policy subsystem rides on the session scanner — every tenant packet
still pays exactly one DFA pass, and the verdict engine folds the
per-slice deltas into per-flow verdict state.  This bench pins down
what that costs and that it stays correct under churn:

* **verdict overhead** — the same deterministic multi-tenant traffic
  (:func:`repro.workloads.traffic.tenant_traffic`) through a bare
  :class:`~repro.service.sessions.SessionScanner` vs. through
  :meth:`~repro.policy.tenants.Tenant.scan_packet` with a live
  ruleset.  The regression gate holds the delta at ≤15%: clean packets
  ride the pure-slice fast path and never touch a resolve walk;
* **rule hot-swap under load** — a two-tenant daemon takes FLOW load
  while ``POLICY set`` swaps one tenant's ruleset mid-run: zero failed
  requests, the swap visible in the policy generation, and per-tenant
  STATS that never bleed across tenants.

Emits ``BENCH_policy.json``.

Environment knobs:

* ``REPRO_BENCH_SMOKE=1``        — small run: the CI smoke job.
* ``REPRO_BENCH_LOAD_CONNS``     — closed-loop connections (default 4).
* ``REPRO_BENCH_LOAD_REQUESTS``  — requests per connection.
"""

import os
import time

from repro.core.compiled import compile_dictionary
from repro.policy import Rule, RuleSet, Tenant
from repro.service import ScanService, ServiceClient, ServiceConfig, \
    ServiceThread, run_load
from repro.service.sessions import SessionScanner
from repro.workloads.traffic import tenant_traffic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CONNECTIONS = int(os.environ.get("REPRO_BENCH_LOAD_CONNS", "4"))
REQUESTS = int(os.environ.get("REPRO_BENCH_LOAD_REQUESTS",
                              "50" if SMOKE else "400"))
NUM_PACKETS = 400 if SMOKE else 4000
REPEATS = 3

PATTERNS = [b"virus", b"worm", b"trojan", b"backdoor", b"exploit",
            b"rootkit", b"phishing", b"keylogger"]
RULES = [
    Rule(name="drop-malware", action="drop",
         patterns=(b"virus", b"worm", b"trojan")),
    Rule(name="alert-access", action="alert",
         patterns=(b"backdoor", b"rootkit")),
    Rule(name="throttle-recon", action="rate-limit",
         patterns=(b"exploit",), rate=100.0, burst=4),
]
ALT_RULES = [{"name": "mirror-all", "action": "mirror"}]


def _packets():
    return tenant_traffic(
        ["t0"], NUM_PACKETS, flows_per_tenant=16,
        attack_patterns={"t0": PATTERNS},
        attack_fraction=0.05, min_body=256, max_body=1200, seed=23)


def _time_raw(compiled, packets):
    best = float("inf")
    matches = 0
    for _ in range(REPEATS):
        sessions = SessionScanner(compiled, max_flows=4096)
        t0 = time.perf_counter()
        matches = 0
        for pkt in packets:
            new, _, _ = sessions.scan_packet(pkt.flow, pkt.payload)
            matches += new
        best = min(best, time.perf_counter() - t0)
    return best, matches


def _time_policy(packets):
    best = float("inf")
    matches = 0
    actions = {}
    for _ in range(REPEATS):
        tenant = Tenant("t0", PATTERNS, rules=RuleSet(tuple(RULES)),
                        max_flows=4096)
        try:
            t0 = time.perf_counter()
            matches = 0
            actions = {}
            for pkt in packets:
                verdict, _, _ = tenant.scan_packet(pkt.flow, pkt.payload)
                matches += verdict.new_matches
                actions[verdict.action] = \
                    actions.get(verdict.action, 0) + 1
            best = min(best, time.perf_counter() - t0)
        finally:
            tenant.close()
    return best, matches, actions


def test_policy_report(report, report_json):
    packets = _packets()
    total_bytes = sum(len(p.payload) for p in packets)
    compiled = compile_dictionary(PATTERNS)

    raw_s, raw_matches = _time_raw(compiled, packets)
    pol_s, pol_matches, actions = _time_policy(packets)

    # The policy path sees the exact same matches as the bare scanner —
    # the verdict engine is attribution over the same scan, not a
    # second scan.
    assert pol_matches == raw_matches, \
        f"policy path drifted: {pol_matches} vs raw {raw_matches}"
    assert sum(actions.values()) == len(packets)
    overhead_pct = (pol_s - raw_s) / raw_s * 100.0

    # -- rule hot-swap under two-tenant service load -------------------
    config = ServiceConfig(port=0, max_pending=256,
                           scan_threads=min(4, os.cpu_count() or 1))
    service = ScanService([b"base"], config=config, tenants={
        "acme": {"patterns": PATTERNS,
                 "rules": [r.to_spec() for r in RULES]},
        "beta": {"patterns": [b"beta-only-sig"]},
    })
    with ServiceThread(service) as handle:
        with ServiceClient(handle.host, handle.port) as admin:
            import threading
            stop = threading.Event()
            swaps = []

            def _swapper():
                sets = [ALT_RULES, [r.to_spec() for r in RULES]]
                for i in range(500):          # paced by the load below
                    swaps.append(admin.set_policy(
                        "acme", sets[i % 2],
                        mode="accumulate" if i % 2 == 0
                        else "first-match"))
                    if stop.wait(0.01):
                        break

            swapper = threading.Thread(target=_swapper, daemon=True)
            swapper.start()
            acme = run_load(handle.host, handle.port, mode="flow",
                            connections=CONNECTIONS,
                            requests_per_connection=REQUESTS,
                            flows_per_connection=8,
                            patterns=PATTERNS, match_fraction=0.3,
                            seed=29, tenant="acme")
            stop.set()
            swapper.join(timeout=30)
            beta = run_load(handle.host, handle.port, mode="flow",
                            connections=max(1, CONNECTIONS // 2),
                            requests_per_connection=REQUESTS,
                            flows_per_connection=8,
                            patterns=PATTERNS, match_fraction=0.3,
                            seed=31, tenant="beta")
            stats = admin.stats()

    # Zero failed requests across every policy swap.
    assert acme.errors == 0, acme.error_codes
    assert beta.errors == 0, beta.error_codes
    assert len(swaps) >= 2, "no policy swap landed during the load"
    assert len(set(swaps)) == len(swaps), "policy generations not unique"

    # Per-tenant metrics never cross tenants: beta scans the same
    # attack-laden stream, but only acme has rules — every beta verdict
    # is a forward, and acme's drop/alert counts stay on acme.
    tm = stats["metrics"]["tenants"]
    assert tm["acme"]["requests"] == acme.requests
    assert tm["beta"]["requests"] == beta.requests
    assert set(tm["beta"]["actions"]) <= {"forward"}, tm["beta"]
    assert sum(beta.actions.values()) == beta.requests
    assert beta.actions.get("forward", 0) == beta.requests
    policy_state = stats["tenants"]["acme"]["policy"]

    gbps_raw = total_bytes * 8 / raw_s / 1e9
    gbps_pol = total_bytes * 8 / pol_s / 1e9
    text = "\n".join([
        f"Policy layer, {os.cpu_count()} host core(s), "
        f"{NUM_PACKETS} packets x {REPEATS} repeats (best)",
        f"  raw sessions : {raw_s * 1e3:8.1f} ms  {gbps_raw:.4f} Gbps  "
        f"({raw_matches} matches)",
        f"  with policy  : {pol_s * 1e3:8.1f} ms  {gbps_pol:.4f} Gbps  "
        f"verdicts " + ",".join(f"{k}:{v}"
                                for k, v in sorted(actions.items())),
        f"  verdict overhead: {overhead_pct:+.1f}%",
        "",
        f"Hot-swap under load ({CONNECTIONS} conn x {REQUESTS} req):",
        f"  acme : {acme.summary()}",
        f"  beta : {beta.summary()}",
        f"  policy swaps: {len(swaps)} "
        f"(final generation {policy_state['generation']})",
    ])
    report("policy", text)
    report_json("policy", {
        "host_cores": os.cpu_count(),
        "num_packets": NUM_PACKETS,
        "bytes": total_bytes,
        "raw_seconds": raw_s,
        "policy_seconds": pol_s,
        "verdict_overhead_pct": overhead_pct,
        "matches": raw_matches,
        "actions": actions,
        "hot_swap": {
            "swaps": len(swaps),
            "acme": acme.to_payload(),
            "beta": beta.to_payload(),
            "final_policy_generation": policy_state["generation"],
        },
    })


def test_verdict_latency_benchmark(benchmark):
    """Representative op: one tenant packet through scan + verdict."""
    packets = tenant_traffic(["t0"], 64, flows_per_tenant=4,
                             attack_patterns={"t0": PATTERNS},
                             attack_fraction=0.25, min_body=256,
                             max_body=512, seed=41)
    tenant = Tenant("t0", PATTERNS, rules=RuleSet(tuple(RULES)),
                    max_flows=1024)
    try:
        def _run():
            total = 0
            for pkt in packets:
                verdict, _, _ = tenant.scan_packet(pkt.flow, pkt.payload)
                total += verdict.new_matches
            return total

        benchmark(_run)
    finally:
        tenant.close()
