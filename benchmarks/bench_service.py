"""Live scan service under closed-loop load.

Hosts the daemon in-process (:class:`~repro.service.daemon.ServiceThread`),
drives it with the closed-loop load generator in both one-shot ``SCAN``
and sessioned ``FLOW`` modes, and fires hot reloads while the load runs.
The acceptance bar of the service layer:

* **zero failed requests**, including across dictionary swaps (the
  lease/promote guarantee of the registry);
* **warm swap** — re-deploying a rule set already in the artifact cache
  does zero automaton builds (checked against ``compiled.COUNTERS``);
* **STATS consistency** — the daemon's own counters agree with the
  client-side view of the run.

Emits ``BENCH_service.json`` with throughput, p50/p95/p99 latency and
the daemon's final metrics snapshot.

Environment knobs:

* ``REPRO_BENCH_SMOKE=1``        — small run: the CI smoke job.
* ``REPRO_BENCH_LOAD_CONNS``     — closed-loop connections (default 4).
* ``REPRO_BENCH_LOAD_REQUESTS``  — requests per connection.
"""

import os
import threading
import time

from repro.analysis import metrics_table
from repro.core.compiled import COUNTERS
from repro.service import (ScanService, ServiceClient, ServiceConfig,
                           ServiceThread, run_load)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CONNECTIONS = int(os.environ.get("REPRO_BENCH_LOAD_CONNS", "4"))
REQUESTS = int(os.environ.get("REPRO_BENCH_LOAD_REQUESTS",
                              "50" if SMOKE else "400"))

PATTERNS = ["virus", "worm", "trojan", "backdoor", "exploit"]
ALT_PATTERNS = PATTERNS + ["rootkit", "phishing"]


def test_service_load_report(report, report_json, tmp_path):
    config = ServiceConfig(port=0, max_pending=256,
                           scan_threads=min(4, os.cpu_count() or 1))
    service = ScanService(PATTERNS, config=config,
                          cache=tmp_path / "artifacts")
    with ServiceThread(service) as handle:
        with ServiceClient(handle.host, handle.port) as admin:
            # -- hot-reload correctness, measured synchronously --------
            cold = admin.reload(ALT_PATTERNS)
            assert not cold.warm
            builds_before = COUNTERS["automaton_builds"]
            warm = admin.reload(PATTERNS)     # compiled at startup
            assert warm.warm, "cached rule set re-deployed cold"
            assert COUNTERS["automaton_builds"] == builds_before, \
                "warm swap ran automaton builds"

            # -- SCAN load with reloads firing mid-run -----------------
            stop = threading.Event()

            def _reloader():
                sets = [ALT_PATTERNS, PATTERNS]
                for i in range(500):            # paced by the load below
                    admin.reload(sets[i % 2])   # all warm by now
                    if stop.wait(0.01):
                        break

            reloader = threading.Thread(target=_reloader, daemon=True)
            reloader.start()
            scan = run_load(handle.host, handle.port,
                            connections=CONNECTIONS,
                            requests_per_connection=REQUESTS,
                            patterns=[p.encode() for p in PATTERNS],
                            match_fraction=0.3, seed=17)
            stop.set()
            reloader.join(timeout=30)

            # -- FLOW load on the same daemon --------------------------
            flow = run_load(handle.host, handle.port, mode="flow",
                            connections=CONNECTIONS,
                            requests_per_connection=max(10, REQUESTS // 4),
                            flows_per_connection=8,
                            patterns=[p.encode() for p in PATTERNS],
                            match_fraction=0.3, seed=18)

            stats = admin.stats()

    # -- batch executor: identical load, coalesced into fused passes ---
    # The same deterministic packet stream (same seed) hits a batching
    # daemon and a plain one; any drift in total matches would mean the
    # fused cross-request pass changed semantics.
    batch_config = ServiceConfig(
        port=0, max_pending=256,
        scan_threads=min(4, os.cpu_count() or 1),
        batch_max=8, batch_wait=0.002)
    with ServiceThread(ScanService(PATTERNS,
                                   config=batch_config)) as bhandle:
        batched = run_load(bhandle.host, bhandle.port,
                           connections=CONNECTIONS,
                           requests_per_connection=REQUESTS,
                           patterns=[p.encode() for p in PATTERNS],
                           match_fraction=0.3, seed=19)
        with ServiceClient(bhandle.host, bhandle.port) as client:
            batch_stats = client.stats()
    with ServiceThread(ScanService(PATTERNS)) as chandle:
        control = run_load(chandle.host, chandle.port,
                           connections=CONNECTIONS,
                           requests_per_connection=REQUESTS,
                           patterns=[p.encode() for p in PATTERNS],
                           match_fraction=0.3, seed=19)

    assert batched.errors == 0, batched.error_codes
    assert control.errors == 0, control.error_codes
    assert batched.matches == control.matches, \
        "batched scans drifted from the unbatched counts"
    batches = batch_stats["metrics"]["batches"]
    assert batches["requests"] == batched.requests, \
        "some batchable scans bypassed the batcher"
    if CONNECTIONS > 1:
        assert batches["mean_occupancy"] > 1.0, \
            f"closed-loop load never coalesced " \
            f"(occupancy {batches['mean_occupancy']:.2f})"

    # Zero failed requests across every swap.
    assert scan.errors == 0, scan.error_codes
    assert flow.errors == 0, flow.error_codes
    assert len(scan.generations) >= 2, \
        "no reload landed during the scan phase"

    # STATS agrees with the client-side view.
    metrics = stats["metrics"]
    assert metrics["requests"]["SCAN"] == scan.requests
    assert metrics["requests"]["FLOW"] == flow.requests
    assert metrics["bytes_scanned"] == scan.bytes_sent + flow.bytes_sent
    assert metrics["reloads"]["count"] >= 3
    assert metrics["reloads"]["warm"] >= metrics["reloads"]["count"] - 1
    assert metrics["errors"] == 0

    text = "\n".join([
        f"Service load, {os.cpu_count()} host core(s), "
        f"{CONNECTIONS} connection(s) x {REQUESTS} request(s)",
        f"  scan : {scan.summary()}",
        f"  flow : {flow.summary()}",
        f"  swaps: {metrics['reloads']['count']} "
        f"({metrics['reloads']['warm']} warm), cold "
        f"{cold.seconds * 1e3:.1f} ms / warm {warm.seconds * 1e3:.1f} ms",
        f"  batch: {batched.summary()}",
        f"         {batches['count']} batches, occupancy mean "
        f"{batches['mean_occupancy']:.2f} / max "
        f"{batches['max_occupancy']} (vs unbatched "
        f"{control.requests_per_second:.0f} req/s)",
        "",
        metrics_table(metrics),
    ])
    report("service", text)
    report_json("service", {
        "host_cores": os.cpu_count(),
        "connections": CONNECTIONS,
        "requests_per_connection": REQUESTS,
        "scan": scan.to_payload(),
        "flow": flow.to_payload(),
        "batch": {
            "run": batched.to_payload(),
            "control_run": control.to_payload(),
            "batches": batches,
            "batch_max": batch_config.batch_max,
            "batch_wait": batch_config.batch_wait,
            "matches_drift": batched.matches - control.matches,
        },
        "reload": {
            "cold_seconds": round(cold.seconds, 4),
            "warm_seconds": round(warm.seconds, 4),
            "count": metrics["reloads"]["count"],
            "warm_count": metrics["reloads"]["warm"],
        },
        "stats": metrics,
    })


POOL_SWEEP = [1, 2] if SMOKE else [1, 2, 4]


def test_pool_worker_sweep(report, report_json):
    """Gateway + worker-pool mode across pool sizes.

    Per-worker load is held constant (two closed-loop connections per
    worker) so the single-worker p99 is comparable across rows; the
    largest pool additionally takes hot reloads mid-load and must
    finish with **zero failed requests**.  Every worker must report
    zero automaton builds — the compile-once / attach-everywhere
    contract of the shared-memory pool.  Scaling itself is *recorded*,
    not asserted: the regression gate (``check_bench_regression.py``)
    judges it against ``REPRO_BENCH_POOL_MIN`` only when the host has
    the cores to deliver a speedup.
    """
    requests = max(20, REQUESTS // 2)
    rows = []
    for w in POOL_SWEEP:
        config = ServiceConfig(port=0, max_pending=256,
                               pool_workers=w)
        service = ScanService(PATTERNS, config=config)
        with ServiceThread(service) as handle:
            stop = threading.Event()
            reloader = admin = None
            if w == POOL_SWEEP[-1]:
                admin = ServiceClient(handle.host, handle.port)

                def _reloader():
                    sets = [ALT_PATTERNS, PATTERNS]
                    for i in range(500):     # paced by the load below
                        admin.reload(sets[i % 2])
                        if stop.wait(0.02):
                            break

                reloader = threading.Thread(target=_reloader,
                                            daemon=True)
                reloader.start()
            result = run_load(handle.host, handle.port,
                              connections=2 * w,
                              requests_per_connection=requests,
                              patterns=[p.encode() for p in PATTERNS],
                              match_fraction=0.3, seed=23)
            stop.set()
            if reloader is not None:
                reloader.join(timeout=60)
                admin.close()
            with ServiceClient(handle.host, handle.port) as client:
                stats = client.stats()
        assert result.errors == 0, result.error_codes
        pool = stats["pool"]
        assert pool["size"] == w
        assert pool["restarts"] == 0, "worker crashed during the sweep"
        for worker in pool["workers"]:
            assert worker["automaton_builds"] == 0, \
                f"worker {worker['index']} built an automaton " \
                f"(shared-memory attach contract broken)"
        if w == POOL_SWEEP[-1]:
            assert len(result.generations) >= 2, \
                "no reload landed during the max-pool run"
        rows.append({
            "workers": w,
            "connections": 2 * w,
            "requests": result.requests,
            "rps": round(result.requests_per_second, 1),
            "p99_ms": round(result.p99_ms, 3),
            "gbps": round(result.gbps, 4),
        })
    base_rps = rows[0]["rps"] or 1.0
    for row in rows:
        row["scaling"] = round(row["rps"] / base_rps, 3)
        row["scaling_efficiency"] = round(
            row["scaling"] / row["workers"], 3)

    lines = [f"Worker-pool sweep, {os.cpu_count()} host core(s), "
             f"2 connections/worker x {requests} request(s)"]
    for row in rows:
        lines.append(
            f"  {row['workers']} worker(s): {row['rps']:8.0f} req/s, "
            f"p99 {row['p99_ms']:7.2f} ms, scaling {row['scaling']:.2f}x"
            f" (efficiency {row['scaling_efficiency']:.2f})")
    lines.append("  (largest pool took hot reloads mid-load — "
                 "zero failed requests asserted)")
    report("service_pool", "\n".join(lines))
    report_json("service", {
        "pool_sweep": {
            "host_cores": os.cpu_count(),
            "requests_per_connection": requests,
            "rows": rows,
        },
    }, merge=True)


def test_benchmark_oneshot_scan_rtt(benchmark):
    """Round-trip time of one SCAN over the local socket — the
    service-layer overhead on top of the backend's scan time."""
    payload = (b"x" * 1400).replace(b"xx", b"vi", 1)
    with ServiceThread(ScanService(PATTERNS)) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            client.scan(payload)              # warm the path

            def _roundtrip():
                return client.scan(payload)

            result = benchmark.pedantic(_roundtrip, rounds=20,
                                        iterations=5)
    assert result.matches >= 0


def test_reload_does_not_stall_scans():
    """Latency guard: scans issued while a reload is in flight must not
    wait for the compile — the active generation keeps serving."""
    with ServiceThread(ScanService(PATTERNS)) as handle:
        with ServiceClient(handle.host, handle.port) as admin:
            with ServiceClient(handle.host, handle.port) as client:
                baseline = []
                for _ in range(20):
                    t0 = time.perf_counter()
                    client.scan(b"quiet traffic " * 50)
                    baseline.append(time.perf_counter() - t0)

                done = threading.Event()

                def _reload_loop():
                    big = [f"sig{i:04d}{os.urandom(4).hex()}"
                           for i in range(300)]
                    admin.reload(big)
                    done.set()

                t = threading.Thread(target=_reload_loop, daemon=True)
                t.start()
                during = []
                while not done.is_set() and len(during) < 200:
                    t0 = time.perf_counter()
                    client.scan(b"quiet traffic " * 50)
                    during.append(time.perf_counter() - t0)
                t.join(timeout=60)

    assert during, "reload finished before any concurrent scan"
    base = sorted(baseline)[len(baseline) // 2]
    worst = max(during)
    # Generous bound: a scan overlapping the swap may pay scheduling
    # noise, but never the full compile (hundreds of ms).
    assert worst < max(20 * base, 0.25), \
        f"scan stalled {worst * 1e3:.1f} ms during reload " \
        f"(baseline p50 {base * 1e3:.1f} ms)"
