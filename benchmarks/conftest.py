"""Benchmark-harness plumbing.

Every bench reproduces one table or figure of the paper: it computes the
measured numbers on this repository's simulator/engines, renders a
paper-vs-measured report, asserts the *shape* (ordering, ratios,
crossovers — not absolute values), and times a representative operation
with pytest-benchmark.

Reports are printed and also written to ``benchmarks/results/<name>.txt``
so they survive pytest's output capture; EXPERIMENTS.md summarizes them.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable fixture: ``report(name, text)`` prints and persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture(scope="session")
def report_json():
    """Callable fixture: ``report_json(name, payload)`` writes the
    machine-readable companion ``results/BENCH_<name>.json`` so the perf
    trajectory can be diffed across PRs by tooling, not eyeballs."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report_json(name: str, payload, merge: bool = False) -> None:
        path = RESULTS_DIR / f"BENCH_{name}.json"
        if merge and path.exists():
            try:
                merged = json.loads(path.read_text())
            except ValueError:
                merged = {}
            merged.update(payload)
            payload = merged
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        print(f"[bench json] {path}")

    return _report_json
