"""Unified cross-backend sweep over one planted corpus.

Every registered scan backend consumes the same
:class:`~repro.core.compiled.CompiledDictionary` and scans the same
traffic block; the bench asserts bit-identical counts (the acceptance
bar for the backend registry) and emits one unified
``BENCH_backends.json`` payload with per-backend throughput plus the
artifact-cache cold/warm compile split.

Environment knobs:

* ``REPRO_BENCH_SMOKE=1``  — small block: the CI smoke run.
* ``REPRO_BENCH_BLOCK_MB`` — block size in MB (default 16).
* ``REPRO_BENCH_WORKERS``  — worker count for the pooled/streaming rows.
"""

import os
import time

from repro.analysis import outcome_table
from repro.core.backends import (ScanContext, ScanRequest, backend_names,
                                 execute, get_backend)
from repro.core.compiled import ArtifactCache, COUNTERS, compile_dictionary
from repro.dfa.alphabet import identity_fold
from repro.workloads import plant_matches, random_payload, \
    random_signatures

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
BLOCK_MB = float(os.environ.get("REPRO_BENCH_BLOCK_MB",
                                "2" if SMOKE else "16"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

PATTERNS = random_signatures(25, 4, 10, seed=90)


def test_backend_sweep_report(report, report_json, tmp_path):
    nbytes = int(BLOCK_MB * 1e6)
    block = bytes(plant_matches(random_payload(nbytes, seed=91), PATTERNS,
                                max(1, nbytes // 2000), seed=92))

    # Compile cold (building every automaton), then warm from the cache.
    # The workload generators emit pre-folded 32-symbol traffic, so the
    # fold is the identity over that alphabet.
    fold = identity_fold(32)
    cache = ArtifactCache(tmp_path / "artifacts")
    t0 = time.perf_counter()
    compiled = compile_dictionary(PATTERNS, fold=fold, cache=cache)
    cold_s = time.perf_counter() - t0
    builds_before = COUNTERS["automaton_builds"]
    t0 = time.perf_counter()
    compiled = compile_dictionary(PATTERNS, fold=fold, cache=cache)
    warm_s = time.perf_counter() - t0
    assert COUNTERS["automaton_builds"] == builds_before, \
        "warm compile re-ran DFA construction"

    outcomes = []
    with ScanContext(compiled) as ctx:
        for name in backend_names():
            backend = get_backend(name)
            workers = WORKERS if name in ("pooled", "streaming") else 1
            request = ScanRequest(data=block, workers=workers) \
                if "block" in backend.kinds \
                else ScanRequest(chunks=[block], workers=workers)
            execute(ctx, request, backend=name)        # warm pools/caches
            outcomes.append(execute(ctx, request, backend=name))

    counts = {o.total_matches for o in outcomes}
    assert len(counts) == 1, \
        f"backends disagree: {[(o.backend, o.total_matches) for o in outcomes]}"

    text = outcome_table(
        outcomes,
        title=f"Backend sweep, {len(block) / 1e6:.0f} MB planted traffic "
              f"({os.cpu_count()} host core(s); compile cold "
              f"{cold_s * 1e3:.0f} ms / warm {warm_s * 1e3:.0f} ms)")
    report("backends", text)
    report_json("backends", {
        "block_bytes": len(block),
        "host_cores": os.cpu_count(),
        "patterns": len(PATTERNS),
        "count": counts.pop(),
        "compile_cold_seconds": round(cold_s, 4),
        "compile_warm_seconds": round(warm_s, 4),
        "slices": compiled.num_slices,
        "per_backend": {
            o.backend: {
                "workers": o.workers,
                "seconds": round(o.seconds, 4),
                "mb_per_s": round(o.bytes_scanned / o.seconds / 1e6, 2)
                if o.seconds else None,
                "gbps": round(o.gbps, 4),
            } for o in outcomes},
    })
