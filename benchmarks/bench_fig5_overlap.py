"""Figure 5: hiding data transfers behind computation (double buffering).

At the paper's operating point a 16 KB block takes 25.64 µs of kernel time
and 5.94 µs of worst-case DMA time; double buffering hides every transfer
except the very first.  We reconstruct the schedule, render the Gantt
chart, and check the hiding invariant across the block sizes of Figure 3
(the paper notes it holds 'down to 512 bytes').
"""

import pytest

from repro.analysis import PAPER_COMPUTE_PERIOD_US, PAPER_TILE_GBPS, \
    PAPER_TRANSFER_US, ascii_table
from repro.cell.memory import BandwidthModel
from repro.core import double_buffer_schedule


def durations(block_bytes: int):
    compute = block_bytes * 8 / (PAPER_TILE_GBPS * 1e9)
    transfer = BandwidthModel().transfer_seconds(block_bytes,
                                                 block_size=block_bytes)
    return compute, transfer


def test_figure5_report(report):
    compute, transfer = durations(16 * 1024)
    sched = double_buffer_schedule(4, compute, transfer)
    rows = []
    for size in (512, 4096, 8192, 16384):
        c, t = durations(size)
        s = double_buffer_schedule(6, c, t)
        rows.append([
            f"{size} B",
            round(c * 1e6, 2),
            round(t * 1e6, 2),
            round(s.exposed_transfer_time() * 1e6, 2),
            "yes" if s.exposed_transfer_time() <= t * 1.01 else "NO",
        ])
    table = ascii_table(
        ["block", "compute us", "transfer us", "exposed us",
         "hidden except first"],
        rows, title="Figure 5 - compute/transfer overlap")
    report("fig5_overlap", table + "\n\n" + sched.render())


def test_paper_period_values():
    compute, transfer = durations(16 * 1024)
    assert compute * 1e6 == pytest.approx(PAPER_COMPUTE_PERIOD_US,
                                          rel=0.01)
    assert transfer * 1e6 == pytest.approx(PAPER_TRANSFER_US, rel=0.01)


def test_only_first_transfer_exposed():
    compute, transfer = durations(16 * 1024)
    sched = double_buffer_schedule(10, compute, transfer)
    assert sched.exposed_transfer_time() == pytest.approx(transfer)


@pytest.mark.parametrize("size", [512, 1024, 4096, 8192, 16384])
def test_hiding_holds_down_to_512_bytes(size):
    compute, transfer = durations(size)
    assert compute > transfer  # precondition for full hiding
    sched = double_buffer_schedule(8, compute, transfer)
    assert sched.exposed_transfer_time() == pytest.approx(transfer,
                                                          rel=0.01)


def test_compute_utilization_near_one():
    compute, transfer = durations(16 * 1024)
    sched = double_buffer_schedule(20, compute, transfer)
    assert sched.utilization("compute") > 0.98


def test_benchmark_scheduler(benchmark):
    compute, transfer = durations(16 * 1024)

    def build():
        return double_buffer_schedule(200, compute, transfer)

    sched = benchmark(build)
    sched.verify()
