"""Table 1: the five kernel implementation versions at paper scale.

Reproduces every column — total cycles, cycles per transition, throughput
(M transitions/s and Gbps), CPI, dual-issue %, stall %, registers, speedup
— for a 16 KB input block (16384 transitions, padded to 16416 for the
unroll-3 version exactly as the paper does).

Shape assertions: SIMD ≫ scalar, unrolling monotonically helps up to
factor 3, factor 4 regresses (spills), peak within 15 % of the paper's
5.11 Gbps story in relative terms.
"""

import pytest

from repro.analysis import PAPER_TABLE1, ascii_table, comparison_table
from repro.core import DFATile, KERNEL_SPECS
from repro.dfa import AhoCorasick
from repro.workloads import signatures_for_states, streams_for_tile

#: Paper's operating point: one 16 KB input block.
TRANSITIONS = 16384


@pytest.fixture(scope="module")
def tile():
    """A tile near the paper's ~1500-state operating point."""
    patterns = signatures_for_states(1500, seed=77)
    dfa = AhoCorasick(patterns, 32).to_dfa()
    return DFATile(dfa), patterns


@pytest.fixture(scope="module")
def measured(tile):
    """Run all five versions once at Table-1 scale.

    Stream lengths round up to each version's unroll granularity, exactly
    like the paper: 16384 transitions for versions 1/2/3/5 and 16416 for
    the unroll-3 version.
    """
    t, patterns = tile
    out = {}
    for version, spec in sorted(KERNEL_SPECS.items()):
        if version == 1:
            streams = streams_for_tile(TRANSITIONS, patterns,
                                       num_streams=1, seed=1)
        else:
            per_stream = TRANSITIONS // 16
            per_stream = -(-per_stream // spec.unroll) * spec.unroll
            streams = streams_for_tile(per_stream, patterns, seed=2)
        out[version] = t.run_streams(streams, version=version)
    return out


def test_table1_report(measured, report):
    rows = []
    base_cpt = measured[1].cycles_per_transition
    for v, result in sorted(measured.items()):
        paper = PAPER_TABLE1[v]
        stats = result.stats
        rows.append([
            f"v{v}",
            stats.cycles,
            result.transitions,
            round(result.cycles_per_transition, 2),
            paper.cycles_per_transition,
            round(result.throughput_transitions_per_s() / 1e6, 1),
            round(result.throughput_gbps(), 2),
            paper.throughput_gbps,
            round(stats.cpi, 2),
            round(stats.dual_issue_pct, 1),
            round(stats.stall_pct, 1),
            stats.registers_used if not KERNEL_SPECS[v].spill else "spill",
            round(base_cpt / result.cycles_per_transition, 2),
            paper.speedup,
        ])
    text = ascii_table(
        ["ver", "cycles", "trans", "cyc/tr", "paper", "Mtr/s", "Gbps",
         "paper", "CPI", "dual%", "stall%", "regs", "speedup", "paper"],
        rows, title="Table 1 - implementation versions (measured on the "
                    "SPU simulator vs paper)")
    report("table1", text)


def test_padding_matches_paper_quirk(measured):
    """The unroll-3 version pads 16384 to 16416 — visible in Table 1."""
    assert measured[4].transitions == 16416
    assert measured[2].transitions == 16384


def test_simd_speedup_over_scalar(measured):
    """Paper: v2 is 2.51x over v1."""
    speedup = measured[1].cycles_per_transition / \
        measured[2].cycles_per_transition
    assert 2.0 <= speedup <= 3.2


def test_unroll_ordering(measured):
    cpt = {v: r.cycles_per_transition for v, r in measured.items()}
    assert cpt[4] < cpt[3] < cpt[2] < cpt[1]
    assert cpt[5] > cpt[4]  # the spill regression


def test_peak_version_is_unroll3(measured):
    best = min(measured, key=lambda v: measured[v].cycles_per_transition)
    assert best == 4


def test_peak_throughput_within_reproduction_band(measured):
    """Within 15% of the paper's 5.11 Gbps peak."""
    gbps = measured[4].throughput_gbps()
    assert 5.11 * 0.85 <= gbps <= 5.11 * 1.15


def test_scalar_near_19_cycles(measured):
    assert 16 <= measured[1].cycles_per_transition <= 23


def test_stall_profile_shape(measured):
    """Scalar stalls dominate; unrolling drives stalls toward zero."""
    stalls = {v: r.stats.stall_pct for v, r in measured.items()}
    assert stalls[1] > 30
    assert stalls[2] > stalls[3] > stalls[4]
    assert stalls[4] < 10


def test_dual_issue_profile_shape(measured):
    duals = {v: r.stats.dual_issue_pct for v, r in measured.items()}
    assert duals[1] < 15
    assert all(duals[v] > 40 for v in (2, 3, 4, 5))


def test_match_counts_all_versions_verified(measured):
    """run_streams(verify=True) cross-checked every count against the
    reference DFA; versions sharing the same stream length must also
    agree with each other (v4 scans two extra padded bytes per stream)."""
    totals = {v: r.total_matches for v, r in measured.items()}
    assert totals[2] == totals[3] == totals[5]
    assert abs(totals[4] - totals[2]) <= 16


def test_benchmark_peak_kernel(tile, benchmark):
    """Time one simulator pass of the peak kernel (bench metric: simulated
    16 KB block per wall-clock run)."""
    t, patterns = tile
    streams = streams_for_tile(96, patterns, seed=3)

    def run():
        return t.run_streams(streams, version=4, verify=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.transitions == 96 * 16
