"""Core-count scaling of the host-parallel sharded scanner.

The paper's Figure 7 story — identical tiles over disjoint slices,
throughput multiplying with the tile count — re-run on host cores:
:class:`repro.parallel.ShardedScanner` scans one large planted-traffic
block with 1, 2, 4, … workers and reports the scaling curve.  Counts are
cross-checked between every configuration, against the single-process
engine at a different chunking, and against the pure-Python reference
scan (on a prefix by default — the reference runs at ~1 MB/s — or on the
whole block with ``REPRO_BENCH_FULL_REF=1``).

Setup cost (pool fork + shared-segment creation + first-scan warmup) is
measured separately from steady-state scanning and reported as
``setup_seconds``: the pool is persistent, so a long-lived service pays
it once, and folding it into the scan time (as the original bench did)
made the steady-state curve unreadable.

Environment knobs:

* ``REPRO_BENCH_SMOKE=1``  — tiny block, workers {1, 2}: the CI smoke run.
* ``REPRO_BENCH_BLOCK_MB`` — block size in MB (default 64).
* ``REPRO_BENCH_WORKERS``  — comma-separated worker counts.
* ``REPRO_BENCH_REF_MB``   — reference-scan prefix in MB (default 2).
* ``REPRO_BENCH_FULL_REF`` — reference-scan the whole block.
* ``REPRO_BENCH_RING_MB``  — staging-ring buffer capacity in MB
  (default 16; CI sets 1 so the smoke block cycles several buffers).

Note: the speedup this bench can *show* is bounded by the cores of the
machine it runs on (``os.cpu_count()`` is recorded in the JSON payload);
on a single-core container the curve is flat and the exactness checks
are the meaningful output.
"""

import os
import time

import pytest

from repro.analysis import ascii_table
from repro.core.engine import VectorDFAEngine
from repro.dfa import build_dfa
from repro.parallel import ShardedScanner
from repro.workloads import plant_matches, random_payload, \
    random_signatures

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
BLOCK_MB = float(os.environ.get("REPRO_BENCH_BLOCK_MB",
                                "4" if SMOKE else "64"))
REF_MB = float(os.environ.get("REPRO_BENCH_REF_MB", "2"))
FULL_REF = os.environ.get("REPRO_BENCH_FULL_REF") == "1"
RING_BYTES = int(float(os.environ.get("REPRO_BENCH_RING_MB", "16")) * 1e6)
REPS = 1 if SMOKE else 2


def _worker_counts():
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env:
        return [int(w) for w in env.split(",") if w.strip()]
    if SMOKE:
        return [1, 2]
    counts = [1, 2, 4]
    if (os.cpu_count() or 1) >= 8:
        counts.append(8)
    return counts


PATTERNS = random_signatures(25, 4, 10, seed=50)


def _build_block(nbytes: int) -> bytes:
    return plant_matches(random_payload(nbytes, seed=71), PATTERNS,
                         max(1, nbytes // 2000), seed=72)


def test_parallel_scaling_report(report, report_json):
    nbytes = int(BLOCK_MB * 1e6)
    block = _build_block(nbytes)
    dfa = build_dfa(PATTERNS, 32)
    engine = VectorDFAEngine(dfa)

    results = {}
    rows = []
    for workers in _worker_counts():
        t0 = time.perf_counter()
        with ShardedScanner(dfa, workers=workers, chunks=1024,
                            min_shard_bytes=0,
                            ring_bytes=RING_BYTES) as scanner:
            scanner.count_block(block[:200_000])   # warm the pool
            setup = time.perf_counter() - t0
            dt = float("inf")
            for _ in range(REPS):
                t0 = time.perf_counter()
                count = scanner.count_block(block)
                dt = min(dt, time.perf_counter() - t0)
            stats = dict(scanner.last_scan_stats)
        results[workers] = {"seconds": dt, "count": count,
                            "setup_seconds": setup,
                            "buffers": stats.get("buffers", 1),
                            "repaired_shards": stats.get(
                                "repaired_shards", 0),
                            "mb_per_s": len(block) / dt / 1e6}
        rows.append([workers, round(setup, 3), round(dt, 3),
                     round(results[workers]["mb_per_s"], 1),
                     round(results[1]["seconds"] / dt, 2), count])

    counts = {r["count"] for r in results.values()}
    assert len(counts) == 1, f"configs disagree: {results}"
    count = counts.pop()

    # Independent single-process check at a different chunking.
    assert engine.count_block(block, chunks=333) == count

    # Ground-truth reference scan (pure Python, ~1 MB/s).
    ref_bytes = len(block) if FULL_REF else min(len(block),
                                                int(REF_MB * 1e6))
    ref_prefix = engine.count_block_reference(block[:ref_bytes])
    sharded_prefix = count if ref_bytes == len(block) else None
    if sharded_prefix is None:
        with ShardedScanner(dfa, workers=min(_worker_counts()[-1], 4),
                            chunks=1024, min_shard_bytes=0) as scanner:
            sharded_prefix = scanner.count_block(block[:ref_bytes])
    assert sharded_prefix == ref_prefix, \
        "sharded count disagrees with the reference scan"

    text = ascii_table(
        ["workers", "setup s", "scan s", "MB/s", "speedup", "matches"],
        rows,
        title=f"Sharded scan scaling, {len(block) / 1e6:.0f} MB planted "
              f"traffic ({os.cpu_count()} host core(s), "
              f"{RING_BYTES / 1e6:.0f} MB ring buffers)")
    report("parallel_scaling", text)
    report_json("parallel", {
        "block_bytes": len(block),
        "host_cores": os.cpu_count(),
        "patterns": len(PATTERNS),
        "count": count,
        "ring_bytes": RING_BYTES,
        "reference_checked_bytes": ref_bytes,
        "per_workers": {str(w): {"seconds": round(r["seconds"], 4),
                                 "setup_seconds": round(
                                     r["setup_seconds"], 4),
                                 "mb_per_s": round(r["mb_per_s"], 2),
                                 "buffers": r["buffers"],
                                 "repaired_shards": r["repaired_shards"],
                                 "speedup": round(
                                     results[1]["seconds"] / r["seconds"],
                                     3)}
                        for w, r in results.items()},
    })


def test_streaming_scan_file_report(report_json, tmp_path):
    """The pipelined ``scan_file`` path: fixed-footprint streaming of a
    file larger than one staging buffer, counts checked against the
    in-memory scan."""
    nbytes = int(min(BLOCK_MB, 8.0) * 1e6)
    block = _build_block(nbytes)
    dfa = build_dfa(PATTERNS, 32)
    expected = VectorDFAEngine(dfa).count_block(block, chunks=333)
    path = tmp_path / "stream.bin"
    path.write_bytes(block)

    ring = min(RING_BYTES, 1 << 20)     # force several buffer cycles
    workers = max(_worker_counts())
    with ShardedScanner(dfa, workers=workers, chunks=1024,
                        min_shard_bytes=0, ring_bytes=ring) as scanner:
        scanner.count_block(block[:200_000])   # warm the pool
        t0 = time.perf_counter()
        count = scanner.scan_file(path)
        dt = time.perf_counter() - t0
        stats = dict(scanner.last_scan_stats)

    assert count == expected
    assert stats["buffers"] > 1
    report_json("parallel_stream", {
        "file_bytes": len(block),
        "ring_bytes": ring,
        "workers": workers,
        "count": count,
        "buffers": stats["buffers"],
        "repaired_shards": stats["repaired_shards"],
        "mb_per_s": round(len(block) / dt / 1e6, 2),
    })


def test_shared_stt_attach_is_cheap(report_json):
    """Artifact build happens once; attaching is microseconds — the
    'load the local store once, stream input past it' property."""
    from repro.parallel import SharedSTT

    dfa = build_dfa(PATTERNS, 32)
    t0 = time.perf_counter()
    stt = SharedSTT(dfa)
    build_s = time.perf_counter() - t0
    try:
        meta = stt.meta()
        t0 = time.perf_counter()
        n = 50
        for _ in range(n):
            peer = SharedSTT.attach(meta)
            peer.close()
        attach_s = (time.perf_counter() - t0) / n
    finally:
        stt.close()
    report_json("shared_stt", {
        "stt_bytes": dfa.num_states * dfa.alphabet_size * 8,
        "build_seconds": round(build_s, 6),
        "attach_seconds": round(attach_s, 6),
    })
    assert attach_s < build_s or attach_s < 1e-3
