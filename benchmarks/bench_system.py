"""Beyond the paper: the assembled appliance, end to end.

The paper evaluates components (kernel, bandwidth, schedules) and derives
system throughput analytically.  :class:`CellMatchingSystem` actually
*runs* the assembled pipeline on the simulator — PPE folding, staged main
memory, per-block DMA, kernels — so this bench reports what the analytic
composition hides: pipeline fill, the first exposed transfer, PPE
headroom, and how end-to-end throughput converges to the kernel rate as
the input grows.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core.system import CellMatchingSystem
from repro.dfa import AhoCorasick, case_fold_32
from repro.workloads import ascii_keywords, plant_matches


@pytest.fixture(scope="module")
def dfa_and_words():
    fold = case_fold_32()
    words = ascii_keywords(12, seed=95)
    dfa = AhoCorasick([fold.fold_bytes(w) for w in words], 32).to_dfa()
    return dfa, words


def traffic(words, size, seed):
    rng = np.random.default_rng(seed)
    raw = bytes(rng.integers(65, 91, size, dtype=np.uint8))
    return plant_matches(raw, words, max(1, size // 2000), seed=seed + 1)


def test_system_scaling_report(dfa_and_words, report):
    dfa, words = dfa_and_words
    raw = traffic(words, 120_000, seed=96)
    rows = []
    for tiles in (1, 2, 4, 8):
        system = CellMatchingSystem(dfa, num_tiles=tiles)
        result = system.filter_block(raw)
        rows.append([
            tiles,
            result.total_matches,
            round(result.compute_gbps, 2),
            round(result.end_to_end_gbps, 2),
            f"{result.transfer_hidden_fraction() * 100:.0f}%",
            round(result.ppe_seconds * 1e6, 1),
            round(result.makespan_seconds * 1e6, 1),
        ])
    text = ascii_table(
        ["tiles", "matches", "kernel Gbps", "end-to-end Gbps",
         "DMA hidden", "PPE us", "makespan us"],
        rows, title="Full pipeline on the simulated Cell (120 KB batch): "
                    "PPE fold + DMA streaming + v4 kernels")
    report("system_pipeline", text)


def test_parallel_tiles_scale(dfa_and_words):
    dfa, words = dfa_and_words
    raw = traffic(words, 80_000, seed=97)
    rates = {}
    for tiles in (1, 2, 4):
        result = CellMatchingSystem(dfa, num_tiles=tiles).filter_block(raw)
        rates[tiles] = result.end_to_end_gbps
    assert rates[2] > 1.6 * rates[1]
    assert rates[4] > 2.8 * rates[1]


def test_end_to_end_converges_to_kernel_rate(dfa_and_words):
    """With many blocks the exposed first transfer amortizes away."""
    dfa, words = dfa_and_words
    small = CellMatchingSystem(dfa, num_tiles=1).filter_block(
        traffic(words, 20_000, seed=98))
    large = CellMatchingSystem(dfa, num_tiles=1).filter_block(
        traffic(words, 200_000, seed=99))
    gap_small = small.compute_gbps - small.end_to_end_gbps
    gap_large = large.compute_gbps - large.end_to_end_gbps
    assert gap_large < gap_small


def test_transfers_hidden_on_long_runs(dfa_and_words):
    dfa, words = dfa_and_words
    result = CellMatchingSystem(dfa, num_tiles=1).filter_block(
        traffic(words, 200_000, seed=100))
    assert result.transfer_hidden_fraction() > 0.8


def test_ppe_never_the_bottleneck(dfa_and_words):
    """The paper's §5 assumption: one PPE feeds all 8 SPEs."""
    dfa, words = dfa_and_words
    result = CellMatchingSystem(dfa, num_tiles=8).filter_block(
        traffic(words, 120_000, seed=101))
    assert result.ppe_seconds < result.makespan_seconds


def test_benchmark_pipeline(dfa_and_words, benchmark):
    dfa, words = dfa_and_words
    raw = traffic(words, 30_000, seed=102)
    system = CellMatchingSystem(dfa, num_tiles=2)

    def run():
        return system.filter_block(raw, verify=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.bytes_scanned == len(raw)
