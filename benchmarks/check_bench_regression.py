"""Bench-regression gate: fresh bench JSON vs committed baselines.

CI regenerates ``benchmarks/results/BENCH_backends.json`` and
``benchmarks/results/BENCH_fused.json`` on every run (the bench smoke
step) and then calls this script, which fails the build when

* the headline backend's throughput drops more than ``--tolerance``
  below the committed ``benchmarks/baselines/BENCH_backends.json``, or
* any per-D ``fused_mb_per_s`` / ``hotcold_mb_per_s`` row drops more
  than ``--tolerance`` below the committed
  ``benchmarks/baselines/BENCH_fused.json`` (so a change that only
  collapses one partition count cannot hide behind the headline), or
* any prefilter density row (low/mid/high) drops more than
  ``--tolerance`` on either its bare or its screened throughput (so a
  slower screen or a slower fall-through cannot hide behind the other
  densities), or
* the policy layer's verdict overhead (``BENCH_policy.json``, measured
  against a bare session scan over identical traffic) exceeds
  ``--policy-overhead-max`` percent — an absolute ceiling, not a
  baseline diff, because "verdicts ride the scan nearly for free" is
  the subsystem's contract.

The headline backend defaults to the fastest backend recorded in the
*baseline* (so a new backend cannot promote itself past the gate by
merely existing) and can be pinned with ``--backend``.  Backends or
sweep rows present only on one side are reported but never gated — the
gate protects against silent slowdowns of code that already shipped,
not against roster changes.  A missing fused baseline file skips the
per-D gate with a note, and a missing ``BENCH_policy.json`` skips the
overhead gate the same way (bootstrap-friendly).

Throughput is compared as MB/s, which stays comparable when the block
size differs between runs; a block-size mismatch is still called out in
the report because cache effects make small-block numbers noisier.

Exit codes: 0 pass, 1 usage/IO error, 2 regression.

Usage::

    python benchmarks/check_bench_regression.py \
        [--fresh benchmarks/results/BENCH_backends.json] \
        [--baseline benchmarks/baselines/BENCH_backends.json] \
        [--fused-fresh benchmarks/results/BENCH_fused.json] \
        [--fused-baseline benchmarks/baselines/BENCH_fused.json] \
        [--backend streaming] [--tolerance 0.30]

``REPRO_BENCH_TOLERANCE`` overrides the default tolerance (0.30) when
the flag is absent.
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_FRESH = os.path.join(HERE, "results", "BENCH_backends.json")
DEFAULT_BASELINE = os.path.join(HERE, "baselines", "BENCH_backends.json")
DEFAULT_FUSED_FRESH = os.path.join(HERE, "results", "BENCH_fused.json")
DEFAULT_FUSED_BASELINE = os.path.join(HERE, "baselines",
                                      "BENCH_fused.json")
DEFAULT_POLICY_FRESH = os.path.join(HERE, "results", "BENCH_policy.json")
DEFAULT_SERVICE_FRESH = os.path.join(HERE, "results",
                                     "BENCH_service.json")
DEFAULT_SERVICE_BASELINE = os.path.join(HERE, "baselines",
                                        "BENCH_service.json")


def _load(path, section="per_backend"):
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"[bench gate] cannot read {path}: {exc}")
    if section not in payload:
        raise SystemExit(f"[bench gate] {path} has no {section} section")
    return payload


def _throughput(entry):
    value = entry.get("mb_per_s")
    return float(value) if value else 0.0


def headline_backend(baseline):
    """The fastest backend in the baseline payload."""
    per = baseline["per_backend"]
    return max(per, key=lambda name: _throughput(per[name]))


def compare(baseline, fresh, backend=None, tolerance=0.30, out=sys.stdout):
    """Return (ok, lines) for a fresh payload against the baseline."""
    base_per = baseline["per_backend"]
    fresh_per = fresh["per_backend"]
    backend = backend or headline_backend(baseline)
    lines = []

    if baseline.get("block_bytes") != fresh.get("block_bytes"):
        lines.append(
            f"note: block size differs (baseline "
            f"{baseline.get('block_bytes')} vs fresh "
            f"{fresh.get('block_bytes')} bytes); comparing MB/s")

    for name in sorted(set(base_per) | set(fresh_per)):
        if name not in base_per:
            lines.append(f"  {name:<10} new backend, not gated "
                         f"({_throughput(fresh_per[name]):.1f} MB/s)")
        elif name not in fresh_per:
            lines.append(f"  {name:<10} missing from fresh run")
        else:
            old, new = _throughput(base_per[name]), \
                _throughput(fresh_per[name])
            ratio = new / old if old else float("inf")
            mark = " <- headline" if name == backend else ""
            lines.append(f"  {name:<10} {old:8.1f} -> {new:8.1f} MB/s "
                         f"({ratio:5.2f}x){mark}")

    if backend not in base_per:
        raise SystemExit(f"[bench gate] backend {backend!r} not in baseline "
                         f"({', '.join(sorted(base_per))})")
    if backend not in fresh_per:
        lines.append(f"FAIL: headline backend {backend!r} missing from "
                     f"the fresh run")
        return False, lines

    old = _throughput(base_per[backend])
    new = _throughput(fresh_per[backend])
    floor = old * (1.0 - tolerance)
    ok = new >= floor
    verdict = "pass" if ok else "FAIL"
    lines.append(f"{verdict}: {backend} {new:.1f} MB/s vs baseline "
                 f"{old:.1f} MB/s (floor {floor:.1f} at "
                 f"{tolerance:.0%} tolerance)")
    return ok, lines


#: BENCH_fused.json per-slice throughput keys gated per D.
FUSED_GATED_KEYS = ("fused_mb_per_s", "hotcold_mb_per_s",
                    "hotcold2_mb_per_s")

#: BENCH_fused.json prefilter throughput keys gated per match density.
PREFILTER_GATED_KEYS = ("bare_mb_per_s", "screened_mb_per_s")


def compare_prefilter(baseline, fresh, tolerance=0.30):
    """Return (ok, lines) gating the prefilter sweep per density.

    Each match-density row (low/mid/high) is gated on both the bare
    and the screened pipeline's MB/s, so neither a slower screen nor a
    slower fall-through can hide behind the other densities.  A fresh
    run without the prefilter section fails; a *baseline* without it
    is handled by the caller (bootstrap).
    """
    base_rows = baseline.get("per_density", {})
    fresh_rows = fresh.get("per_density", {})
    lines = []
    ok = True
    for density in sorted(base_rows):
        if density not in fresh_rows:
            lines.append(f"  FAIL: {density} corpus missing from fresh "
                         f"run")
            ok = False
            continue
        for key in PREFILTER_GATED_KEYS:
            if key not in base_rows[density]:
                continue
            old = float(base_rows[density][key] or 0.0)
            new = float(fresh_rows[density].get(key) or 0.0)
            floor = old * (1.0 - tolerance)
            good = new >= floor
            ok = ok and good
            verdict = "pass" if good else "FAIL"
            lines.append(
                f"  {verdict}: {density:<5}{key.split('_mb')[0]:<9}"
                f"{old:8.1f} -> {new:8.1f} MB/s (floor {floor:.1f})")
    return ok, lines


def compare_fused(baseline, fresh, tolerance=0.30):
    """Return (ok, lines) gating every per-D fused/hot-cold row."""
    base_rows = baseline["per_slices"]
    fresh_rows = fresh["per_slices"]
    lines = []
    ok = True
    for d in sorted(base_rows, key=lambda k: int(k)):
        if d not in fresh_rows:
            lines.append(f"  D={d:<2} missing from fresh run")
            continue
        for key in FUSED_GATED_KEYS:
            if key not in base_rows[d]:
                continue        # baseline predates this column
            old = float(base_rows[d][key] or 0.0)
            new = float(fresh_rows[d].get(key) or 0.0)
            floor = old * (1.0 - tolerance)
            good = new >= floor
            ok = ok and good
            verdict = "pass" if good else "FAIL"
            lines.append(
                f"  {verdict}: D={d} {key.split('_mb')[0]:<8}"
                f"{old:8.1f} -> {new:8.1f} MB/s (floor {floor:.1f})")
    return ok, lines


def compare_policy(fresh, overhead_max=15.0):
    """Return (ok, lines) gating the policy layer's verdict overhead."""
    overhead = float(fresh.get("verdict_overhead_pct", 0.0))
    ok = overhead <= overhead_max
    verdict = "pass" if ok else "FAIL"
    lines = [f"  {verdict}: verdict overhead {overhead:+.1f}% vs raw "
             f"session scan (ceiling {overhead_max:.0f}%)"]
    swaps = fresh.get("hot_swap", {})
    for name in ("acme", "beta"):
        run = swaps.get(name)
        if not run:
            continue
        errors = int(run.get("errors", 0))
        good = errors == 0
        ok = ok and good
        lines.append(f"  {'pass' if good else 'FAIL'}: tenant {name} "
                     f"{run.get('requests', 0)} requests, "
                     f"{errors} errors under rule hot-swap")
    return ok, lines


def compare_pool(fresh, baseline=None, pool_min=1.5, tolerance=0.30):
    """Return (ok, lines) gating the worker-pool sweep.

    Three checks, all cores-aware (a host with fewer cores than the
    largest pool cannot deliver a parallel speedup, so the scaling and
    latency demands are skipped there with a note rather than failing
    an honest run):

    * **scaling** — req/s at the largest pool must be at least
      ``pool_min`` times the single-worker row of the *same* run
      (needs one core per worker plus one for the gateway/loadgen);
    * **p99 blow-up** — the largest pool's p99 must stay within
      ``2 x (1 + tolerance)`` of the single-worker p99 (per-worker
      load is matched by construction: two connections per worker);
    * **baseline throughput** — the largest pool's req/s must not drop
      more than ``tolerance`` below the committed baseline's matching
      row (skipped when the baseline has no pool sweep — bootstrap).
    """
    sweep = fresh.get("pool_sweep") or {}
    rows = sweep.get("rows") or []
    lines = []
    if len(rows) < 2:
        return True, ["  fresh run has no pool sweep rows — gate "
                      "skipped"]
    cores = int(sweep.get("host_cores") or 0)
    base = rows[0]
    top = max(rows, key=lambda r: int(r["workers"]))
    top_workers = int(top["workers"])
    scaling = (float(top["rps"]) / float(base["rps"])
               if float(base["rps"]) else 0.0)
    lines.append(f"  {top_workers} workers {float(top['rps']):8.0f} "
                 f"req/s vs 1 worker {float(base['rps']):8.0f} req/s "
                 f"({scaling:.2f}x) on {cores} host core(s)")
    ok = True
    if cores > top_workers:
        good = scaling >= pool_min
        ok = ok and good
        lines.append(f"  {'pass' if good else 'FAIL'}: scaling "
                     f"{scaling:.2f}x (floor {pool_min:.2f}x)")
        p99_old = float(base.get("p99_ms") or 0.0)
        p99_new = float(top.get("p99_ms") or 0.0)
        ceiling = p99_old * 2.0 * (1.0 + tolerance)
        good = p99_old == 0.0 or p99_new <= ceiling
        ok = ok and good
        lines.append(f"  {'pass' if good else 'FAIL'}: p99 "
                     f"{p99_new:.2f} ms vs single-worker "
                     f"{p99_old:.2f} ms (ceiling {ceiling:.2f} at "
                     f"matched per-worker load)")
    else:
        lines.append(f"  note: {cores} core(s) <= {top_workers} "
                     f"workers — scaling and p99 gates skipped (the "
                     f"gateway and loadgen need a core of their own "
                     f"for the speedup to be deliverable)")
    base_rows = ((baseline or {}).get("pool_sweep") or {}).get("rows")
    if base_rows:
        by_workers = {int(r["workers"]): r for r in base_rows}
        old_row = by_workers.get(top_workers)
        if old_row is None:
            lines.append(f"  note: baseline has no {top_workers}-worker "
                         f"row — throughput gate skipped")
        else:
            old = float(old_row["rps"])
            new = float(top["rps"])
            floor = old * (1.0 - tolerance)
            good = new >= floor
            ok = ok and good
            lines.append(f"  {'pass' if good else 'FAIL'}: "
                         f"{top_workers}-worker throughput {new:.0f} "
                         f"req/s vs baseline {old:.0f} req/s (floor "
                         f"{floor:.0f})")
    else:
        lines.append("  note: baseline has no pool sweep — throughput "
                     "gate skipped")
    return ok, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail when the headline backend regresses vs the "
                    "committed bench baseline")
    parser.add_argument("--fresh", default=DEFAULT_FRESH,
                        help="freshly generated BENCH_backends.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline BENCH_backends.json")
    parser.add_argument("--fused-fresh", default=DEFAULT_FUSED_FRESH,
                        help="freshly generated BENCH_fused.json")
    parser.add_argument("--fused-baseline",
                        default=DEFAULT_FUSED_BASELINE,
                        help="committed baseline BENCH_fused.json")
    parser.add_argument("--backend", default=None,
                        help="headline backend (default: fastest in "
                             "the baseline)")
    parser.add_argument("--policy-fresh", default=DEFAULT_POLICY_FRESH,
                        help="freshly generated BENCH_policy.json")
    parser.add_argument(
        "--policy-overhead-max", type=float,
        default=float(os.environ.get("REPRO_POLICY_OVERHEAD_MAX", "15")),
        help="max verdict overhead over a raw session scan, in percent "
             "(default 15, or REPRO_POLICY_OVERHEAD_MAX)")
    parser.add_argument("--service-fresh", default=DEFAULT_SERVICE_FRESH,
                        help="freshly generated BENCH_service.json")
    parser.add_argument("--service-baseline",
                        default=DEFAULT_SERVICE_BASELINE,
                        help="committed baseline BENCH_service.json")
    parser.add_argument(
        "--pool-min", type=float,
        default=float(os.environ.get("REPRO_BENCH_POOL_MIN", "1.5")),
        help="min req/s scaling of the largest worker pool over one "
             "worker, applied when the host has at least that many "
             "cores (default 1.5, or REPRO_BENCH_POOL_MIN)")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional regression (default 0.30, or "
             "REPRO_BENCH_TOLERANCE)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("tolerance must be in [0, 1)")

    ok, lines = compare(_load(args.baseline), _load(args.fresh),
                        backend=args.backend, tolerance=args.tolerance)
    print("[bench gate]")
    for line in lines:
        print(line)

    if os.path.exists(args.fused_baseline):
        fused_base = _load(args.fused_baseline, section="per_slices")
        fused_fresh = _load(args.fused_fresh, section="per_slices")
        fused_ok, fused_lines = compare_fused(
            fused_base, fused_fresh, tolerance=args.tolerance)
        ok = ok and fused_ok
        print("[bench gate: fused D-sweep]")
        for line in fused_lines:
            print(line)
        if "prefilter" in fused_base:
            pf_ok, pf_lines = compare_prefilter(
                fused_base["prefilter"],
                fused_fresh.get("prefilter", {}),
                tolerance=args.tolerance)
            ok = ok and pf_ok
            print("[bench gate: prefilter density sweep]")
            for line in pf_lines:
                print(line)
        else:
            print("[bench gate] baseline has no prefilter section — "
                  "per-density gate skipped")
    else:
        print(f"[bench gate] no fused baseline at {args.fused_baseline}"
              f" — per-D gate skipped")

    if os.path.exists(args.policy_fresh):
        policy_fresh = _load(args.policy_fresh,
                             section="verdict_overhead_pct")
        policy_ok, policy_lines = compare_policy(
            policy_fresh, overhead_max=args.policy_overhead_max)
        ok = ok and policy_ok
        print("[bench gate: policy verdict overhead]")
        for line in policy_lines:
            print(line)
    else:
        print(f"[bench gate] no policy results at {args.policy_fresh}"
              f" — verdict-overhead gate skipped")

    if os.path.exists(args.service_fresh):
        # Tolerant load: a service result predating the pool sweep
        # (no pool_sweep section) skips the gate instead of erroring.
        try:
            with open(args.service_fresh) as fh:
                service_fresh = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"[bench gate] cannot read "
                             f"{args.service_fresh}: {exc}")
        service_base = None
        if os.path.exists(args.service_baseline):
            try:
                with open(args.service_baseline) as fh:
                    service_base = json.load(fh)
            except (OSError, ValueError):
                service_base = None
        pool_ok, pool_lines = compare_pool(
            service_fresh, baseline=service_base,
            pool_min=args.pool_min, tolerance=args.tolerance)
        ok = ok and pool_ok
        print("[bench gate: worker-pool scaling]")
        for line in pool_lines:
            print(line)
    else:
        print(f"[bench gate] no service results at "
              f"{args.service_fresh} — pool gate skipped")
    return 0 if ok else 2


if __name__ == "__main__":
    sys.exit(main())
