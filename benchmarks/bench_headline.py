"""The paper's headline numbers (§1, §5, abstract).

* one tile: 5.11 Gbps with ~1500 states;
* two SPEs filter a 10 Gbps link in real time;
* 8 SPEs (one chip): 40.88 Gbps; a dual-Cell blade: 81.76 Gbps.

Measured counterparts come from this repository's simulator; the report
prints both columns and the ratio.
"""

import pytest

from repro.analysis import (
    PAPER_BLADE_GBPS,
    PAPER_CHIP_GBPS,
    PAPER_TILE_GBPS,
    comparison_table,
    parallel_gbps,
    spes_for_line_rate,
)
from repro.core import DFATile
from repro.dfa import AhoCorasick
from repro.workloads import signatures_for_states, streams_for_tile


@pytest.fixture(scope="module")
def measured_tile_gbps():
    patterns = signatures_for_states(1500, seed=88)
    tile = DFATile(AhoCorasick(patterns, 32).to_dfa())
    streams = streams_for_tile(384, patterns, seed=89)
    return tile.run_streams(streams, version=4).throughput_gbps()


def test_headline_report(measured_tile_gbps, report):
    m = measured_tile_gbps
    text = comparison_table([
        ("single tile Gbps", PAPER_TILE_GBPS, m),
        ("2 SPEs (10 GbE filter) Gbps", 2 * PAPER_TILE_GBPS, 2 * m),
        ("8 SPEs / chip Gbps", PAPER_CHIP_GBPS, 8 * m),
        ("dual-Cell blade Gbps", PAPER_BLADE_GBPS, 16 * m),
    ], title="Headline throughput: paper vs this reproduction")
    report("headline", text)


def test_tile_within_band(measured_tile_gbps):
    assert measured_tile_gbps == pytest.approx(PAPER_TILE_GBPS, rel=0.15)


def test_two_spes_exceed_10gbps_modelled():
    assert spes_for_line_rate(10.0, PAPER_TILE_GBPS) == 2


def test_chip_and_blade_scaling():
    assert parallel_gbps(8) == pytest.approx(PAPER_CHIP_GBPS)
    assert 2 * parallel_gbps(8) == pytest.approx(PAPER_BLADE_GBPS)


def test_benchmark_tile_run(measured_tile_gbps, benchmark):
    patterns = signatures_for_states(300, seed=90)
    tile = DFATile(AhoCorasick(patterns, 32).to_dfa())
    streams = streams_for_tile(96, patterns, seed=91)

    def run():
        return tile.run_streams(streams, version=4, verify=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.transitions == 96 * 16
