"""Figure 9: throughput of dynamic STT replacement vs aggregate STT size.

The paper plots T(n) = P × 5.11 / (2(n−1)) Gbps for P = 1, 2, 4, 8 SPEs
against the aggregate table size n × 95 KB, out to ~600 KB.  We regenerate
all four series, chart them, verify the hyperbolic shape and the P-scaling,
and cross-check a few points against a functional replacement matcher
whose slice count is derived from a real partitioned dictionary.
"""

import pytest

from repro.analysis import ascii_chart, ascii_table
from repro.core.replacement import HALF_TILE_STT_BYTES, \
    ReplacementMatcher, effective_gbps
from repro.dfa import partition_patterns
from repro.workloads import signatures_for_states

SPE_COUNTS = [1, 2, 4, 8]
SLICE_COUNTS = list(range(1, 8))   # aggregate size up to ~630 KB


def aggregate_kb(n: int) -> float:
    return n * HALF_TILE_STT_BYTES / 1024


@pytest.fixture(scope="module")
def series():
    return {
        p: [effective_gbps(n, num_spes=p) for n in SLICE_COUNTS]
        for p in SPE_COUNTS
    }


def test_figure9_report(series, report):
    rows = []
    for n in SLICE_COUNTS:
        rows.append([n, round(aggregate_kb(n), 0)] + [
            round(series[p][n - 1], 2) for p in SPE_COUNTS
        ])
    table = ascii_table(
        ["slices", "agg. STT KB"] + [f"{p} SPE" for p in SPE_COUNTS],
        rows, title="Figure 9 - dynamic STT replacement throughput "
                    "(Gbps), T = P * 5.11 / (2(n-1))")
    chart = ascii_chart(
        [(f"{p} SPE", [aggregate_kb(n) for n in SLICE_COUNTS], series[p])
         for p in SPE_COUNTS],
        title="Figure 9 shape", x_label="aggregate STT size (KB)",
        y_label="Gbps")
    report("fig9_sweep", table + "\n\n" + chart)


def test_left_edge_matches_parallel_composition(series):
    """n = 1 (everything resident) is just the parallel configuration."""
    assert series[1][0] == pytest.approx(5.11)
    assert series[8][0] == pytest.approx(40.88)


def test_hyperbolic_decay(series):
    for p in SPE_COUNTS:
        values = series[p]
        assert all(a > b for a, b in zip(values, values[1:]))
        # T(n) * (n-1) constant for n >= 2: the 1/(n-1) law.
        products = [v * (n - 1) for v, n in zip(values[1:],
                                                SLICE_COUNTS[1:])]
        assert max(products) == pytest.approx(min(products))


def test_spe_scaling_is_linear(series):
    for i, n in enumerate(SLICE_COUNTS):
        assert series[8][i] == pytest.approx(8 * series[1][i])
        assert series[4][i] == pytest.approx(4 * series[1][i])


def test_paper_anchor_points(series):
    """Spot values stated or directly derivable from §6."""
    assert series[1][1] == pytest.approx(5.11 / 2)     # n=2
    assert series[1][2] == pytest.approx(5.11 / 4)     # n=3
    assert series[8][6] == pytest.approx(8 * 5.11 / 12)  # n=7


def test_slice_count_from_real_dictionary():
    """A dictionary sized for ~3 half-tiles really partitions into 3-4
    slices, tying the x-axis to actual dictionaries."""
    patterns = signatures_for_states(2300, seed=61)
    part = partition_patterns(patterns, max_states=800)
    assert 3 <= part.num_slices <= 4
    matcher = ReplacementMatcher(part)
    assert matcher.modelled_gbps() == \
        pytest.approx(effective_gbps(part.num_slices))


def test_benchmark_sweep(benchmark):
    def sweep():
        return [effective_gbps(n, num_spes=p)
                for p in SPE_COUNTS for n in SLICE_COUNTS]

    values = benchmark(sweep)
    assert len(values) == len(SPE_COUNTS) * len(SLICE_COUNTS)
