"""Figure 3: local-store usage of the three tile configurations.

Case 1: 2×16 KB buffers -> 190 KB STT -> 1520 states
Case 2: 2× 8 KB buffers -> 206 KB STT -> 1648 states
Case 3: 2× 4 KB buffers -> 214 KB STT -> 1712 states

These are exact arithmetic identities of the layout, so unlike the timing
figures they are asserted to the digit.
"""

import pytest

from repro.analysis import ascii_table
from repro.cell.local_store import LocalStore
from repro.core import DFATile, FIGURE3_CASES, plan_tile
from repro.dfa import AhoCorasick
from repro.workloads import signatures_for_states

PAPER_CASES = [
    # (buffer KB, STT KB, states)
    (16, 190, 1520),
    (8, 206, 1648),
    (4, 214, 1712),
]


def test_figure3_report(report):
    rows = []
    for i, (plan, (buf_kb, stt_kb, states)) in enumerate(
            zip(FIGURE3_CASES, PAPER_CASES), start=1):
        rows.append([
            f"case {i}",
            f"2 x {plan.buffer_bytes // 1024} KB",
            round(plan.stt_capacity / 1024, 1),
            stt_kb,
            plan.max_states,
            states,
        ])
    text = ascii_table(
        ["config", "input buffers", "STT KB", "paper", "max states",
         "paper"],
        rows, title="Figure 3 - SPE local store usage (34 KB code+stack)")
    report("fig3_localstore", text)


@pytest.mark.parametrize("case,expected", list(zip(FIGURE3_CASES,
                                                   PAPER_CASES)))
def test_exact_paper_numbers(case, expected):
    buf_kb, stt_kb, states = expected
    assert case.buffer_bytes == buf_kb * 1024
    assert case.stt_capacity == stt_kb * 1024
    assert case.max_states == states


def test_each_case_actually_hosts_a_full_tile():
    """Build a maximal DFA for each layout and install it for real."""
    for plan in FIGURE3_CASES:
        patterns = signatures_for_states(plan.max_states - 15, seed=9)
        dfa = AhoCorasick(patterns, 32).to_dfa()
        assert dfa.num_states <= plan.max_states
        tile = DFATile(dfa, plan=plan)
        ls = tile.local_store
        assert ls.region("stt").size == plan.stt_capacity
        assert ls.bytes_free >= 0


def test_smaller_buffers_more_states():
    states = [plan.max_states for plan in FIGURE3_CASES]
    assert states[0] < states[1] < states[2]


def test_benchmark_tile_installation(benchmark):
    """Time a full tile build+install (DFA -> STT image -> local store)."""
    patterns = signatures_for_states(800, seed=10)
    dfa = AhoCorasick(patterns, 32).to_dfa()

    def install():
        return DFATile(dfa, plan=plan_tile())

    tile = benchmark.pedantic(install, rounds=3, iterations=1)
    assert tile.num_states == dfa.num_states
