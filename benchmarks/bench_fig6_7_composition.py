"""Figures 6 and 7: composing DFA tiles in series, parallel, and mixed.

Figure 6(a): two parallel tiles, same STT  -> 10.22 Gbps, same dictionary.
Figure 6(b): two series tiles, split STT   ->  5.11 Gbps, ~3k states.
Figure 7   : 2 parallel groups × 4 series  -> 10.22 Gbps, ~4x dictionary,
             8 SPEs.

The models are asserted exactly (they are arithmetic); the *functional*
part — that sliced/partitioned scanning finds exactly the monolithic
matches — is re-verified here at larger scale, and the numpy engine scan
is the timed operation.
"""

import pytest

from repro.analysis import PAPER_TILE_GBPS, ascii_table
from repro.core import TileComposition, VectorDFAEngine, mixed, parallel, \
    series
from repro.dfa import AhoCorasick, build_dfa, partition_patterns
from repro.workloads import plant_matches, random_payload, \
    signatures_for_states


@pytest.fixture(scope="module")
def dictionary():
    return signatures_for_states(700, seed=55)


@pytest.fixture(scope="module")
def workload(dictionary):
    return plant_matches(random_payload(200_000, seed=5), dictionary, 300,
                         seed=6)


def test_figure6_7_report(dictionary, workload, report):
    mono = build_dfa(dictionary, 32)
    part2 = partition_patterns(dictionary, max_states=400)
    part4 = partition_patterns(dictionary, max_states=200)
    # (name, composition, patterns the config is supposed to recognize)
    sub2 = [p for g in part2.groups[:2] for p in
            (dictionary[i] for i in g)]
    sub4 = [p for g in part4.groups[:4] for p in
            (dictionary[i] for i in g)]
    configs = [
        ("single tile", parallel(mono, 1), dictionary),
        ("Fig 6a: 2 parallel", parallel(mono, 2), dictionary),
        ("Fig 6b: 2 series", series(part2.dfas[:2]), sub2),
        ("8 parallel (chip)", parallel(mono, 8), dictionary),
        ("Fig 7: 2 x 4 mixed", mixed(part4.dfas[:4], ways=2), sub4),
    ]
    rows = []
    for name, comp, subset in configs:
        found = comp.scan_block(workload).total_matches
        ref = VectorDFAEngine(build_dfa(subset, 32)).count_block(workload)
        rows.append([
            name,
            comp.spes_used,
            comp.total_states,
            round(comp.throughput_gbps(PAPER_TILE_GBPS), 2),
            found,
            "ok" if found == ref else f"MISMATCH (ref {ref})",
        ])
    text = ascii_table(
        ["configuration", "SPEs", "states", "Gbps", "matches", "check"],
        rows, title="Figures 6/7 - tile composition (each config checked "
                    "against a monolithic DFA of its dictionary subset)")
    report("fig6_7_composition", text)
    assert all(row[-1] == "ok" for row in rows)


def test_figure6a_parallel_doubles(dictionary):
    comp = parallel(build_dfa(dictionary, 32), 2)
    assert comp.throughput_gbps(PAPER_TILE_GBPS) == pytest.approx(10.22)
    assert comp.spes_used == 2


def test_figure6b_series_doubles_states(dictionary):
    part = partition_patterns(dictionary, max_states=400)
    comp = series(part.dfas[:2])
    single_budget = 400
    assert comp.total_states > single_budget
    assert comp.throughput_gbps(PAPER_TILE_GBPS) == \
        pytest.approx(PAPER_TILE_GBPS)


def test_figure7_mixed(dictionary):
    part = partition_patterns(dictionary, max_states=200)
    assert part.num_slices >= 4
    comp = mixed(part.dfas[:4], ways=2)
    assert comp.spes_used == 8
    assert comp.throughput_gbps(PAPER_TILE_GBPS) == pytest.approx(10.22)


def test_parallel_slicing_functionally_exact(dictionary, workload):
    mono = build_dfa(dictionary, 32)
    ref = VectorDFAEngine(mono).count_block(workload)
    for ways in (2, 4, 8):
        comp = parallel(mono, ways)
        assert comp.scan_block(workload).total_matches == ref


def test_series_functionally_exact(dictionary, workload):
    mono = build_dfa(dictionary, 32)
    ref = VectorDFAEngine(mono).count_block(workload)
    part = partition_patterns(dictionary, max_states=300)
    comp = series(part.dfas)
    assert comp.scan_block(workload).total_matches == ref


def test_benchmark_engine_scan(dictionary, workload, benchmark):
    """Timed op: the vectorized engine over the 200 KB workload."""
    engine = VectorDFAEngine(build_dfa(dictionary, 32))

    def scan():
        return engine.count_block(workload)

    count = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert count > 0
