"""Lane-dimension fusion microbench: one fused pass vs D per-DFA passes.

The dictionary is held at a fixed total size while ``max_states``
partitions it into D ∈ {1, 2, 4, 8} slices; the per-DFA baseline scans
the block once per slice (D passes, D × input traffic) and the fused
path advances all D slices in a single strip-mined pass over a
D × chunks lane grid.  The hot/cold union path then scans the same
block through the cache-resident table (one gather per byte at any D —
the production whole-dictionary counting path), and the two-byte-stride
``hotcold2`` path scans it again through the pair-symbol hot table (one
gather per *two* bytes).  Counts are asserted bit-identical, throughput
plus cache-footprint columns (table bytes, hot-set size, hot-hit rate)
land in ``BENCH_fused.json``, and the acceptance bars are the D=4
fused speedup, the hot/cold no-per-D-collapse floor and the D=4
hotcold2-over-hotcold speedup.

Environment knobs:

* ``REPRO_BENCH_SMOKE=1``       — small block: the CI smoke run.
* ``REPRO_BENCH_BLOCK_MB``      — block size in MB (default 8).
* ``REPRO_BENCH_FUSED_MIN``     — D=4 speedup floor (default 1.5,
  waived in smoke mode where timing noise dominates).
* ``REPRO_BENCH_HOTCOLD_FLOOR`` — hot/cold MB/s at every D must stay
  above this fraction of its D=1 value (default 0.7 — "flat or
  rising", with timing-noise headroom; waived in smoke mode).
* ``REPRO_BENCH_HOTCOLD2_MIN`` — two-byte-stride speedup over the
  one-byte hot/cold scan at D=4 (default 1.4; waived in smoke mode).
* ``REPRO_BENCH_PREFILTER_MIN`` — packed-prefilter pipeline speedup
  over the bare hotcold2 scan on the low-match-density corpus
  (default 2.0; waived in smoke mode).
* ``REPRO_BENCH_PREFILTER_HIGH_FLOOR`` — screened MB/s as a fraction
  of bare on the high-density corpus, where the prefilter must fall
  through and cost at most one cheap vector pass (default 0.7;
  waived in smoke mode).

The prefilter sweep also supersedes the retired ``bench_future_bloom``
as the filter-stage source of truth: the §7 Bloom direction and the
packed trigram screen are the same filter-then-verify architecture,
and this file reports the one that shipped (the Bloom tile's model
keeps its unit coverage in ``tests/core/test_bloom_tile.py``).
"""

import os
import time

import numpy as np

from repro.analysis import ascii_table
from repro.core.backends import ScanContext, ScanRequest, execute
from repro.core.compiled import compile_dictionary
from repro.core.engine import HOTCOLD_LANES_TARGET, count_arr
from repro.dfa.alphabet import identity_fold
from repro.workloads import plant_matches, random_payload, \
    random_signatures

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
BLOCK_MB = float(os.environ.get("REPRO_BENCH_BLOCK_MB",
                                "1" if SMOKE else "8"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_FUSED_MIN",
                                   "0" if SMOKE else "1.5"))
HOTCOLD_FLOOR = float(os.environ.get("REPRO_BENCH_HOTCOLD_FLOOR",
                                     "0" if SMOKE else "0.7"))
HOTCOLD2_MIN = float(os.environ.get("REPRO_BENCH_HOTCOLD2_MIN",
                                    "0" if SMOKE else "1.4"))
PREFILTER_MIN = float(os.environ.get("REPRO_BENCH_PREFILTER_MIN",
                                     "0" if SMOKE else "2.0"))
PREFILTER_HIGH_FLOOR = float(
    os.environ.get("REPRO_BENCH_PREFILTER_HIGH_FLOOR",
                   "0" if SMOKE else "0.7"))
CHUNKS = 256
REPEATS = 2 if SMOKE else 3

PATTERNS = random_signatures(32, 4, 10, seed=77)
SLICE_TARGETS = (1, 2, 4, 8)

#: Prefilter dictionary: realistic signature lengths (12-16 bytes, the
#: Snort-content ballpark), which buys the q-gram screen a long
#: sampling stride.
PF_PATTERNS = random_signatures(32, 12, 16, seed=117)


def _compile_for(target: int):
    """Same dictionary, partitioned into exactly ``target`` slices by
    searching the ``max_states`` budget (monotone non-increasing)."""
    fold = identity_fold(32)
    if target == 1:
        return compile_dictionary(PATTERNS, fold=fold)
    for max_states in range(160, 4, -1):
        try:
            compiled = compile_dictionary(PATTERNS, fold=fold,
                                          max_states=max_states)
        except Exception:
            continue
        if compiled.num_slices == target:
            return compiled
    return None


def _best(fn, *args):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_fused_vs_per_dfa_sweep(report, report_json):
    nbytes = int(BLOCK_MB * 1e6)
    block = bytes(plant_matches(random_payload(nbytes, seed=78),
                                PATTERNS, max(1, nbytes // 2000),
                                seed=79))
    arr = np.frombuffer(block, dtype=np.uint8)

    rows = []
    results = {}
    for target in SLICE_TARGETS:
        compiled = _compile_for(target)
        if compiled is None:
            print(f"[bench fused] no max_states budget yields "
                  f"{target} slices — row dropped")
            continue
        fused = compiled.fused_scanner()
        hot_cold = compiled.hot_cold_scanner()
        hot_cold2 = compiled.hot_cold2_scanner()
        scanners = compiled.scanners()

        def per_dfa_pass():
            return np.asarray([count_arr(s, arr, CHUNKS, s.start)[0]
                               for s in scanners], dtype=np.int64)

        def fused_pass():
            return fused.count_arr_per_dfa(arr, CHUNKS)[0]

        def hotcold_pass():
            # The production whole-dictionary counting path: one union
            # accumulator, one gather per byte at any D.
            return count_arr(hot_cold, arr, CHUNKS, hot_cold.start,
                             weights=hot_cold.weights,
                             lanes_target=HOTCOLD_LANES_TARGET)[0]

        def hotcold2_pass():
            # Same union accumulator, two input bytes per gather over
            # the pair-symbol hot table.
            return count_arr(hot_cold2, arr, CHUNKS, hot_cold2.start,
                             weights=hot_cold2.weights,
                             lanes_target=HOTCOLD_LANES_TARGET)[0]

        per_dfa_pass()                       # warm all four paths
        fused_pass()
        hotcold_pass()
        hotcold2_pass()
        serial_s, serial_counts = _best(per_dfa_pass)
        fused_s, fused_counts = _best(fused_pass)
        hot_cold.reset_stats()
        hotcold_s, hotcold_total = _best(hotcold_pass)
        hot_cold2.reset_stats()
        hotcold2_s, hotcold2_total = _best(hotcold2_pass)
        assert np.array_equal(fused_counts, serial_counts), \
            f"fused diverged at D={target}"
        weighted_ref = fused.count_arr_per_dfa(arr, CHUNKS,
                                               weights=fused.weights)[0]
        assert int(hotcold_total) == int(weighted_ref.sum()), \
            f"hot/cold diverged at D={target}: {hotcold_total} != " \
            f"{int(weighted_ref.sum())}"
        assert int(hotcold2_total) == int(weighted_ref.sum()), \
            f"two-byte stride diverged at D={target}: " \
            f"{hotcold2_total} != {int(weighted_ref.sum())}"

        table = compiled.hot_cold_table()
        table2 = compiled.hot_cold2_table()
        speedup = serial_s / fused_s if fused_s else float("inf")
        results[target] = {
            "slices": target,
            "total_states": compiled.total_states,
            "matches": int(fused_counts.sum()),
            "per_dfa_seconds": round(serial_s, 5),
            "fused_seconds": round(fused_s, 5),
            "hotcold_seconds": round(hotcold_s, 5),
            "per_dfa_mb_per_s": round(nbytes / serial_s / 1e6, 2),
            "fused_mb_per_s": round(nbytes / fused_s / 1e6, 2),
            "hotcold_mb_per_s": round(nbytes / hotcold_s / 1e6, 2),
            "hotcold2_seconds": round(hotcold2_s, 5),
            "hotcold2_mb_per_s": round(nbytes / hotcold2_s / 1e6, 2),
            "hotcold2_speedup": round(hotcold_s / hotcold2_s
                                      if hotcold2_s else float("inf"),
                                      3),
            "speedup": round(speedup, 3),
            "union_states": table.num_states,
            "hot_states": table.num_hot,
            "table_bytes": table.table_bytes,
            "fused_table_bytes": compiled.fused_table_bytes,
            "hot_hit_rate": round(hot_cold.hot_hit_rate, 6),
            "hot2_states": table2.num_hot2,
            "hot2_bytes": table2.hot2_bytes,
            "hot2_hit_rate": round(hot_cold2.hot_hit_rate, 6),
        }
        rows.append([target, compiled.total_states,
                     f"{nbytes / serial_s / 1e6:.0f}",
                     f"{nbytes / fused_s / 1e6:.0f}",
                     f"{nbytes / hotcold_s / 1e6:.0f}",
                     f"{nbytes / hotcold2_s / 1e6:.0f}",
                     f"{table.table_bytes // 1024}K",
                     f"{table2.hot2_bytes // 1024}K",
                     f"{table.num_hot}/{table.num_states}",
                     f"{hot_cold.hot_hit_rate:.4f}",
                     f"{hot_cold2.hot_hit_rate:.4f}",
                     f"{speedup:.2f}x",
                     f"{hotcold_s / hotcold2_s:.2f}x"])

    text = ascii_table(
        ["slices", "states", "per-DFA MB/s", "fused MB/s",
         "hot/cold MB/s", "2B MB/s", "hc table", "hot2", "hot set",
         "hot hit", "hot2 hit", "speedup", "2B speedup"],
        rows,
        title=f"Lane-dimension fusion, {BLOCK_MB:.0f} MB block, "
              f"{len(PATTERNS)} patterns, chunks={CHUNKS}")
    report("fused", text)
    report_json("fused", {
        "block_bytes": nbytes,
        "patterns": len(PATTERNS),
        "chunks": CHUNKS,
        "host_cores": os.cpu_count(),
        "smoke": SMOKE,
        "per_slices": results,
    })

    # Fusion must not lose ground at D=1 (passthrough) and must beat
    # the D-pass baseline clearly by D=4 — the acceptance bar.
    assert 4 in results, "D=4 row missing from the sweep"
    if MIN_SPEEDUP > 0:
        assert results[4]["speedup"] >= MIN_SPEEDUP, \
            f"fused {results[4]['speedup']}x at D=4, " \
            f"needs >= {MIN_SPEEDUP}x"
    # The hot/cold union scan must not collapse with the partition
    # count — its table is one union automaton whatever D is, so the
    # D-sweep curve must stay flat (floor = fraction of the D=1 rate,
    # absorbing timing noise).
    if HOTCOLD_FLOOR > 0 and 1 in results:
        base = results[1]["hotcold_mb_per_s"]
        for target, row in results.items():
            assert row["hotcold_mb_per_s"] >= HOTCOLD_FLOOR * base, \
                f"hot/cold collapsed at D={target}: " \
                f"{row['hotcold_mb_per_s']} MB/s vs {base} at D=1"
    # The pair-symbol table must actually pay for its squared alphabet:
    # two bytes per gather has to show up as wall-clock speedup over
    # the one-byte union scan on the production D=4 shape.
    if HOTCOLD2_MIN > 0:
        assert results[4]["hotcold2_speedup"] >= HOTCOLD2_MIN, \
            f"two-byte stride {results[4]['hotcold2_speedup']}x over " \
            f"hot/cold at D=4, needs >= {HOTCOLD2_MIN}x"


def _compile_pf(target: int):
    """PF_PATTERNS partitioned into ``target`` slices (same search as
    :func:`_compile_for`, different dictionary)."""
    fold = identity_fold(32)
    if target == 1:
        return compile_dictionary(PF_PATTERNS, fold=fold)
    for max_states in range(500, 4, -1):
        try:
            compiled = compile_dictionary(PF_PATTERNS, fold=fold,
                                          max_states=max_states)
        except Exception:
            continue
        if compiled.num_slices == target:
            return compiled
    return None


def _pf_corpora(nbytes: int):
    """Three match-density regimes for the screening stage:

    * ``low``  — full-byte random traffic (most bytes fold outside the
      signature alphabet) with rare planted signatures: the NIDS
      steady state the prefilter is built for.
    * ``mid``  — random traffic *inside* the folded signature alphabet
      with frequent plants: every byte could start a match, the mask
      fires often, screening must still not lose.
    * ``high`` — back-to-back signatures: the adversarial saturation
      corpus where the prefilter must fall through.
    """
    low = plant_matches(random_payload(nbytes, alphabet_size=256,
                                       seed=118),
                        PF_PATTERNS, max(1, nbytes // 500_000), seed=119)
    mid = plant_matches(random_payload(nbytes, seed=120),
                        PF_PATTERNS, nbytes // 2000, seed=121)
    tile = b"".join(PF_PATTERNS)
    high = (tile * (nbytes // len(tile) + 1))[:nbytes]
    return [("low", bytes(low)), ("mid", bytes(mid)), ("high", high)]


def test_prefilter_density_sweep(report, report_json):
    """The staged pipeline's screening stage vs the bare hotcold2 scan
    across match densities, through the real ``execute`` path."""
    nbytes = int(BLOCK_MB * 1e6)
    compiled = _compile_pf(4)
    assert compiled is not None, "no max_states budget yields 4 slices"
    pf = compiled.prefilter()
    assert pf is not None, "PF_PATTERNS must stay screenable"

    rows = []
    results = {}
    with ScanContext(compiled) as ctx:
        for density, block in _pf_corpora(nbytes):
            def bare_pass(block=block):
                return execute(ctx, ScanRequest(data=block,
                                                prefilter=False),
                               backend="hotcold2")

            def screened_pass(block=block):
                return execute(ctx, ScanRequest(data=block,
                                                prefilter=True),
                               backend="hotcold2")

            bare_pass()                      # warm both pipelines
            screened_pass()
            bare_s, bare = _best(bare_pass)
            screened_s, screened = _best(screened_pass)
            assert screened.total_matches == bare.total_matches, \
                f"prefilter diverged on the {density} corpus"
            pstats = screened.stats["prefilter"]
            speedup = bare_s / screened_s if screened_s else float("inf")
            results[density] = {
                "matches": bare.total_matches,
                "bare_seconds": round(bare_s, 5),
                "screened_seconds": round(screened_s, 5),
                "bare_mb_per_s": round(nbytes / bare_s / 1e6, 2),
                "screened_mb_per_s": round(nbytes / screened_s / 1e6, 2),
                "speedup": round(speedup, 3),
                "candidate_fraction": round(pstats["candidate_fraction"],
                                            4),
                "segments": pstats["segments"],
                "fall_through": pstats["fall_through"],
            }
            rows.append([density, bare.total_matches,
                         f"{nbytes / bare_s / 1e6:.0f}",
                         f"{nbytes / screened_s / 1e6:.0f}",
                         f"{pstats['candidate_fraction']:.3f}",
                         pstats["segments"],
                         "yes" if pstats["fall_through"] else "no",
                         f"{speedup:.2f}x"])

    text = ascii_table(
        ["density", "matches", "bare MB/s", "screened MB/s",
         "candidate frac", "segments", "fell through", "speedup"],
        rows,
        title=f"Packed prefilter stage vs bare hotcold2, "
              f"{BLOCK_MB:.0f} MB block, {len(PF_PATTERNS)} patterns "
              f"(len {pf.minlen}-{pf.maxlen}, stride {pf.stride}, "
              f"mask {pf.mask_bytes // 1024} KB)")
    report("prefilter", text)
    report_json("fused", {"prefilter": {
        "block_bytes": nbytes,
        "backend": "hotcold2",
        "patterns": len(PF_PATTERNS),
        "minlen": pf.minlen,
        "maxlen": pf.maxlen,
        "stride": pf.stride,
        "mask_bytes": pf.mask_bytes,
        "smoke": SMOKE,
        "per_density": results,
    }}, merge=True)

    # The headline bar: screening must at least double throughput on
    # the clean-traffic corpus it exists for...
    assert results["low"]["fall_through"] is False
    if PREFILTER_MIN > 0:
        assert results["low"]["speedup"] >= PREFILTER_MIN, \
            f"prefilter {results['low']['speedup']}x on the low-density " \
            f"corpus, needs >= {PREFILTER_MIN}x"
    # ...and the saturation corpus must fall through with bounded
    # overhead — one cheap vector pass, never a slower scan.
    assert results["high"]["fall_through"] is True
    if PREFILTER_HIGH_FLOOR > 0:
        floor = PREFILTER_HIGH_FLOOR * results["high"]["bare_mb_per_s"]
        assert results["high"]["screened_mb_per_s"] >= floor, \
            f"fall-through overhead too high: " \
            f"{results['high']['screened_mb_per_s']} MB/s screened vs " \
            f"{results['high']['bare_mb_per_s']} bare"
