"""Ablation: input-alphabet width (DESIGN.md §5.2).

The paper folds bytes onto 32 symbols, which buys three things at once:
8x smaller STT rows (more states per tile), the single-SIMD-shift offset
trick (symbols < 64 keep ``symbol << 2`` inside its byte lane), and fewer
cache... local-store bytes touched.  We sweep widths 16..256 and measure
tile capacity and kernel speed; at width > 64 the kernel needs a
per-stream shift and slows down.
"""

import pytest

from repro.analysis import ascii_table
from repro.core import DFATile, plan_tile
from repro.core.stt import STTImage
from repro.core.kernels import KernelBuilder
from repro.dfa import AhoCorasick
from repro.workloads import random_signatures, streams_for_tile

WIDTHS = [16, 32, 64, 128, 256]


@pytest.fixture(scope="module")
def results():
    out = {}
    for width in WIDTHS:
        patterns = random_signatures(6, 3, 6, alphabet_size=width, seed=40)
        dfa = AhoCorasick(patterns, width).to_dfa()
        plan = plan_tile(alphabet_size=width)
        tile = DFATile(dfa, plan=plan)
        streams = streams_for_tile(96, patterns, alphabet_size=width,
                                   seed=41)
        result = tile.run_streams(streams, version=4)
        out[width] = (plan, result, tile)
    return out


def test_alphabet_report(results, report):
    rows = []
    for width, (plan, result, tile) in results.items():
        packed = tile._builder.packed_offsets
        rows.append([
            width,
            plan.stride,
            plan.max_states,
            "yes" if packed else "no",
            round(result.cycles_per_transition, 2),
            round(result.throughput_gbps(), 2),
        ])
    text = ascii_table(
        ["alphabet", "row bytes", "max states", "SIMD-shift trick",
         "cyc/tr", "Gbps"],
        rows, title="Ablation - alphabet width (paper's choice: 32)")
    report("ablation_alphabet", text)


def test_capacity_scales_inversely_with_width(results):
    states = {w: plan.max_states for w, (plan, _, _) in results.items()}
    assert states[16] > states[32] > states[64] > states[128] > states[256]
    assert states[32] / states[256] == pytest.approx(8, rel=0.05)


def test_packed_trick_available_up_to_64(results):
    for width, (_, _, tile) in results.items():
        assert tile._builder.packed_offsets == (width <= 64)


def test_wide_alphabet_kernel_slower(results):
    """The per-stream shift costs one even-pipe slot per transition."""
    narrow = results[32][1].cycles_per_transition
    wide = results[256][1].cycles_per_transition
    assert wide > narrow


def test_paper_choice_is_on_the_knee(results):
    """Width 32 keeps >= 1500 states AND the fast kernel — wider loses
    capacity, 16 loses alphabet coverage (26 letters don't fit)."""
    plan32 = results[32][0]
    assert plan32.max_states >= 1500
    assert 16 < 26 <= 32  # a 16-wide alphabet cannot hold A-Z


def test_benchmark_stt_encoding(benchmark):
    patterns = random_signatures(100, 4, 10, seed=42)
    dfa = AhoCorasick(patterns, 32).to_dfa()

    def encode():
        return STTImage.from_dfa(dfa, base=0x8800)

    img = benchmark(encode)
    assert img.num_states == dfa.num_states
