"""Synergistic Processing Element: SPU core + local store + MFC."""

from __future__ import annotations

from typing import Optional

from .local_store import LocalStore
from .memory import MainMemory
from .mfc import MFC
from .spu import SPU

__all__ = ["SPE"]


class SPE:
    """One of the Cell BE's eight synergistic processing elements.

    Bundles the three per-element resources the paper's DFA tile uses: the
    SPU (compute), the 256 KB local store (holds the STT, input buffers,
    code and stack) and the MFC (streams input blocks and STT slices in
    from main memory).
    """

    def __init__(self, index: int, memory: MainMemory,
                 num_contending: int = 8) -> None:
        if not 0 <= index < 8:
            raise ValueError("SPE index must be 0..7")
        self.index = index
        self.local_store = LocalStore()
        self.spu = SPU(self.local_store)
        self.mfc = MFC(self.local_store, memory, num_contending)
        self.memory = memory

    def __repr__(self) -> str:
        return f"SPE(index={self.index})"
