"""Synergistic Processing Unit: functional + timing simulator.

The SPU model executes :class:`~repro.cell.program.Program` instruction
streams over a 128-entry register file of 128-bit values and a local store,
and simultaneously accounts cycles with the issue rules that drive Table 1 of
the paper:

* **in-order issue** — an instruction whose source operands are still in
  flight stalls the pipeline (dependency stall);
* **dual issue** — two adjacent instructions issue in the same cycle when
  they target different pipelines (one even, one odd), the second one's
  operands are ready, and the first is not a taken branch;
* **result latency** — a register written by an instruction becomes readable
  ``latency`` cycles later (2 for simple fixed point, 4 for shifts/shuffles,
  6 for local-store loads);
* **branch penalty** — a taken branch without a branch hint flushes the
  fetch pipeline (18 cycles); correctly hinted branches are free.

The statistics the run produces — cycles per transition, CPI, dual-issue
percentage, stall percentage, register count — are exactly the columns of
Table 1.

Simplifications vs. hardware (documented deviations): no instruction-fetch
starvation modelling, no address-based issue-slot alignment (any even/odd
adjacent pair may dual-issue), and stores complete immediately (the SPU's
store queue is not a source of stalls in these kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .isa import EVEN, ODD, Instruction
from .local_store import LocalStore
from .program import Program

__all__ = ["SPU", "SPUStats", "SPUError", "CLOCK_HZ", "BRANCH_PENALTY"]

#: SPU clock frequency of the Cell BE: 3.2 GHz.
CLOCK_HZ = 3.2e9

#: Flush penalty, in cycles, for a taken branch not covered by a hint.
BRANCH_PENALTY = 18


class SPUError(Exception):
    """Raised on runaway programs or malformed execution state."""


@dataclass
class SPUStats:
    """Cycle-accounting results of one program run.

    The derived properties mirror the rows of Table 1 in the paper.
    """

    cycles: int = 0
    instructions: int = 0
    dual_issue_cycles: int = 0
    single_issue_cycles: int = 0
    stall_cycles: int = 0
    branch_penalty_cycles: int = 0
    branches_taken: int = 0
    registers_used: int = 0
    #: Per-instruction-index execution counts (only when profiling).
    execution_counts: Optional[Dict[int, int]] = None

    @property
    def cpi(self) -> float:
        """Average clock cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def dual_issue_pct(self) -> float:
        """Percentage of issue cycles that issued two instructions."""
        issue = self.dual_issue_cycles + self.single_issue_cycles
        return 100.0 * self.dual_issue_cycles / issue if issue else 0.0

    @property
    def stall_pct(self) -> float:
        """Percentage of total cycles lost to dependency stalls."""
        return 100.0 * self.stall_cycles / self.cycles if self.cycles else 0.0

    def cycles_per(self, actions: int) -> float:
        """Cycles per action (e.g. per DFA state transition)."""
        if actions <= 0:
            raise ValueError("actions must be positive")
        return self.cycles / actions

    def seconds(self, clock_hz: float = CLOCK_HZ) -> float:
        """Wall-clock duration of the run at the given clock."""
        return self.cycles / clock_hz

    def actions_per_second(self, actions: int,
                           clock_hz: float = CLOCK_HZ) -> float:
        """Actions per second (e.g. DFA transitions/s) at the given clock."""
        return actions / self.seconds(clock_hz)


class SPU:
    """One synergistic processing unit attached to a local store."""

    NUM_REGS = 128

    def __init__(self, local_store: Optional[LocalStore] = None) -> None:
        self.local_store = local_store if local_store is not None \
            else LocalStore()
        #: Raw local-store bytes; opcode handlers index this directly.
        self.ls = self.local_store.data
        self.regs: List[int] = [0] * self.NUM_REGS
        self.halted = False
        self.branch_to: Optional[int] = None

    # -- register access -------------------------------------------------------

    def set_reg(self, index: int, value: int) -> None:
        if not 0 <= index < self.NUM_REGS:
            raise SPUError(f"register r{index} out of range")
        self.regs[index] = value & ((1 << 128) - 1)

    def get_reg(self, index: int) -> int:
        if not 0 <= index < self.NUM_REGS:
            raise SPUError(f"register r{index} out of range")
        return self.regs[index]

    def reset(self) -> None:
        """Clear registers and execution flags (the local store persists)."""
        self.regs = [0] * self.NUM_REGS
        self.halted = False
        self.branch_to = None

    # -- execution ----------------------------------------------------------

    def run(self, program: Program, max_cycles: int = 500_000_000,
            max_instructions: int = 100_000_000,
            profile: bool = False) -> SPUStats:
        """Execute ``program`` until ``stop``; return timing statistics.

        With ``profile=True`` the result carries per-instruction execution
        counts (see :mod:`repro.cell.profiler` for reporting).
        """
        insts = program.instructions
        if not insts:
            raise SPUError("cannot run an empty program")

        self.halted = False
        self.branch_to = None
        regs_ready = [0] * self.NUM_REGS

        cycle = 0
        pc = 0
        n_inst = 0
        exec_counts: Optional[Dict[int, int]] = {} if profile else None
        dual = 0
        single = 0
        stall = 0
        penalty_total = 0
        branches_taken = 0
        n = len(insts)

        while not self.halted:
            if pc >= n:
                raise SPUError(f"program counter fell off the end (pc={pc})")
            if cycle > max_cycles or n_inst > max_instructions:
                raise SPUError(
                    f"runaway program: {cycle} cycles / {n_inst} "
                    f"instructions without stop")

            inst1 = insts[pc]
            spec1 = inst1.spec

            # Wait for inst1's operands.
            need = 0
            for src in inst1.sources():
                t = regs_ready[src]
                if t > need:
                    need = t
            if need > cycle:
                stall += need - cycle
                cycle = need

            # Issue inst1.
            self.branch_to = None
            spec1.execute(self, inst1)
            n_inst += 1
            if exec_counts is not None:
                exec_counts[pc] = exec_counts.get(pc, 0) + 1
            dest1 = inst1.destination()
            if dest1 is not None:
                regs_ready[dest1] = cycle + spec1.latency

            taken1 = self.branch_to is not None
            if taken1:
                branches_taken += 1
                next_pc = self.branch_to
            else:
                next_pc = pc + 1

            # Attempt dual issue of the following instruction.
            issued_two = False
            if (not taken1 and not self.halted and next_pc < n):
                inst2 = insts[next_pc]
                spec2 = inst2.spec
                if spec2.pipe != spec1.pipe:
                    ready2 = all(regs_ready[s] <= cycle
                                 for s in inst2.sources())
                    dest2 = inst2.destination()
                    waw = dest1 is not None and dest1 == dest2
                    if ready2 and not waw:
                        self.branch_to = None
                        spec2.execute(self, inst2)
                        n_inst += 1
                        if exec_counts is not None:
                            exec_counts[next_pc] = \
                                exec_counts.get(next_pc, 0) + 1
                        if dest2 is not None:
                            regs_ready[dest2] = cycle + spec2.latency
                        issued_two = True
                        taken2 = self.branch_to is not None
                        if taken2:
                            branches_taken += 1
                            next_pc = self.branch_to
                            if not inst2.hinted:
                                penalty_total += BRANCH_PENALTY
                                cycle += BRANCH_PENALTY
                        else:
                            next_pc = next_pc + 1

            if issued_two:
                dual += 1
            else:
                single += 1

            if taken1 and not inst1.hinted:
                penalty_total += BRANCH_PENALTY
                cycle += BRANCH_PENALTY

            pc = next_pc
            cycle += 1

        return SPUStats(
            cycles=cycle,
            instructions=n_inst,
            dual_issue_cycles=dual,
            single_issue_cycles=single,
            stall_cycles=stall,
            branch_penalty_cycles=penalty_total,
            branches_taken=branches_taken,
            registers_used=program.registers_used(),
            execution_counts=exec_counts,
        )
