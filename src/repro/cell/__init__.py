"""Cell Broadband Engine simulator substrate.

An instruction-level SPU model (functional 128-bit SIMD execution plus an
in-order dual-issue timing model), the 256 KB local store, the MFC DMA
engine, the EIB/main-memory bandwidth model, and the chip assembly.

This package substitutes for the paper's IBM DD3 Cell blade and the SDK 1.1
full-system simulator (see DESIGN.md §2 for the substitution argument).
"""

from .blade import BIF_BANDWIDTH, CellBlade
from .eib import EIB
from .isa import Instruction, from_words, splat_word, word
from .local_store import LS_SIZE, LocalStore, LocalStoreError, Region
from .memory import BandwidthModel, MainMemory
from .mfc import DMACommand, DMAError, MAX_DMA_SIZE, MFC
from .ppe import PPE
from .processor import NUM_SPES, CellProcessor
from .program import Asm, AssemblyError, Program
from .spe import SPE
from .spu import BRANCH_PENALTY, CLOCK_HZ, SPU, SPUError, SPUStats

__all__ = [
    "BIF_BANDWIDTH",
    "CellBlade",
    "EIB",
    "Instruction",
    "from_words",
    "splat_word",
    "word",
    "LS_SIZE",
    "LocalStore",
    "LocalStoreError",
    "Region",
    "BandwidthModel",
    "MainMemory",
    "DMACommand",
    "DMAError",
    "MAX_DMA_SIZE",
    "MFC",
    "PPE",
    "NUM_SPES",
    "CellProcessor",
    "Asm",
    "AssemblyError",
    "Program",
    "SPE",
    "BRANCH_PENALTY",
    "CLOCK_HZ",
    "SPU",
    "SPUError",
    "SPUStats",
]
