"""Memory Flow Controller: the SPE's DMA engine.

Every SPE owns an MFC that moves data between its local store and main
memory (or another SPE's local store) asynchronously, while the SPU keeps
computing.  Software issues *get* (memory → LS) and *put* (LS → memory)
commands tagged with a 5-bit tag group, then waits on tags.

This model is functionally eager (bytes are copied when the command is
issued) but temporally explicit: each command is given a start time and a
duration from the bandwidth model, so schedulers — the double-buffering and
STT-replacement engines in :mod:`repro.core.schedule` — can reason about
when a transfer *would* complete and verify overlap invariants.

Hardware limits enforced: 16-byte alignment of both addresses, sizes of at
most 16 KB per command (larger requests are expressed as DMA lists via
:meth:`MFC.get_list` / :meth:`MFC.put_list`), and a 16-entry command queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .local_store import LocalStore
from .memory import MainMemory

__all__ = ["MFC", "DMACommand", "DMAError", "MAX_DMA_SIZE", "QUEUE_DEPTH"]

#: Largest single DMA command the MFC accepts.
MAX_DMA_SIZE = 16 * 1024

#: MFC command-queue depth.
QUEUE_DEPTH = 16

#: Number of tag groups.
NUM_TAGS = 32


class DMAError(Exception):
    """Raised for malformed DMA commands (alignment, size, queue overflow)."""


@dataclass
class DMACommand:
    """One issued DMA command with its modelled timing."""

    kind: str               # "get" or "put"
    ls_addr: int
    ea: int                 # main-memory effective address
    size: int
    tag: int
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class MFC:
    """DMA engine of one SPE."""

    def __init__(self, local_store: LocalStore, memory: MainMemory,
                 num_contending: int = 8) -> None:
        self.local_store = local_store
        self.memory = memory
        #: Contention assumption used for durations (paper worst case: 8).
        self.num_contending = num_contending
        self._pending: List[DMACommand] = []
        self.history: List[DMACommand] = []
        self.bytes_transferred = 0

    # -- validation ------------------------------------------------------------

    def _check(self, ls_addr: int, ea: int, size: int, tag: int) -> None:
        if size <= 0 or size > MAX_DMA_SIZE:
            raise DMAError(
                f"DMA size {size} outside 1..{MAX_DMA_SIZE}; use a DMA list")
        if ls_addr % 16 or ea % 16:
            raise DMAError(
                f"DMA addresses must be 16-byte aligned "
                f"(ls={ls_addr:#x}, ea={ea:#x})")
        if not 0 <= tag < NUM_TAGS:
            raise DMAError(f"tag {tag} outside 0..{NUM_TAGS - 1}")
        if len(self._pending) >= QUEUE_DEPTH:
            raise DMAError("MFC command queue full (16 entries)")

    def _duration(self, size: int) -> float:
        return self.memory.bandwidth.transfer_seconds(
            size, self.num_contending, block_size=size)

    # -- single commands -------------------------------------------------------

    def get(self, ls_addr: int, ea: int, size: int, tag: int,
            start_s: float = 0.0) -> DMACommand:
        """memory → local store."""
        self._check(ls_addr, ea, size, tag)
        payload = self.memory.read(ea, size)
        self.local_store.write(ls_addr, payload)
        cmd = DMACommand("get", ls_addr, ea, size, tag, start_s,
                         self._duration(size))
        self._pending.append(cmd)
        self.history.append(cmd)
        self.bytes_transferred += size
        return cmd

    def put(self, ls_addr: int, ea: int, size: int, tag: int,
            start_s: float = 0.0) -> DMACommand:
        """local store → memory."""
        self._check(ls_addr, ea, size, tag)
        payload = self.local_store.read(ls_addr, size)
        self.memory.write(ea, payload)
        cmd = DMACommand("put", ls_addr, ea, size, tag, start_s,
                         self._duration(size))
        self._pending.append(cmd)
        self.history.append(cmd)
        self.bytes_transferred += size
        return cmd

    # -- DMA lists -------------------------------------------------------------

    def get_list(self, ls_addr: int, ea: int, size: int, tag: int,
                 start_s: float = 0.0) -> List[DMACommand]:
        """memory → LS for sizes beyond 16 KB, split into list elements.

        Elements are chained back-to-back in time, as a hardware DMA list
        would be processed.
        """
        cmds: List[DMACommand] = []
        t = start_s
        offset = 0
        while offset < size:
            chunk = min(MAX_DMA_SIZE, size - offset)
            cmd = self.get(ls_addr + offset, ea + offset, chunk, tag, t)
            cmds.append(cmd)
            t = cmd.end_s
            offset += chunk
        return cmds

    def put_list(self, ls_addr: int, ea: int, size: int, tag: int,
                 start_s: float = 0.0) -> List[DMACommand]:
        """LS → memory counterpart of :meth:`get_list`."""
        cmds: List[DMACommand] = []
        t = start_s
        offset = 0
        while offset < size:
            chunk = min(MAX_DMA_SIZE, size - offset)
            cmd = self.put(ls_addr + offset, ea + offset, chunk, tag, t)
            cmds.append(cmd)
            t = cmd.end_s
            offset += chunk
        return cmds

    # -- completion --------------------------------------------------------------

    def wait_tag(self, tag: int) -> float:
        """Drain all pending commands in ``tag``; return the latest end time."""
        done = [c for c in self._pending if c.tag == tag]
        self._pending = [c for c in self._pending if c.tag != tag]
        return max((c.end_s for c in done), default=0.0)

    def pending(self, tag: Optional[int] = None) -> List[DMACommand]:
        if tag is None:
            return list(self._pending)
        return [c for c in self._pending if c.tag == tag]
