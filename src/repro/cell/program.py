"""SPU program container and assembler.

A :class:`Program` is an ordered list of :class:`~repro.cell.isa.Instruction`
plus a label table.  The :class:`Asm` builder offers one method per opcode so
kernels read like assembly listings::

    asm = Asm()
    asm.label("loop")
    asm.lqx(10, 1, 2, comment="load input quadword")
    asm.ai(2, 2, 16)
    asm.brnz(3, "loop")
    asm.stop()
    program = asm.finish()

Branch hints (``hbr``) are attached by name: ``asm.hbr("loop")`` marks every
branch targeting ``loop`` as hinted, so the timing model charges it no flush
penalty — mirroring how the paper's hand-tuned kernels use hint-for-branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .isa import EVEN, ODD, Instruction, OPCODES

__all__ = ["Program", "Asm", "AssemblyError"]


class AssemblyError(Exception):
    """Raised for malformed programs: bad registers, unresolved labels."""


@dataclass
class Program:
    """A finalized instruction stream with resolved branch targets."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def registers_used(self) -> int:
        """Number of distinct architectural registers the program touches."""
        regs: Set[int] = set()
        for inst in self.instructions:
            for r in (inst.rt, inst.ra, inst.rb, inst.rc):
                if r is not None:
                    regs.add(r)
        return len(regs)

    def pipe_mix(self) -> Dict[str, int]:
        """Static count of instructions per pipeline."""
        mix = {EVEN: 0, ODD: 0}
        for inst in self.instructions:
            mix[inst.spec.pipe] += 1
        return mix

    def listing(self) -> str:
        """Human-readable assembly listing with labels and pipe tags."""
        by_index: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            by_index.setdefault(idx, []).append(name)
        lines = []
        for i, inst in enumerate(self.instructions):
            for name in by_index.get(i, []):
                lines.append(f"{name}:")
            tag = "e" if inst.spec.pipe == EVEN else "o"
            lines.append(f"  {i:5d} [{tag}] {inst.render()}")
        return "\n".join(lines)


class Asm:
    """Incremental assembler producing a :class:`Program`.

    Register operands are plain ints 0..127.  Every opcode in
    :data:`repro.cell.isa.OPCODES` is exposed as a method; signatures follow
    the operand order of the textual syntax (rt first).
    """

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._hints: Set[str] = set()

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def hbr(self, target: str, comment: str = "") -> None:
        """Emit a branch hint for all branches to ``target``."""
        self._hints.add(target)
        self._emit(Instruction("hbr", target=target, comment=comment))

    def raw(self, inst: Instruction) -> None:
        """Append a pre-built instruction."""
        self._emit(inst)

    def _emit(self, inst: Instruction) -> None:
        if inst.op not in OPCODES:
            raise AssemblyError(f"unknown opcode {inst.op!r}")
        for r in (inst.rt, inst.ra, inst.rb, inst.rc):
            if r is not None and not (0 <= r < 128):
                raise AssemblyError(f"register r{r} out of range in {inst.op}")
        self._instructions.append(inst)

    # -- even pipe -----------------------------------------------------------

    def il(self, rt: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("il", rt=rt, imm=imm, comment=comment))

    def ila(self, rt: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("ila", rt=rt, imm=imm, comment=comment))

    def ilhu(self, rt: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("ilhu", rt=rt, imm=imm, comment=comment))

    def iohl(self, rt: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("iohl", rt=rt, imm=imm, comment=comment))

    def a(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("a", rt=rt, ra=ra, rb=rb, comment=comment))

    def ai(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("ai", rt=rt, ra=ra, imm=imm, comment=comment))

    def sf(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("sf", rt=rt, ra=ra, rb=rb, comment=comment))

    def and_(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("and_", rt=rt, ra=ra, rb=rb, comment=comment))

    def andc(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("andc", rt=rt, ra=ra, rb=rb, comment=comment))

    def or_(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("or_", rt=rt, ra=ra, rb=rb, comment=comment))

    def xor_(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("xor_", rt=rt, ra=ra, rb=rb, comment=comment))

    def andi(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("andi", rt=rt, ra=ra, imm=imm, comment=comment))

    def ori(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("ori", rt=rt, ra=ra, imm=imm, comment=comment))

    def andbi(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("andbi", rt=rt, ra=ra, imm=imm,
                               comment=comment))

    def ceq(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("ceq", rt=rt, ra=ra, rb=rb, comment=comment))

    def ceqi(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("ceqi", rt=rt, ra=ra, imm=imm, comment=comment))

    def cgt(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("cgt", rt=rt, ra=ra, rb=rb, comment=comment))

    def cgti(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("cgti", rt=rt, ra=ra, imm=imm, comment=comment))

    def shli(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("shli", rt=rt, ra=ra, imm=imm, comment=comment))

    def rotmi(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("rotmi", rt=rt, ra=ra, imm=imm,
                               comment=comment))

    def roti(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("roti", rt=rt, ra=ra, imm=imm, comment=comment))

    def nop(self, comment: str = "") -> None:
        self._emit(Instruction("nop", comment=comment))

    def stop(self, comment: str = "") -> None:
        self._emit(Instruction("stop", comment=comment))

    # -- odd pipe ------------------------------------------------------------

    def lqd(self, rt: int, ra: int, imm: int = 0, comment: str = "") -> None:
        if imm % 16:
            raise AssemblyError("lqd displacement must be 16-byte aligned")
        self._emit(Instruction("lqd", rt=rt, ra=ra, imm=imm, comment=comment))

    def lqx(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("lqx", rt=rt, ra=ra, rb=rb, comment=comment))

    def stqd(self, rt: int, ra: int, imm: int = 0, comment: str = "") -> None:
        if imm % 16:
            raise AssemblyError("stqd displacement must be 16-byte aligned")
        self._emit(Instruction("stqd", rt=rt, ra=ra, imm=imm, comment=comment))

    def stqx(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("stqx", rt=rt, ra=ra, rb=rb, comment=comment))

    def shufb(self, rt: int, ra: int, rb: int, rc: int,
              comment: str = "") -> None:
        self._emit(Instruction("shufb", rt=rt, ra=ra, rb=rb, rc=rc,
                               comment=comment))

    def rotqby(self, rt: int, ra: int, rb: int, comment: str = "") -> None:
        self._emit(Instruction("rotqby", rt=rt, ra=ra, rb=rb, comment=comment))

    def rotqbyi(self, rt: int, ra: int, imm: int, comment: str = "") -> None:
        self._emit(Instruction("rotqbyi", rt=rt, ra=ra, imm=imm,
                               comment=comment))

    def orx(self, rt: int, ra: int, comment: str = "") -> None:
        self._emit(Instruction("orx", rt=rt, ra=ra, comment=comment))

    def lnop(self, comment: str = "") -> None:
        self._emit(Instruction("lnop", comment=comment))

    def br(self, target: str, comment: str = "") -> None:
        self._emit(Instruction("br", target=target, comment=comment))

    def brz(self, rt: int, target: str, comment: str = "") -> None:
        self._emit(Instruction("brz", rt=rt, target=target, comment=comment))

    def brnz(self, rt: int, target: str, comment: str = "") -> None:
        self._emit(Instruction("brnz", rt=rt, target=target, comment=comment))

    # -- finalization ---------------------------------------------------------

    def finish(self) -> Program:
        """Resolve labels and hints; return an executable :class:`Program`."""
        for inst in self._instructions:
            if inst.spec.is_branch:
                if inst.target not in self._labels:
                    raise AssemblyError(
                        f"unresolved branch target {inst.target!r}")
                inst.target_index = self._labels[inst.target]
                if inst.target in self._hints:
                    inst.hinted = True
        return Program(list(self._instructions), dict(self._labels))
