"""The SPE local store: a 256 KB software-managed scratchpad.

SPU loads and stores can only touch the local store; main-memory data must be
staged in and out through explicit MFC DMA commands.  This module provides the
byte store itself plus a simple region allocator used to lay out the DFA
tile's contents (state-transition table, input buffers, code and stack) the
way Figure 3 of the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["LS_SIZE", "Region", "LocalStore", "LocalStoreError"]

#: Local-store capacity of every SPE in the Cell BE: 256 KB.
LS_SIZE = 256 * 1024


class LocalStoreError(Exception):
    """Raised on out-of-bounds access or allocation failure."""


@dataclass(frozen=True)
class Region:
    """A named, aligned slice of the local store."""

    name: str
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


class LocalStore:
    """Byte-addressable 256 KB store with a bump allocator.

    The underlying ``bytearray`` is exposed as :attr:`data` so the SPU core
    and the MFC can access it directly (the simulator's hot paths slice it
    without per-access bounds checks, matching hardware semantics where LS
    addresses simply wrap).
    """

    def __init__(self, size: int = LS_SIZE) -> None:
        if size <= 0 or size % 16:
            raise LocalStoreError("local store size must be a positive "
                                  "multiple of 16")
        self.size = size
        self.data = bytearray(size)
        self._regions: Dict[str, Region] = {}
        self._next_free = 0

    # -- allocation ----------------------------------------------------------

    def alloc(self, name: str, size: int, align: int = 16) -> Region:
        """Reserve ``size`` bytes aligned to ``align``; returns the region.

        Alignment matters to the algorithm: the STT base must be aligned so
        the low bits of row pointers are zero and can carry the final-state
        flag (paper §4).
        """
        if name in self._regions:
            raise LocalStoreError(f"region {name!r} already allocated")
        if align <= 0 or (align & (align - 1)):
            raise LocalStoreError(f"alignment must be a power of two, "
                                  f"got {align}")
        start = (self._next_free + align - 1) & ~(align - 1)
        if start + size > self.size:
            raise LocalStoreError(
                f"allocating {size} bytes for {name!r} exceeds the "
                f"{self.size}-byte local store ({self.size - start} free)")
        region = Region(name, start, size)
        self._regions[name] = region
        self._next_free = start + size
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise LocalStoreError(f"no region named {name!r}") from None

    def regions(self) -> List[Region]:
        return sorted(self._regions.values(), key=lambda r: r.start)

    @property
    def bytes_free(self) -> int:
        return self.size - self._next_free

    # -- raw access ------------------------------------------------------------

    def write(self, addr: int, payload: bytes) -> None:
        if addr < 0 or addr + len(payload) > self.size:
            raise LocalStoreError(
                f"write of {len(payload)} bytes at {addr:#x} out of bounds")
        self.data[addr:addr + len(payload)] = payload

    def read(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > self.size:
            raise LocalStoreError(
                f"read of {length} bytes at {addr:#x} out of bounds")
        return bytes(self.data[addr:addr + length])

    def usage_map(self) -> str:
        """ASCII rendering of the layout, in the style of Figure 3."""
        lines = [f"local store ({self.size // 1024} KB)"]
        for region in self.regions():
            lines.append(
                f"  {region.start:#08x}..{region.end:#08x}  "
                f"{region.size / 1024:7.1f} KB  {region.name}")
        lines.append(f"  free: {self.bytes_free / 1024:.1f} KB")
        return "\n".join(lines)
