"""Instruction-set architecture subset of the Cell BE Synergistic Processing Unit.

The SPU is a RISC-style, in-order, dual-issue core with 128 registers of 128
bits each.  Instructions are statically assigned to one of two execution
pipelines:

* the **even** pipeline executes fixed-point arithmetic, logical operations,
  word shifts/rotates, compares and immediate loads;
* the **odd** pipeline executes loads/stores, quadword byte rotates, shuffles,
  and branches.

Two adjacent instructions can issue in the same cycle when they target
different pipelines and their operands are ready ("dual issue").

This module defines the subset of the SPU ISA used by the DFA-matching kernels
of Scarpazza, Villa & Petrini (IPPS 2007), together with:

* a functional semantic for each opcode, operating on 128-bit register values
  (represented as Python ints, big-endian: byte 0 is the most significant
  byte, word 0 — the *preferred slot* — occupies bits 96..127);
* timing metadata (pipeline assignment and result latency) taken from the
  *Cell Broadband Engine Programming Handbook*.

Deviations from the hardware ISA (documented per-opcode below) are limited to
assembler conveniences: immediates are not range-encoded, and ``lqd``/``stqd``
displacements are given in bytes rather than quadwords.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "EVEN",
    "ODD",
    "OpSpec",
    "OPCODES",
    "Instruction",
    "MASK128",
    "word",
    "from_words",
    "splat_word",
    "to_bytes16",
    "from_bytes16",
]

EVEN = "even"
ODD = "odd"

MASK128 = (1 << 128) - 1
_MASK32 = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# 128-bit register value helpers
# ---------------------------------------------------------------------------

def word(value: int, slot: int) -> int:
    """Extract 32-bit word ``slot`` (0..3) from a 128-bit register value.

    Word 0 is the SPU *preferred slot*: scalar operands (addresses, branch
    conditions, rotate counts) are taken from it.
    """
    return (value >> (96 - 32 * slot)) & _MASK32


def from_words(w0: int, w1: int = 0, w2: int = 0, w3: int = 0) -> int:
    """Build a 128-bit register value from four 32-bit words."""
    return (
        ((w0 & _MASK32) << 96)
        | ((w1 & _MASK32) << 64)
        | ((w2 & _MASK32) << 32)
        | (w3 & _MASK32)
    )


def splat_word(w: int) -> int:
    """Replicate a 32-bit word into all four word slots."""
    w &= _MASK32
    return from_words(w, w, w, w)


def to_bytes16(value: int) -> bytes:
    """Render a 128-bit register value as its 16 bytes (byte 0 first)."""
    return value.to_bytes(16, "big")


def from_bytes16(data: bytes) -> int:
    """Build a 128-bit register value from 16 bytes (byte 0 first)."""
    if len(data) != 16:
        raise ValueError(f"register image must be 16 bytes, got {len(data)}")
    return int.from_bytes(data, "big")


def _per_word(value: int, fn: Callable[[int], int]) -> int:
    return from_words(*(fn(word(value, i)) for i in range(4)))


def _per_word2(a: int, b: int, fn: Callable[[int, int], int]) -> int:
    return from_words(*(fn(word(a, i), word(b, i)) for i in range(4)))


def _sext10(imm: int) -> int:
    """Sign-extend a 10-bit immediate to 32 bits (assembler accepts wider)."""
    imm &= 0x3FF
    if imm & 0x200:
        imm -= 0x400
    return imm & _MASK32


# ---------------------------------------------------------------------------
# Instruction container
# ---------------------------------------------------------------------------

@dataclass
class Instruction:
    """One assembled SPU instruction.

    ``rt`` is the target register, ``ra``/``rb``/``rc`` the sources, ``imm``
    an immediate operand and ``target`` a label name for branches.  ``hinted``
    marks a branch covered by a branch hint (``hbr``): a correctly hinted
    taken branch pays no flush penalty.
    """

    op: str
    rt: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    rc: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[str] = None
    hinted: bool = False
    comment: str = ""
    # Resolved by Program.finalize(): instruction index of the branch target.
    target_index: Optional[int] = None

    @property
    def spec(self) -> "OpSpec":
        return OPCODES[self.op]

    def sources(self) -> Tuple[int, ...]:
        """Registers read by this instruction (for hazard tracking)."""
        regs = [r for r in (self.ra, self.rb, self.rc) if r is not None]
        # Stores read their "target" register as data.
        if self.op in ("stqd", "stqx") and self.rt is not None:
            regs.append(self.rt)
        # Conditional branches read the condition register.
        if self.op in ("brz", "brnz") and self.rt is not None:
            regs.append(self.rt)
        return tuple(regs)

    def destination(self) -> Optional[int]:
        """Register written by this instruction, or ``None``."""
        if self.op in ("stqd", "stqx", "br", "brz", "brnz", "nop", "lnop",
                       "stop", "hbr"):
            return None
        return self.rt

    def render(self) -> str:
        """Textual assembly rendering (for disassembly/debugging)."""
        parts = []
        for r, pre in ((self.rt, "r"), (self.ra, "r"), (self.rb, "r"),
                       (self.rc, "r")):
            if r is not None:
                parts.append(f"{pre}{r}")
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(self.target)
        text = f"{self.op:<8s} {', '.join(parts)}"
        if self.comment:
            text = f"{text:<40s} ; {self.comment}"
        return text


# ---------------------------------------------------------------------------
# Opcode table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OpSpec:
    """Static properties of an opcode: pipeline, latency and semantics.

    ``latency`` is the number of cycles before the result becomes available
    to a dependent instruction.  ``execute`` performs the functional update;
    it receives the executing core (anything exposing ``regs`` — a list of
    128 ints — and ``ls`` — a bytearray local store) and the instruction.
    """

    name: str
    pipe: str
    latency: int
    execute: Callable[["object", Instruction], None]
    is_branch: bool = False


OPCODES: Dict[str, OpSpec] = {}


def _op(name: str, pipe: str, latency: int, is_branch: bool = False):
    def wrap(fn: Callable[["object", Instruction], None]) -> None:
        OPCODES[name] = OpSpec(name, pipe, latency, fn, is_branch)
    return wrap


# -- even pipeline: immediate loads ----------------------------------------

@_op("il", EVEN, 2)
def _exec_il(core, inst: Instruction) -> None:
    """Immediate load word: sign-extended 16-bit immediate in each word."""
    imm = inst.imm & 0xFFFF
    if imm & 0x8000:
        imm -= 0x10000
    core.regs[inst.rt] = splat_word(imm & _MASK32)


@_op("ila", EVEN, 2)
def _exec_ila(core, inst: Instruction) -> None:
    """Immediate load address: 18-bit unsigned immediate in each word."""
    core.regs[inst.rt] = splat_word(inst.imm & 0x3FFFF)


@_op("ilhu", EVEN, 2)
def _exec_ilhu(core, inst: Instruction) -> None:
    """Immediate load halfword upper."""
    core.regs[inst.rt] = splat_word((inst.imm & 0xFFFF) << 16)


@_op("iohl", EVEN, 2)
def _exec_iohl(core, inst: Instruction) -> None:
    """Immediate OR halfword lower (pairs with ``ilhu`` for 32-bit consts)."""
    core.regs[inst.rt] = _per_word(core.regs[inst.rt],
                                   lambda w: w | (inst.imm & 0xFFFF))


# -- even pipeline: word arithmetic -----------------------------------------

@_op("a", EVEN, 2)
def _exec_a(core, inst: Instruction) -> None:
    """Add word: rt = ra + rb, per 32-bit slot."""
    core.regs[inst.rt] = _per_word2(core.regs[inst.ra], core.regs[inst.rb],
                                    lambda x, y: (x + y) & _MASK32)


@_op("ai", EVEN, 2)
def _exec_ai(core, inst: Instruction) -> None:
    """Add word immediate (10-bit sign-extended)."""
    imm = _sext10(inst.imm)
    core.regs[inst.rt] = _per_word(core.regs[inst.ra],
                                   lambda w: (w + imm) & _MASK32)


@_op("sf", EVEN, 2)
def _exec_sf(core, inst: Instruction) -> None:
    """Subtract from: rt = rb - ra (note the operand order)."""
    core.regs[inst.rt] = _per_word2(core.regs[inst.ra], core.regs[inst.rb],
                                    lambda x, y: (y - x) & _MASK32)


# -- even pipeline: logicals -------------------------------------------------

@_op("and_", EVEN, 2)
def _exec_and(core, inst: Instruction) -> None:
    core.regs[inst.rt] = core.regs[inst.ra] & core.regs[inst.rb]


@_op("andc", EVEN, 2)
def _exec_andc(core, inst: Instruction) -> None:
    """AND with complement: rt = ra & ~rb."""
    core.regs[inst.rt] = core.regs[inst.ra] & (~core.regs[inst.rb] & MASK128)


@_op("or_", EVEN, 2)
def _exec_or(core, inst: Instruction) -> None:
    core.regs[inst.rt] = core.regs[inst.ra] | core.regs[inst.rb]


@_op("xor_", EVEN, 2)
def _exec_xor(core, inst: Instruction) -> None:
    core.regs[inst.rt] = core.regs[inst.ra] ^ core.regs[inst.rb]


@_op("andi", EVEN, 2)
def _exec_andi(core, inst: Instruction) -> None:
    imm = _sext10(inst.imm)
    core.regs[inst.rt] = _per_word(core.regs[inst.ra], lambda w: w & imm)


@_op("ori", EVEN, 2)
def _exec_ori(core, inst: Instruction) -> None:
    imm = _sext10(inst.imm)
    core.regs[inst.rt] = _per_word(core.regs[inst.ra], lambda w: w | imm)


@_op("andbi", EVEN, 2)
def _exec_andbi(core, inst: Instruction) -> None:
    """AND byte immediate: each of the 16 bytes ANDed with an 8-bit imm."""
    imm = inst.imm & 0xFF
    mask = int.from_bytes(bytes([imm] * 16), "big")
    core.regs[inst.rt] = core.regs[inst.ra] & mask


# -- even pipeline: compares -------------------------------------------------

@_op("ceq", EVEN, 2)
def _exec_ceq(core, inst: Instruction) -> None:
    core.regs[inst.rt] = _per_word2(
        core.regs[inst.ra], core.regs[inst.rb],
        lambda x, y: _MASK32 if x == y else 0)


@_op("ceqi", EVEN, 2)
def _exec_ceqi(core, inst: Instruction) -> None:
    imm = _sext10(inst.imm)
    core.regs[inst.rt] = _per_word(
        core.regs[inst.ra], lambda w: _MASK32 if w == imm else 0)


@_op("cgt", EVEN, 2)
def _exec_cgt(core, inst: Instruction) -> None:
    def signed(w: int) -> int:
        return w - 0x100000000 if w & 0x80000000 else w
    core.regs[inst.rt] = _per_word2(
        core.regs[inst.ra], core.regs[inst.rb],
        lambda x, y: _MASK32 if signed(x) > signed(y) else 0)


@_op("cgti", EVEN, 2)
def _exec_cgti(core, inst: Instruction) -> None:
    imm = _sext10(inst.imm)
    simm = imm - 0x100000000 if imm & 0x80000000 else imm

    def signed(w: int) -> int:
        return w - 0x100000000 if w & 0x80000000 else w

    core.regs[inst.rt] = _per_word(
        core.regs[inst.ra], lambda w: _MASK32 if signed(w) > simm else 0)


# -- even pipeline: word shifts/rotates (4-cycle class) ----------------------

@_op("shli", EVEN, 4)
def _exec_shli(core, inst: Instruction) -> None:
    """Shift left word immediate (amount 0..63; >=32 yields zero)."""
    amt = inst.imm & 0x3F
    if amt >= 32:
        core.regs[inst.rt] = 0
    else:
        core.regs[inst.rt] = _per_word(core.regs[inst.ra],
                                       lambda w: (w << amt) & _MASK32)


@_op("rotmi", EVEN, 4)
def _exec_rotmi(core, inst: Instruction) -> None:
    """Rotate-and-mask (logical shift right) word immediate.

    Hardware encodes the shift count as a negative immediate; this assembler
    accepts a *positive* right-shift amount for readability.
    """
    amt = inst.imm & 0x3F
    if amt >= 32:
        core.regs[inst.rt] = 0
    else:
        core.regs[inst.rt] = _per_word(core.regs[inst.ra], lambda w: w >> amt)


@_op("roti", EVEN, 4)
def _exec_roti(core, inst: Instruction) -> None:
    """Rotate word left immediate."""
    amt = inst.imm & 0x1F
    core.regs[inst.rt] = _per_word(
        core.regs[inst.ra],
        lambda w: ((w << amt) | (w >> (32 - amt))) & _MASK32 if amt else w)


@_op("nop", EVEN, 1)
def _exec_nop(core, inst: Instruction) -> None:
    pass


@_op("stop", EVEN, 1)
def _exec_stop(core, inst: Instruction) -> None:
    core.halted = True


# -- odd pipeline: loads and stores ------------------------------------------

def _ls_addr(core, base: int, offset: int) -> int:
    addr = (base + offset) & 0x3FFFF
    return addr & ~0xF  # quadword accesses are force-aligned


@_op("lqd", ODD, 6)
def _exec_lqd(core, inst: Instruction) -> None:
    """Load quadword (d-form).  ``imm`` is a byte displacement here
    (hardware encodes quadword units); it must be 16-byte aligned."""
    addr = _ls_addr(core, word(core.regs[inst.ra], 0), inst.imm or 0)
    core.regs[inst.rt] = from_bytes16(bytes(core.ls[addr:addr + 16]))


@_op("lqx", ODD, 6)
def _exec_lqx(core, inst: Instruction) -> None:
    """Load quadword (x-form): address = preferred slots of ra + rb."""
    addr = _ls_addr(core, word(core.regs[inst.ra], 0),
                    word(core.regs[inst.rb], 0))
    core.regs[inst.rt] = from_bytes16(bytes(core.ls[addr:addr + 16]))


@_op("stqd", ODD, 6)
def _exec_stqd(core, inst: Instruction) -> None:
    addr = _ls_addr(core, word(core.regs[inst.ra], 0), inst.imm or 0)
    core.ls[addr:addr + 16] = to_bytes16(core.regs[inst.rt])


@_op("stqx", ODD, 6)
def _exec_stqx(core, inst: Instruction) -> None:
    addr = _ls_addr(core, word(core.regs[inst.ra], 0),
                    word(core.regs[inst.rb], 0))
    core.ls[addr:addr + 16] = to_bytes16(core.regs[inst.rt])


# -- odd pipeline: quadword byte manipulation ---------------------------------

@_op("shufb", ODD, 4)
def _exec_shufb(core, inst: Instruction) -> None:
    """Shuffle bytes: rt[i] selected by pattern byte rc[i].

    Pattern semantics follow the hardware: 0x00..0x0F select bytes of ra,
    0x10..0x1F bytes of rb; 0x80.. patterns produce the special constants
    0x00, 0xFF, 0x80 for the (10xxxxxx, 110xxxxx, 111xxxxx) classes.
    """
    src = to_bytes16(core.regs[inst.ra]) + to_bytes16(core.regs[inst.rb])
    pat = to_bytes16(core.regs[inst.rc])
    out = bytearray(16)
    for i, p in enumerate(pat):
        if p & 0x80:
            if (p & 0xC0) == 0x80:
                out[i] = 0x00
            elif (p & 0xE0) == 0xC0:
                out[i] = 0xFF
            else:
                out[i] = 0x80
        else:
            out[i] = src[p & 0x1F]
    core.regs[inst.rt] = from_bytes16(bytes(out))


@_op("rotqby", ODD, 4)
def _exec_rotqby(core, inst: Instruction) -> None:
    """Rotate quadword left by (rb preferred slot mod 16) bytes."""
    amt = (word(core.regs[inst.rb], 0) % 16) * 8
    v = core.regs[inst.ra]
    core.regs[inst.rt] = ((v << amt) | (v >> (128 - amt))) & MASK128 \
        if amt else v


@_op("rotqbyi", ODD, 4)
def _exec_rotqbyi(core, inst: Instruction) -> None:
    """Rotate quadword left by an immediate byte count."""
    amt = (inst.imm % 16) * 8
    v = core.regs[inst.ra]
    core.regs[inst.rt] = ((v << amt) | (v >> (128 - amt))) & MASK128 \
        if amt else v


@_op("orx", ODD, 4)
def _exec_orx(core, inst: Instruction) -> None:
    """OR words across: preferred slot receives OR of ra's 4 words."""
    w0 = word(core.regs[inst.ra], 0) | word(core.regs[inst.ra], 1) \
        | word(core.regs[inst.ra], 2) | word(core.regs[inst.ra], 3)
    core.regs[inst.rt] = from_words(w0, 0, 0, 0)


@_op("lnop", ODD, 1)
def _exec_lnop(core, inst: Instruction) -> None:
    pass


# -- odd pipeline: control flow -----------------------------------------------

@_op("br", ODD, 1, is_branch=True)
def _exec_br(core, inst: Instruction) -> None:
    core.branch_to = inst.target_index


@_op("brz", ODD, 1, is_branch=True)
def _exec_brz(core, inst: Instruction) -> None:
    """Branch if the preferred-slot word of rt is zero."""
    if word(core.regs[inst.rt], 0) == 0:
        core.branch_to = inst.target_index


@_op("brnz", ODD, 1, is_branch=True)
def _exec_brnz(core, inst: Instruction) -> None:
    """Branch if the preferred-slot word of rt is non-zero."""
    if word(core.regs[inst.rt], 0) != 0:
        core.branch_to = inst.target_index


@_op("hbr", ODD, 1)
def _exec_hbr(core, inst: Instruction) -> None:
    """Branch hint: free the named branch from its misprediction penalty.

    Modelled as a marker; the assembler sets ``hinted`` on the target branch.
    Occupies an odd-pipe issue slot like the hardware instruction.
    """
    pass
