"""Element Interconnect Bus model.

The EIB is the Cell's on-chip interconnect: four 16-byte data rings (two per
direction) running at half the 3.2 GHz core clock, for a peak of
204.8 GB/s.  Intra-chip (LS-to-LS) transfers can approach that peak;
transfers touching main memory are bounded by the 25.6 GB/s MIC and, under
contention, by the data arbiter (see :mod:`repro.cell.memory`).

The model here answers the two questions the paper's schedules need:

* how long does an LS↔LS transfer take (ring bandwidth, hop-free model);
* how is main-memory bandwidth shared among concurrent DMA streams
  (fair-share split of the arbiter's aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .memory import BandwidthModel

__all__ = ["EIB", "RING_COUNT", "EIB_PEAK"]

#: Number of 16-byte data rings.
RING_COUNT = 4

#: Peak aggregate EIB bandwidth: 204.8 GB/s (Kistler, Perrone & Petrini).
EIB_PEAK = 204.8e9

#: Bus clock: half the 3.2 GHz core clock.
BUS_CLOCK_HZ = 1.6e9

#: Each ring moves 16 bytes per bus cycle.
RING_BYTES_PER_CYCLE = 16

#: Each ring sustains up to two non-overlapping transfers concurrently,
#: which is how 4 rings reach the documented 204.8 GB/s aggregate.
CONCURRENT_PER_RING = 2


@dataclass
class EIB:
    """Bandwidth-level model of the element interconnect bus."""

    bandwidth: BandwidthModel = field(default_factory=BandwidthModel)

    @property
    def peak(self) -> float:
        """Aggregate peak: rings × 2 transfers × 16 B × 1.6 GHz = 204.8
        GB/s (Kistler, Perrone & Petrini)."""
        return (RING_COUNT * CONCURRENT_PER_RING * RING_BYTES_PER_CYCLE
                * BUS_CLOCK_HZ)

    def ls_to_ls_seconds(self, size: int, concurrent: int = 1) -> float:
        """Duration of an intra-chip LS-to-LS transfer.

        Each transfer rides one ring slot at 16 B × 1.6 GHz = 25.6 GB/s;
        up to eight (4 rings × 2 slots) proceed at full speed, beyond that
        they share slots fairly.
        """
        if size <= 0:
            raise ValueError("transfer size must be positive")
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        ring_rate = RING_BYTES_PER_CYCLE * BUS_CLOCK_HZ
        slots = RING_COUNT * CONCURRENT_PER_RING
        share = min(1.0, slots / concurrent)
        return size / (ring_rate * share)

    def memory_seconds(self, size: int, num_contending: int = 8,
                       block_size: int = 16 * 1024) -> float:
        """Duration of a main-memory transfer under contention (Fig. 2)."""
        return self.bandwidth.transfer_seconds(size, num_contending,
                                               block_size)
