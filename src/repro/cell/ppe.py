"""Power Processor Element model.

The PPE is the Cell's conventional PowerPC core.  In the paper's design it
runs the OS, coordinates the SPEs, and — crucially for the DFA tiles — does
the *accessory* work that keeps all 8 SPEs free for matching:

* folding raw input bytes into the reduced 32-symbol alphabet (§4's
  data-reduction, "trivially implemented in an inexpensive way");
* interleaving 16 input streams byte-wise so each 128-bit quadword carries
  one byte per stream (§4);
* slicing the input for parallel tile groups, with overlap regions.

The model exposes that work functionally and estimates its cost with a
simple bytes-per-cycle throughput so configurations can check the paper's
assumption that "the remaining computational power of the PPE is sufficient
to carry out the accessory tasks".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["PPE"]

#: PPE clock, shared with the SPEs.
PPE_CLOCK_HZ = 3.2e9

#: Modelled PPE throughput for byte-shuffling work (fold + interleave).
#: The VMX unit moves 16 bytes/cycle; table-lookup folding plus interleave
#: costs a handful of operations per 16-byte vector, so we charge 4 bytes
#: per cycle, a deliberately conservative figure.
PPE_BYTES_PER_CYCLE = 4.0


class PPE:
    """Coordinator core: stream folding, interleaving, input slicing."""

    def __init__(self) -> None:
        self.bytes_processed = 0

    # -- accessory work ---------------------------------------------------------

    def fold(self, data: bytes, fold_table: Sequence[int]) -> bytes:
        """Apply a 256-entry byte→symbol reduction table to ``data``."""
        if len(fold_table) != 256:
            raise ValueError("fold table must have 256 entries")
        table = np.asarray(fold_table, dtype=np.uint8)
        raw = np.frombuffer(data, dtype=np.uint8)
        self.bytes_processed += len(data)
        return table[raw].tobytes()

    def interleave(self, streams: Sequence[bytes]) -> bytes:
        """Byte-interleave equal-length streams (quadword = 1 B/stream).

        Thin wrapper over :func:`repro.core.interleave.interleave_streams`
        with PPE cost accounting.
        """
        from ..core.interleave import interleave_streams
        out = interleave_streams(streams)
        self.bytes_processed += len(out)
        return out

    def slice_input(self, data: bytes, parts: int, overlap: int) -> List[bytes]:
        """Split input for "parallel" tile groups with boundary overlap.

        Each slice after the first starts ``overlap`` bytes early so that
        matches crossing a boundary are still seen by exactly one tile
        group (paper §5: "a small overlapping region, to allow matching of
        strings which cross the boundary").
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        if overlap < 0:
            raise ValueError("overlap must be non-negative")
        n = len(data)
        base = (n + parts - 1) // parts
        slices: List[bytes] = []
        for i in range(parts):
            lo = i * base
            hi = min(n, lo + base)
            if lo >= n:
                slices.append(b"")
                continue
            lo_ov = max(0, lo - overlap) if i > 0 else lo
            slices.append(data[lo_ov:hi])
        self.bytes_processed += n
        return slices

    # -- cost model -------------------------------------------------------------

    def seconds_for(self, num_bytes: int) -> float:
        """Modelled time for the PPE to fold+interleave ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / (PPE_BYTES_PER_CYCLE * PPE_CLOCK_HZ)

    def can_feed(self, aggregate_gbps: float) -> bool:
        """Check the paper's §5 assumption: can one PPE keep up with the
        aggregate filtering rate of the SPEs (given in Gbps)?"""
        ppe_gbps = PPE_BYTES_PER_CYCLE * PPE_CLOCK_HZ * 8 / 1e9
        return ppe_gbps >= aggregate_gbps
