"""Main memory (XDR) and the memory-interface bandwidth model.

The Cell's memory interface controller (MIC) has a 25.6 GB/s peak.  What a
set of SPEs actually achieves depends, above all, on the transferred block
size (bus-negotiation overhead is amortized over the block) and on contention
(the data arbiter sustains about 22.05 GB/s aggregate under heavy traffic —
the figure the paper uses for its worst-case schedule in Figure 5).

The model here reproduces the shape of the paper's Figure 2:

* per-SPE effective rate ``bs / (setup + bs / link)`` — small blocks pay the
  fixed negotiation overhead, large blocks approach the 7 GB/s per-SPE link;
* aggregate capped by the arbiter's heavy-traffic throughput, 22.05 GB/s;
* blocks of 256 bytes and larger get close to the cap with 8 SPEs, in
  agreement with the paper's guidance to transfer at medium-large
  granularity only.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MainMemory", "BandwidthModel", "MemoryError_"]

#: Peak bandwidth of the memory interface controller (bytes/second).
MIC_PEAK = 25.6e9

#: Aggregate bandwidth sustained by the data arbiter under heavy traffic
#: (all SPEs transferring at once) — the paper's measured 22.05 GB/s.
HEAVY_TRAFFIC_AGGREGATE = 22.05e9

#: Peak per-SPE link rate for main-memory transfers.
SPE_LINK = 7.0e9

#: Fixed per-transfer bus-negotiation overhead.
TRANSFER_SETUP_S = 50e-9


class MemoryError_(Exception):
    """Raised on out-of-bounds main-memory access."""


@dataclass(frozen=True)
class BandwidthModel:
    """Block-size- and contention-aware effective-bandwidth calculator."""

    mic_peak: float = MIC_PEAK
    heavy_traffic_aggregate: float = HEAVY_TRAFFIC_AGGREGATE
    spe_link: float = SPE_LINK
    setup_s: float = TRANSFER_SETUP_S

    def per_spe_uncontended(self, block_size: int) -> float:
        """Effective rate of one SPE streaming blocks of ``block_size``."""
        if block_size <= 0:
            raise ValueError("block size must be positive")
        return block_size / (self.setup_s + block_size / self.spe_link)

    def aggregate(self, num_spes: int, block_size: int) -> float:
        """Aggregate bandwidth of ``num_spes`` concurrent streams (Fig. 2)."""
        if not 1 <= num_spes <= 8:
            raise ValueError("the Cell BE has 1..8 SPEs")
        demand = num_spes * self.per_spe_uncontended(block_size)
        return min(demand, self.heavy_traffic_aggregate, self.mic_peak)

    def per_spe(self, num_spes: int, block_size: int) -> float:
        """Fair-share per-SPE bandwidth under ``num_spes``-way contention.

        With all 8 SPEs moving large blocks this is 22.05/8 = 2.76 GB/s —
        the worst-case figure the paper's double-buffering schedule assumes.
        """
        return self.aggregate(num_spes, block_size) / num_spes

    def transfer_seconds(self, size: int, num_contending: int = 8,
                         block_size: int = 16 * 1024) -> float:
        """Worst-case time to move ``size`` bytes from/to main memory.

        ``num_contending`` is the number of SPEs assumed to be hammering the
        bus at the same time; the paper's schedules use the most pessimistic
        value, 8.
        """
        if size <= 0:
            raise ValueError("transfer size must be positive")
        return size / self.per_spe(num_contending, min(block_size, size))


class MainMemory:
    """Flat main-memory image reachable only through MFC DMA."""

    def __init__(self, size: int = 64 * 1024 * 1024,
                 bandwidth: BandwidthModel = BandwidthModel()) -> None:
        if size <= 0:
            raise MemoryError_("memory size must be positive")
        self.size = size
        self.data = bytearray(size)
        self.bandwidth = bandwidth

    def write(self, addr: int, payload: bytes) -> None:
        if addr < 0 or addr + len(payload) > self.size:
            raise MemoryError_(
                f"write of {len(payload)} bytes at {addr:#x} out of bounds")
        self.data[addr:addr + len(payload)] = payload

    def read(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > self.size:
            raise MemoryError_(
                f"read of {length} bytes at {addr:#x} out of bounds")
        return bytes(self.data[addr:addr + length])
