"""The Cell Broadband Engine chip: 1 PPE + 8 SPEs + EIB + main memory."""

from __future__ import annotations

from typing import List

from .eib import EIB
from .memory import BandwidthModel, MainMemory
from .ppe import PPE
from .spe import SPE

__all__ = ["CellProcessor", "NUM_SPES"]

#: SPEs per Cell BE chip.
NUM_SPES = 8


class CellProcessor:
    """A whole Cell BE.

    ``num_contending`` sets the bus-contention assumption baked into every
    SPE's MFC timing (the paper's schedules assume the worst case, all 8
    SPEs transferring at once).
    """

    def __init__(self, memory_size: int = 64 * 1024 * 1024,
                 num_contending: int = NUM_SPES,
                 bandwidth: BandwidthModel = BandwidthModel()) -> None:
        self.memory = MainMemory(memory_size, bandwidth)
        self.eib = EIB(bandwidth)
        self.ppe = PPE()
        self.spes: List[SPE] = [
            SPE(i, self.memory, num_contending) for i in range(NUM_SPES)
        ]

    def spe(self, index: int) -> SPE:
        if not 0 <= index < NUM_SPES:
            raise ValueError(f"SPE index {index} outside 0..{NUM_SPES - 1}")
        return self.spes[index]

    def __repr__(self) -> str:
        return f"CellProcessor(spes={NUM_SPES})"
