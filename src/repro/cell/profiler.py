"""Kernel profiling: instruction mix, pipe balance, hot spots.

The paper's Table 1 analysis rests on exactly these quantities — how many
instructions go to each pipeline, where the issue slots are spent, which
instructions dominate.  :func:`profile` runs a program with per-instruction
execution counting and distills:

* dynamic opcode histogram and even/odd pipe balance;
* the hottest instructions (with their source comments), i.e. the loop
  body vs. prologue/epilogue split;
* the theoretical issue bound implied by the pipe balance, next to the
  measured cycles — the gap is stalls + fill/drain, the quantity the
  paper's unrolling attacks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .isa import EVEN, ODD
from .program import Program
from .spu import SPU, SPUStats

__all__ = ["KernelProfile", "profile"]


@dataclass
class KernelProfile:
    """Digest of one profiled run."""

    stats: SPUStats
    opcode_counts: Dict[str, int]
    pipe_counts: Dict[str, int]
    hot: List[Tuple[int, int, str]]   # (index, count, rendering)

    @property
    def dynamic_instructions(self) -> int:
        return sum(self.opcode_counts.values())

    @property
    def even_fraction(self) -> float:
        total = self.pipe_counts[EVEN] + self.pipe_counts[ODD]
        return self.pipe_counts[EVEN] / total if total else 0.0

    @property
    def issue_bound_cycles(self) -> int:
        """Lower bound on cycles from pipe balance alone: the busier
        pipeline must issue every one of its instructions."""
        return max(self.pipe_counts[EVEN], self.pipe_counts[ODD])

    @property
    def schedule_efficiency(self) -> float:
        """issue bound / measured cycles — 1.0 means the kernel is purely
        issue-bound (no stalls, perfect pairing on the critical pipe)."""
        if self.stats.cycles == 0:
            return 0.0
        return self.issue_bound_cycles / self.stats.cycles

    def render(self, top: int = 8) -> str:
        lines = [
            f"dynamic instructions : {self.dynamic_instructions}",
            f"cycles               : {self.stats.cycles} "
            f"(issue bound {self.issue_bound_cycles}, efficiency "
            f"{self.schedule_efficiency:.2f})",
            f"pipe balance         : even {self.pipe_counts[EVEN]} / "
            f"odd {self.pipe_counts[ODD]} "
            f"({self.even_fraction * 100:.0f}% even)",
            "opcode mix:",
        ]
        total = self.dynamic_instructions or 1
        for op, count in sorted(self.opcode_counts.items(),
                                key=lambda kv: -kv[1]):
            lines.append(f"  {op:<10s} {count:>10d}  "
                         f"{100 * count / total:5.1f}%")
        lines.append(f"hottest {min(top, len(self.hot))} instructions:")
        for index, count, text in self.hot[:top]:
            lines.append(f"  #{index:<5d} x{count:<8d} {text}")
        return "\n".join(lines)


def profile(spu: SPU, program: Program, **run_kwargs) -> KernelProfile:
    """Execute ``program`` with profiling and digest the counts."""
    stats = spu.run(program, profile=True, **run_kwargs)
    counts = stats.execution_counts or {}
    opcode_counts: Counter = Counter()
    pipe_counts = {EVEN: 0, ODD: 0}
    hot: List[Tuple[int, int, str]] = []
    for index, count in counts.items():
        inst = program.instructions[index]
        opcode_counts[inst.op] += count
        pipe_counts[inst.spec.pipe] += count
        hot.append((index, count, inst.render()))
    hot.sort(key=lambda item: -item[1])
    return KernelProfile(stats=stats, opcode_counts=dict(opcode_counts),
                         pipe_counts=pipe_counts, hot=hot)
