"""The dual-Cell blade (paper §5: "a Cell Blade hosting two processors
can reach 81.76 Gbps").

Two Cell BE chips share a coherent memory space over the BIF (broadband
interface); each contributes 8 SPEs.  For the matching workload the blade
is simply a larger parallel budget — string matching needs no inter-chip
communication — but cross-chip traffic rides the BIF, whose bandwidth is
lower than on-chip EIB transfers, so the model accounts for which side of
the boundary a transfer crosses.
"""

from __future__ import annotations

from typing import List, Tuple

from .memory import BandwidthModel, MainMemory
from .processor import CellProcessor, NUM_SPES

__all__ = ["CellBlade", "BIF_BANDWIDTH"]

#: Sustained BIF (inter-chip) bandwidth, bytes/second.  The coherent BIF
#: link runs at 20 GB/s in the QS20-era blades.
BIF_BANDWIDTH = 20e9


class CellBlade:
    """Two Cell BE processors with shared main memory."""

    def __init__(self, memory_size: int = 64 * 1024 * 1024,
                 bandwidth: BandwidthModel = BandwidthModel()) -> None:
        self.memory = MainMemory(memory_size, bandwidth)
        self.chips: List[CellProcessor] = []
        for _ in range(2):
            chip = CellProcessor(bandwidth=bandwidth)
            # Both chips address the same coherent memory image.
            chip.memory = self.memory
            for spe in chip.spes:
                spe.memory = self.memory
                spe.mfc.memory = self.memory
            self.chips.append(chip)

    @property
    def num_spes(self) -> int:
        return 2 * NUM_SPES

    def spe(self, index: int):
        """Blade-global SPE index 0..15."""
        if not 0 <= index < self.num_spes:
            raise ValueError(f"SPE index {index} outside 0..15")
        return self.chips[index // NUM_SPES].spe(index % NUM_SPES)

    def chip_of(self, spe_index: int) -> int:
        if not 0 <= spe_index < self.num_spes:
            raise ValueError(f"SPE index {spe_index} outside 0..15")
        return spe_index // NUM_SPES

    def ls_transfer_seconds(self, src_spe: int, dst_spe: int,
                            size: int) -> float:
        """LS-to-LS transfer time; crossing chips pays the BIF rate."""
        if size <= 0:
            raise ValueError("transfer size must be positive")
        same_chip = self.chip_of(src_spe) == self.chip_of(dst_spe)
        if same_chip:
            return self.chips[0].eib.ls_to_ls_seconds(size)
        return size / BIF_BANDWIDTH

    def aggregate_gbps(self, per_tile_gbps: float = 5.11,
                       tiles: int = 16) -> float:
        """Parallel-matching throughput of ``tiles`` blade SPEs."""
        if not 1 <= tiles <= self.num_spes:
            raise ValueError(f"tiles must be 1..{self.num_spes}")
        return tiles * per_tile_gbps
