"""Commentz–Walter multi-pattern search (paper ref [6]).

The historical marriage of Aho–Corasick and Boyer–Moore: a trie of the
*reversed* patterns is walked backwards from the window end; on a mismatch
the window shifts by an amount derived from character-occurrence distances.
Average-case sublinear, worst-case input-dependent — the same overload-
attack exposure as the other heuristic skippers the paper dismisses.

This implementation uses the standard char/depth shift function (the
``min(char_shift, depth-based shift)`` form); it favours clarity and
correctness over constant-factor tuning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dfa.automaton import MatchEvent

__all__ = ["CommentzWalterMatcher"]


class _Node:
    __slots__ = ("children", "depth", "outputs")

    def __init__(self, depth: int) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.depth = depth
        self.outputs: List[int] = []


class CommentzWalterMatcher:
    """Commentz–Walter over a reversed-pattern trie."""

    def __init__(self, patterns: Sequence[bytes]) -> None:
        if not patterns:
            raise ValueError("at least one pattern required")
        self.patterns = [bytes(p) for p in patterns]
        for i, p in enumerate(self.patterns):
            if not p:
                raise ValueError(f"pattern {i} is empty")
        self.wmin = min(len(p) for p in self.patterns)
        self._build()

    def _build(self) -> None:
        self.root = _Node(0)
        for pid, pattern in enumerate(self.patterns):
            node = self.root
            for b in reversed(pattern):
                nxt = node.children.get(b)
                if nxt is None:
                    nxt = _Node(node.depth + 1)
                    node.children[b] = nxt
                node = nxt
            node.outputs.append(pid)
        # char(b): minimal depth at which byte b occurs in any reversed
        # pattern (capped at wmin + 1).
        self.char_min: Dict[int, int] = {}
        for pattern in self.patterns:
            rev = pattern[::-1]
            for depth, b in enumerate(rev[:self.wmin + 1], start=1):
                cur = self.char_min.get(b, self.wmin + 1)
                if depth < cur:
                    self.char_min[b] = depth

    def _char_shift(self, b: int, j: int) -> int:
        """Shift from the bad-character heuristic at trie depth ``j``."""
        return self.char_min.get(b, self.wmin + 1) - j - 1

    def find_all(self, text: bytes) -> List[MatchEvent]:
        events: List[MatchEvent] = []
        n = len(text)
        i = self.wmin - 1          # window end index
        while i < n:
            node = self.root
            j = 0
            # Walk backwards through the reversed-pattern trie.
            while i - j >= 0:
                b = text[i - j]
                nxt = node.children.get(b)
                if nxt is None:
                    break
                node = nxt
                j += 1
                for pid in node.outputs:
                    events.append(MatchEvent(i + 1, pid))
            # Shift: conservative CW rule, never below 1, never above the
            # safe bad-character bound.
            if i - j >= 0:
                shift = max(1, min(self._char_shift(text[i - j], j),
                                   self.wmin))
            else:
                shift = 1
            i += shift
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def count(self, text: bytes) -> int:
        return len(self.find_all(text))
