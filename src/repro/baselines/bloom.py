"""Bloom-filter string scanning (paper refs [2, 7, 13, 14]; §7 future work).

The FPGA literature the paper cites screens traffic with Bloom filters: one
filter per pattern length holds the hashes of all dictionary entries of
that length; a sliding window queries the filter at every offset, and only
filter *hits* are verified against the exact dictionary.  Negatives are
certain (no false negatives); positives are probabilistic and cost a
verification, so throughput degrades with the false-positive rate — the
trade-off the bench quantifies.

The implementation uses k hash functions derived from two independent
rolling (Rabin–Karp) hashes, so sliding the window one byte costs O(k)
regardless of pattern length.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from ..dfa.automaton import MatchEvent

__all__ = ["BloomFilter", "BloomMatcher"]

_MOD1 = (1 << 61) - 1
_BASE1 = 263
_MOD2 = (1 << 31) - 1
_BASE2 = 101


class BloomFilter:
    """Plain bit-array Bloom filter with ``k`` hash functions."""

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0 < fp_rate < 1:
            raise ValueError("fp_rate must be in (0, 1)")
        m = max(8, int(-expected_items * math.log(fp_rate)
                       / (math.log(2) ** 2)))
        self.num_bits = m
        self.num_hashes = max(1, round(m / expected_items * math.log(2)))
        self._bits = bytearray((m + 7) // 8)
        self.items_added = 0

    def _positions(self, h1: int, h2: int):
        for i in range(self.num_hashes):
            yield (h1 + i * h2 + i * i) % self.num_bits

    def add_hash(self, h1: int, h2: int) -> None:
        for pos in self._positions(h1, h2):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.items_added += 1

    def query_hash(self, h1: int, h2: int) -> bool:
        return all(self._bits[pos >> 3] & (1 << (pos & 7))
                   for pos in self._positions(h1, h2))

    @property
    def fill_ratio(self) -> float:
        ones = sum(bin(b).count("1") for b in self._bits)
        return ones / self.num_bits

    def theoretical_fp_rate(self) -> float:
        """Expected false-positive probability at the current fill."""
        k = self.num_hashes
        return (1 - (1 - 1 / self.num_bits)
                ** (k * self.items_added)) ** k


def _hash_pair(data: bytes) -> Tuple[int, int]:
    h1 = 0
    h2 = 0
    for b in data:
        h1 = (h1 * _BASE1 + b + 1) % _MOD1
        h2 = (h2 * _BASE2 + b + 1) % _MOD2
    return h1, h2


class BloomMatcher:
    """Multi-pattern scanner: one Bloom filter + rolling hash per length."""

    def __init__(self, patterns: Sequence[bytes],
                 fp_rate: float = 0.01) -> None:
        if not patterns:
            raise ValueError("at least one pattern required")
        self.patterns = [bytes(p) for p in patterns]
        for i, p in enumerate(self.patterns):
            if not p:
                raise ValueError(f"pattern {i} is empty")
        self.by_length: Dict[int, Dict[bytes, List[int]]] = {}
        for pid, p in enumerate(self.patterns):
            self.by_length.setdefault(len(p), {}).setdefault(p, []).append(
                pid)
        self.filters: Dict[int, BloomFilter] = {}
        for length, exact in self.by_length.items():
            bf = BloomFilter(len(exact), fp_rate)
            for p in exact:
                bf.add_hash(*_hash_pair(p))
            self.filters[length] = bf
        self.verifications = 0
        self.false_positives = 0

    def find_all(self, text: bytes) -> List[MatchEvent]:
        events: List[MatchEvent] = []
        n = len(text)
        for length, bf in self.filters.items():
            if n < length:
                continue
            exact = self.by_length[length]
            pow1 = pow(_BASE1, length - 1, _MOD1)
            pow2 = pow(_BASE2, length - 1, _MOD2)
            h1, h2 = _hash_pair(text[:length])
            pos = 0
            while True:
                if bf.query_hash(h1, h2):
                    self.verifications += 1
                    window = text[pos:pos + length]
                    pids = exact.get(window)
                    if pids is None:
                        self.false_positives += 1
                    else:
                        for pid in pids:
                            events.append(MatchEvent(pos + length, pid))
                if pos + length >= n:
                    break
                out = text[pos] + 1
                inc = text[pos + length] + 1
                h1 = ((h1 - out * pow1) * _BASE1 + inc) % _MOD1
                h2 = ((h2 - out * pow2) * _BASE2 + inc) % _MOD2
                pos += 1
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def count(self, text: bytes) -> int:
        return len(self.find_all(text))
