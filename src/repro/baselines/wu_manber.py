"""Wu–Manber multi-pattern search (paper ref [18]).

The classic block-based shift algorithm behind ``agrep``: a SHIFT table
indexed by the last ``B`` bytes of the scan window says how far the window
can safely jump; a HASH table maps zero-shift blocks to the candidate
patterns, which are then verified exactly.

Like Boyer–Moore, its speed depends on the input — the shift degenerates
on adversarial data — which is the paper's stated reason security
appliances prefer DFAs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..dfa.automaton import MatchEvent

__all__ = ["WuManberMatcher"]


class WuManberMatcher:
    """Wu–Manber with block size ``B`` (default 2)."""

    def __init__(self, patterns: Sequence[bytes], block: int = 2) -> None:
        if not patterns:
            raise ValueError("at least one pattern required")
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.patterns = [bytes(p) for p in patterns]
        for i, p in enumerate(self.patterns):
            if not p:
                raise ValueError(f"pattern {i} is empty")
        self.block = block
        # m = length of the shortest pattern; the scan window is m bytes.
        self.m = min(len(p) for p in self.patterns)
        if self.m < block:
            # Degenerate dictionaries fall back to block 1.
            self.block = block = 1
        self._build()

    def _key(self, chunk: bytes) -> bytes:
        return bytes(chunk)

    def _build(self) -> None:
        B, m = self.block, self.m
        default = m - B + 1
        self.default_shift = default
        self.shift: Dict[bytes, int] = {}
        self.hash: Dict[bytes, List[int]] = {}
        for pid, pattern in enumerate(self.patterns):
            prefix = pattern[:m]
            for j in range(B - 1, m):
                chunk = self._key(prefix[j - B + 1:j + 1])
                shift = m - 1 - j
                if shift < self.shift.get(chunk, default):
                    self.shift[chunk] = shift
                if shift == 0:
                    self.hash.setdefault(chunk, []).append(pid)

    def find_all(self, text: bytes) -> List[MatchEvent]:
        B, m = self.block, self.m
        n = len(text)
        events: List[MatchEvent] = []
        pos = m - 1
        while pos < n:
            chunk = self._key(text[pos - B + 1:pos + 1])
            shift = self.shift.get(chunk, self.default_shift)
            if shift:
                pos += shift
                continue
            window_start = pos - m + 1
            for pid in self.hash.get(chunk, ()):
                pattern = self.patterns[pid]
                end = window_start + len(pattern)
                if end <= n and text[window_start:end] == pattern:
                    events.append(MatchEvent(end, pid))
            pos += 1
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def count(self, text: bytes) -> int:
        return len(self.find_all(text))

    def scan_work(self, text: bytes) -> int:
        """Number of window inspections — the input-dependence metric the
        adversarial-workload bench reports."""
        B, m = self.block, self.m
        n = len(text)
        inspections = 0
        pos = m - 1
        while pos < n:
            inspections += 1
            chunk = self._key(text[pos - B + 1:pos + 1])
            shift = self.shift.get(chunk, self.default_shift)
            pos += shift if shift else 1
        return inspections
