"""Knuth–Morris–Pratt string search (paper ref [12]).

One of the classic single-pattern algorithms the paper's §1 surveys.  Like
the other heuristic-free baselines it does O(1) work per input symbol, but
a multi-pattern dictionary needs one pass per pattern — which is exactly
the argument for the Aho–Corasick DFA the paper builds on.
"""

from __future__ import annotations

from typing import List, Sequence

from ..dfa.automaton import MatchEvent

__all__ = ["KMPMatcher", "failure_function"]


def failure_function(pattern: bytes) -> List[int]:
    """KMP failure (border) table: ``fail[i]`` is the length of the longest
    proper border of ``pattern[:i+1]``."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    fail = [0] * len(pattern)
    k = 0
    for i in range(1, len(pattern)):
        while k > 0 and pattern[i] != pattern[k]:
            k = fail[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        fail[i] = k
    return fail


class KMPMatcher:
    """Multi-pattern wrapper: one KMP scan per dictionary entry."""

    def __init__(self, patterns: Sequence[bytes]) -> None:
        if not patterns:
            raise ValueError("at least one pattern required")
        self.patterns = [bytes(p) for p in patterns]
        self._fails = [failure_function(p) for p in self.patterns]

    def _find_one(self, text: bytes, pid: int) -> List[MatchEvent]:
        pattern = self.patterns[pid]
        fail = self._fails[pid]
        events: List[MatchEvent] = []
        k = 0
        m = len(pattern)
        for i, b in enumerate(text):
            while k > 0 and b != pattern[k]:
                k = fail[k - 1]
            if b == pattern[k]:
                k += 1
            if k == m:
                events.append(MatchEvent(i + 1, pid))
                k = fail[k - 1]
        return events

    def find_all(self, text: bytes) -> List[MatchEvent]:
        events: List[MatchEvent] = []
        for pid in range(len(self.patterns)):
            events.extend(self._find_one(text, pid))
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def count(self, text: bytes) -> int:
        return len(self.find_all(text))
