"""Naive multi-pattern search: the correctness anchor for every other
matcher in this repository.

Semantics: an *occurrence* is a (pattern, end-position) pair; the count of
occurrences equals the number of Aho–Corasick match events (a position
where two different patterns end contributes two occurrences).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..dfa.automaton import MatchEvent

__all__ = ["NaiveMatcher"]


class NaiveMatcher:
    """Quadratic reference matcher (use only on small inputs/tests)."""

    def __init__(self, patterns: Sequence[bytes]) -> None:
        if not patterns:
            raise ValueError("at least one pattern required")
        self.patterns = [bytes(p) for p in patterns]
        for i, p in enumerate(self.patterns):
            if not p:
                raise ValueError(f"pattern {i} is empty")

    def find_all(self, text: bytes) -> List[MatchEvent]:
        """All occurrences, sorted by end position then pattern id."""
        events: List[MatchEvent] = []
        for pid, pattern in enumerate(self.patterns):
            start = 0
            m = len(pattern)
            while True:
                pos = text.find(pattern, start)
                if pos < 0:
                    break
                events.append(MatchEvent(pos + m, pid))
                start = pos + 1
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def count(self, text: bytes) -> int:
        return len(self.find_all(text))
