"""Baseline string-matching algorithms (paper §1's comparison set).

All baselines share the occurrence semantics of
:meth:`repro.dfa.AhoCorasick.find_all` — one event per (pattern,
end-position) pair — so every engine in the repository can be cross-
validated against every other.
"""

from .bloom import BloomFilter, BloomMatcher
from .boyer_moore import BoyerMooreMatcher
from .commentz_walter import CommentzWalterMatcher
from .kmp import KMPMatcher
from .naive import NaiveMatcher
from .wu_manber import WuManberMatcher

__all__ = [
    "BloomFilter",
    "BloomMatcher",
    "BoyerMooreMatcher",
    "CommentzWalterMatcher",
    "KMPMatcher",
    "NaiveMatcher",
    "WuManberMatcher",
]
