"""Boyer–Moore string search (paper ref [3]).

The paper's §1 notes that Boyer–Moore-style algorithms, while fast on
average, have *input-dependent* running time: an adversary can feed worst-
case data and overload the filter.  The sublinear skipping that makes BM
attractive offline is precisely what disqualifies it for wire-speed
security scanning — the benches demonstrate the gap between its best- and
worst-case throughput, next to the DFA's flat cost.

Implements the full algorithm: bad-character rule plus the strong
good-suffix rule.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..dfa.automaton import MatchEvent

__all__ = ["BoyerMooreMatcher", "bad_character_table", "good_suffix_table"]


def bad_character_table(pattern: bytes) -> Dict[int, int]:
    """Rightmost index of each byte value in the pattern."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    return {b: i for i, b in enumerate(pattern)}


def good_suffix_table(pattern: bytes) -> List[int]:
    """Strong good-suffix shifts, ``shift[j]`` = shift when a mismatch
    happens at pattern position ``j`` (classic two-phase construction)."""
    m = len(pattern)
    shift = [0] * (m + 1)
    border = [0] * (m + 1)

    # Phase 1: borders of suffixes.
    i, j = m, m + 1
    border[i] = j
    while i > 0:
        while j <= m and pattern[i - 1] != pattern[j - 1]:
            if shift[j] == 0:
                shift[j] = j - i
            j = border[j]
        i -= 1
        j -= 1
        border[i] = j

    # Phase 2: widest borders.
    j = border[0]
    for i in range(m + 1):
        if shift[i] == 0:
            shift[i] = j
        if i == j:
            j = border[j]
    return shift


class BoyerMooreMatcher:
    """Multi-pattern wrapper: one Boyer–Moore scan per dictionary entry."""

    def __init__(self, patterns: Sequence[bytes]) -> None:
        if not patterns:
            raise ValueError("at least one pattern required")
        self.patterns = [bytes(p) for p in patterns]
        self._bad = [bad_character_table(p) for p in self.patterns]
        self._good = [good_suffix_table(p) for p in self.patterns]

    def _find_one(self, text: bytes, pid: int) -> List[MatchEvent]:
        pattern = self.patterns[pid]
        bad = self._bad[pid]
        good = self._good[pid]
        m = len(pattern)
        n = len(text)
        events: List[MatchEvent] = []
        s = 0
        while s <= n - m:
            j = m - 1
            while j >= 0 and pattern[j] == text[s + j]:
                j -= 1
            if j < 0:
                events.append(MatchEvent(s + m, pid))
                s += good[0]
            else:
                bc_shift = j - bad.get(text[s + j], -1)
                s += max(good[j + 1], bc_shift, 1)
        return events

    def find_all(self, text: bytes) -> List[MatchEvent]:
        events: List[MatchEvent] = []
        for pid in range(len(self.patterns)):
            events.extend(self._find_one(text, pid))
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def count(self, text: bytes) -> int:
        return len(self.find_all(text))
