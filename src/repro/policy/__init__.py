"""Policy layer: rules, verdicts and tenants over the scan core.

The paper's engine answers "how many dictionary hits?"; a deployed DPI
pipeline must answer "so what do we do with this flow?".  This package
is that missing layer:

* :mod:`~repro.policy.rules` — the rule model and the per-generation
  ruleset compiler (pattern → rule binding through the dictionary's
  per-DFA slice projection);
* :mod:`~repro.policy.verdicts` — per-flow verdict state folded from
  packet match deltas (first-match vs accumulate, trailing byte
  windows, rate-limit token buckets);
* :mod:`~repro.policy.tenants` — per-tenant dictionary + policy
  generations with atomic hot-swap on the double-buffer idiom, and the
  manager the daemon's TENANT/POLICY verbs drive.
"""

from .rules import (ACTIONS, MODES, SEVERITY, CompiledRuleSet,
                    PolicyError, Rule, RuleSet)
from .tenants import Tenant, TenantError, TenantManager
from .verdicts import PacketVerdict, VerdictEngine

__all__ = [
    "ACTIONS",
    "MODES",
    "SEVERITY",
    "CompiledRuleSet",
    "PolicyError",
    "Rule",
    "RuleSet",
    "Tenant",
    "TenantError",
    "TenantManager",
    "PacketVerdict",
    "VerdictEngine",
]
