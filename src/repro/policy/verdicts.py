"""Per-flow verdict state: fold packet match deltas into decisions.

:class:`VerdictEngine` rides on
:meth:`~repro.service.sessions.SessionScanner.scan_packet_detail`: the
session scanner reports *what matched*, the engine decides *what to do
about it* and remembers per flow.  Verdict state deliberately lives
**outside** the dictionary generations — a hot reload restarts DFA
states (restart-at-generation), but a flow already sentenced to
``drop`` stays dropped across the swap.

Lifecycle of a flow's verdict:

* packets arrive; each rule's match count accrues inside its trailing
  byte window (``window_bytes=0`` = lifetime);
* a rule whose count reaches ``threshold`` *triggers*.  In
  ``first-match`` mode the first triggered rule latches the flow's
  verdict permanently; in ``accumulate`` mode every triggered rule
  stays latched and the flow's verdict is the most severe of them;
* ``rate-limit`` rules meter instead of sentence: each triggered packet
  spends one token from a per-flow bucket (``burst`` capacity,
  ``rate``/s refill on the injected clock); while tokens remain the
  packet verdict is ``rate-limit`` (marked, forwarded), a dry bucket
  escalates that packet to ``drop``;
* the flow's verdict dies with the flow: an LRU eviction or CLOSE_FLOW
  clears it (the session table is the bound on both).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from .rules import SEVERITY, CompiledRuleSet

__all__ = ["PacketVerdict", "VerdictEngine"]


@dataclass
class PacketVerdict:
    """The engine's decision for one packet."""

    action: str                  # forward / alert / mirror / rate-limit / drop
    #: Rule that determined ``action`` (None = forward, no rule fired).
    rule: Optional[str] = None
    #: Rules newly triggered by this packet.
    triggered: List[str] = field(default_factory=list)
    new_matches: int = 0
    flow_total: int = 0
    #: Seconds spent attributing + judging (the policy overhead).
    seconds: float = 0.0


class _Bucket:
    """Token bucket, refilled lazily on the engine's clock."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, burst: int, now: float) -> None:
        self.tokens = float(burst)
        self.stamp = now

    def spend(self, rate: float, burst: int, now: float) -> bool:
        self.tokens = min(float(burst),
                          self.tokens + (now - self.stamp) * rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class _FlowVerdict:
    """Verdict state of one flow."""

    __slots__ = ("ruleset", "counts", "events", "latched", "action",
                 "rule", "buckets", "bytes_seen")

    def __init__(self, ruleset, num_rules: int) -> None:
        #: The RuleSet these counters accrued under.  Identity-compared
        #: against the binding's ruleset on every packet: a policy
        #: hot-swap installs a new RuleSet object (even one with the
        #: same rule count), so stale counters/latches/buckets never
        #: leak into the new rules; a dictionary reload recompiles the
        #: binding around the *same* RuleSet object, so counters
        #: survive it.
        self.ruleset = ruleset
        self.counts = [0] * num_rules          # lifetime per-rule matches
        # Byte offsets of recent matches, per windowed rule (bounded at
        # threshold entries — enough to decide the window predicate).
        self.events: Dict[int, List[int]] = {}
        self.latched: Dict[int, bool] = {}     # rule index -> triggered
        self.action = "forward"
        self.rule: Optional[str] = None
        self.buckets: Dict[int, _Bucket] = {}
        self.bytes_seen = 0


class VerdictEngine:
    """Per-tenant verdict ledger over the flow-session table.

    One engine per tenant; rulesets are *arguments*, not state, so a
    swap takes effect on the next judged packet.  A dictionary reload
    (new binding, same RuleSet) loses no flow state; a policy hot-swap
    restarts per-rule counters/windows/buckets — the new rules start
    from zero — while latched actions survive.  The clock is injectable
    for deterministic token-bucket tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._flows: Dict[Hashable, _FlowVerdict] = {}
        #: Lifetime packet-verdict counts per action (engine-local;
        #: ServiceMetrics keeps the per-tenant service view).
        self.action_totals: Dict[str, int] = {}

    # -- introspection -------------------------------------------------------------

    @property
    def num_flows(self) -> int:
        with self._lock:
            return len(self._flows)

    def flow_action(self, flow_id: Hashable) -> str:
        """Current standing verdict of a flow (``forward`` if unknown)."""
        with self._lock:
            flow = self._flows.get(flow_id)
            return flow.action if flow is not None else "forward"

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "flows": len(self._flows),
                "actions": dict(self.action_totals),
            }

    # -- lifecycle -----------------------------------------------------------------

    def close_flow(self, flow_id: Hashable) -> Optional[str]:
        """Forget a flow's verdict; returns its final action."""
        with self._lock:
            flow = self._flows.pop(flow_id, None)
            return flow.action if flow is not None else None

    def drop_flows(self, flow_ids) -> int:
        """Forget evicted flows (the session LRU decided, we follow)."""
        dropped = 0
        with self._lock:
            for fid in flow_ids:
                if self._flows.pop(fid, None) is not None:
                    dropped += 1
        return dropped

    # -- judging -------------------------------------------------------------------

    def apply(self, flow_id: Hashable, detail,
              binding: Optional[CompiledRuleSet]) -> PacketVerdict:
        """Judge one packet given its scan detail and the tenant's
        currently bound ruleset (``None`` = rule-free tenant: the
        packet forwards and no flow state is created)."""
        t0 = time.perf_counter()
        if detail.evicted:
            self.drop_flows(detail.evicted)
        if binding is None or not binding.rules:
            return PacketVerdict(action="forward",
                                 new_matches=detail.new,
                                 flow_total=detail.flow_total,
                                 seconds=time.perf_counter() - t0)
        with self._lock:
            verdict = self._judge(flow_id, detail, binding)
            self.action_totals[verdict.action] = \
                self.action_totals.get(verdict.action, 0) + 1
        verdict.seconds = time.perf_counter() - t0
        return verdict

    def _judge(self, flow_id: Hashable, detail,
               binding: CompiledRuleSet) -> PacketVerdict:
        rules = binding.rules
        flow = self._flows.get(flow_id)
        if flow is None or flow.ruleset is not binding.ruleset:
            # New flow, or a policy hot-swap under it: verdict counters
            # restart, but a latched action survives the swap.
            fresh = _FlowVerdict(binding.ruleset, len(rules))
            if flow is not None:
                fresh.action, fresh.rule = flow.action, flow.rule
                fresh.bytes_seen = flow.bytes_seen
            flow = self._flows[flow_id] = fresh
        packet_bytes = len(detail.folded)
        flow.bytes_seen += packet_bytes

        first_match = binding.mode == "first-match"
        if first_match and flow.rule is not None:
            # Verdict latched; only rate-limit rules still do work
            # (their bucket meters every triggered packet).
            ri = next((i for i, r in enumerate(rules)
                       if r.name == flow.rule), None)
            if ri is not None and rules[ri].action == "rate-limit":
                action = self._meter(flow, ri, rules[ri])
                return PacketVerdict(action=action, rule=flow.rule,
                                     new_matches=detail.new,
                                     flow_total=detail.flow_total)
            return PacketVerdict(action=flow.action, rule=flow.rule,
                                 new_matches=detail.new,
                                 flow_total=detail.flow_total)

        newly_triggered: List[str] = []
        if detail.new:
            per_rule = binding.attribute(detail)
            for ri, n in per_rule.items():
                rule = rules[ri]
                flow.counts[ri] += n
                if rule.window_bytes:
                    events = flow.events.setdefault(ri, [])
                    events.extend([flow.bytes_seen] * n)
                    # Only the newest `threshold` offsets can satisfy
                    # the window predicate — drop the rest.
                    del events[:-rule.threshold]
                if not flow.latched.get(ri) \
                        and self._triggered(flow, ri, rule):
                    flow.latched[ri] = True
                    newly_triggered.append(rule.name)
                    if first_match and flow.rule is None:
                        flow.action, flow.rule = rule.action, rule.name

        if not first_match:
            # Accumulate: standing verdict = most severe latched rule.
            for ri, hit in flow.latched.items():
                if hit and SEVERITY[rules[ri].action] > \
                        SEVERITY[flow.action]:
                    flow.action, flow.rule = rules[ri].action, \
                        rules[ri].name

        action, rule_name = flow.action, flow.rule
        if rule_name is not None and action == "rate-limit":
            # A hot-swap may have retired the latched rule; without its
            # rate/burst there is nothing to meter — the latched
            # verdict stands as-is.
            ri = next((i for i, r in enumerate(rules)
                       if r.name == rule_name), None)
            if ri is not None:
                action = self._meter(flow, ri, rules[ri])
        return PacketVerdict(action=action, rule=rule_name,
                             triggered=newly_triggered,
                             new_matches=detail.new,
                             flow_total=detail.flow_total)

    def _triggered(self, flow: _FlowVerdict, ri: int, rule) -> bool:
        if not rule.window_bytes:
            return flow.counts[ri] >= rule.threshold
        events = flow.events.get(ri, ())
        if len(events) < rule.threshold:
            return False
        horizon = flow.bytes_seen - rule.window_bytes
        return events[-rule.threshold] >= horizon

    def _meter(self, flow: _FlowVerdict, ri: int, rule) -> str:
        bucket = flow.buckets.get(ri)
        now = self._clock()
        if bucket is None:
            bucket = flow.buckets[ri] = _Bucket(rule.burst, now)
        return "rate-limit" if bucket.spend(rule.rate, rule.burst, now) \
            else "drop"
