"""Multi-tenant wiring: one dictionary + one policy per tenant.

A :class:`Tenant` owns

* a :class:`~repro.service.registry.DictionaryRegistry` — its private
  dictionary generations, hot-swapped on the §6 double-buffer idiom
  exactly like the daemon's default registry;
* a :class:`~repro.core.replacement.DoubleBuffer` of
  :class:`~repro.policy.rules.RuleSet` *policy generations* — a rule
  hot-swap stages the new ruleset and promotes it atomically, never
  blocking the scan path;
* a :class:`~repro.policy.verdicts.VerdictEngine` — per-flow verdict
  state that survives *both* kinds of swap (flows restart DFA states at
  a dictionary reload, but a sentenced flow stays sentenced).

Because a ruleset binds to pattern/slice layout, the compiled binding
is keyed by ``(policy generation, dictionary generation)`` and rebuilt
lazily on first use after either side swaps; bindings of retired pairs
are dropped.  A rule-free tenant's scan path is the plain registry
lease + session scan — bit-identical to the tenant-less daemon path,
which the differential suite pins.

:class:`TenantManager` is the name → tenant table the daemon's TENANT
verb drives, sharing one artifact cache so identical dictionaries
across tenants warm-swap for free.
"""

from __future__ import annotations

import threading
import time
from typing import (TYPE_CHECKING, Callable, Dict, Hashable, List,
                    Optional, Sequence, Tuple)

from ..core.backends import ScanOutcome, ScanRequest, execute
from ..core.replacement import DoubleBuffer
from .rules import CompiledRuleSet, PolicyError, RuleSet
from .verdicts import PacketVerdict, VerdictEngine

if TYPE_CHECKING:   # pragma: no cover
    from ..service.registry import ReloadResult

__all__ = ["Tenant", "TenantManager", "TenantError"]


class TenantError(Exception):
    """Raised for unknown or duplicate tenants."""


class _PolicyGeneration:
    """One staged/active ruleset (the double buffer's slot value)."""

    __slots__ = ("gen_id", "ruleset")

    def __init__(self, gen_id: int, ruleset: RuleSet) -> None:
        self.gen_id = gen_id
        self.ruleset = ruleset


class Tenant:
    """One tenant's dictionary, policy and verdict state."""

    def __init__(self, name: str, patterns: Optional[Sequence] = None, *,
                 rules: Optional[RuleSet] = None,
                 fold=None, regex: bool = False,
                 max_states: int = 1 << 30, cache=None,
                 max_flows: int = 65536, session_policy: str = "lru",
                 clock: Callable[[], float] = time.monotonic,
                 compiled=None, first_generation: int = 1) -> None:
        if not name:
            raise TenantError("tenant needs a name")
        # Imported lazily: the daemon imports this module, so a
        # module-level import of repro.service would be circular when
        # repro.policy is imported first.
        from ..service.registry import DictionaryRegistry
        self.name = name
        self.registry = DictionaryRegistry(
            patterns, fold=fold, regex=regex, max_states=max_states,
            cache=cache, max_flows=max_flows,
            session_policy=session_policy, compiled=compiled,
            first_generation=first_generation)
        self.verdicts = VerdictEngine(clock=clock)
        first = _PolicyGeneration(1, rules or RuleSet())
        if first.ruleset.rules:
            # Initial rules must resolve against the initial
            # dictionary, the same check every later swap runs.
            try:
                first.ruleset.compile(self.registry.active.compiled)
            except PolicyError:
                self.registry.close()
                raise
        self._policy: DoubleBuffer[_PolicyGeneration] = DoubleBuffer(first)
        # (policy gen, dictionary gen) -> CompiledRuleSet; guarded by
        # its own lock — binding compilation is pattern-lookup cheap,
        # but must not race a concurrent swap.
        self._bindings: Dict[Tuple[int, int], Optional[CompiledRuleSet]] = {}
        self._bind_lock = threading.Lock()
        # Serializes the two swap directions against each other: a
        # policy swap and a dictionary reload each validate the
        # (policy, dictionary) pair before promoting, and the pair they
        # validated must be the pair they promote.  Scans never take it.
        self._swap_lock = threading.Lock()

    # -- policy swaps --------------------------------------------------------------

    @property
    def ruleset(self) -> RuleSet:
        return self._policy.active.ruleset

    @property
    def policy_generation(self) -> int:
        return self._policy.active.gen_id

    def set_rules(self, rules: RuleSet) -> int:
        """Hot-swap the policy: stage, validate against the *active*
        dictionary (fail before promoting, like a reload compile
        failure), promote atomically.  Returns the policy generation."""
        with self._swap_lock:
            binding: Optional[CompiledRuleSet] = None
            with self.registry.lease() as gen:
                if rules.rules:
                    # Surface unknown patterns now; keep the compiled
                    # binding so the first judged packet pays nothing.
                    binding = rules.compile(gen.compiled)
                dict_gen = gen.gen_id
            incoming = _PolicyGeneration(
                self._policy.active.gen_id + 1, rules)
            self._policy.stage(incoming)
            self._policy.promote()
            with self._bind_lock:
                self._bindings.clear()
                if binding is not None:
                    self._bindings[(incoming.gen_id, dict_gen)] = binding
            return incoming.gen_id

    def load_dictionary(self, patterns: Sequence,
                        regex: bool = False) -> ReloadResult:
        """Hot dictionary reload.  The active ruleset must resolve
        against the incoming dictionary *before* it is promoted; a
        mismatch refuses the reload and leaves the old generation
        serving (policy and dictionary cannot drift apart)."""
        with self._swap_lock:
            active = self._policy.active
            compiled_binding: List[CompiledRuleSet] = []

            def _validate(compiled) -> None:
                # Runs inside registry.load, after compile but before
                # the stage/promote flip: a PolicyError here aborts the
                # reload with the old dictionary still active.
                if active.ruleset.rules:
                    compiled_binding.append(
                        active.ruleset.compile(compiled))

            result = self.registry.load(patterns, regex=regex,
                                        validate=_validate)
            with self._bind_lock:
                self._bindings.clear()
                if compiled_binding:
                    self._bindings[(active.gen_id, result.generation)] = \
                        compiled_binding[0]
            return result

    def load_compiled(self, compiled,
                      generation: Optional[int] = None) -> ReloadResult:
        """Hot-swap to an externally compiled dictionary (the pool's
        worker side of a tenant reload), with the same active-ruleset
        validation as :meth:`load_dictionary`."""
        with self._swap_lock:
            active = self._policy.active
            compiled_binding: List[CompiledRuleSet] = []

            def _validate(incoming) -> None:
                if active.ruleset.rules:
                    compiled_binding.append(
                        active.ruleset.compile(incoming))

            result = self.registry.load_compiled(
                compiled, generation=generation, validate=_validate)
            with self._bind_lock:
                self._bindings.clear()
                if compiled_binding:
                    self._bindings[(active.gen_id, result.generation)] = \
                        compiled_binding[0]
            return result

    def _binding(self, generation) -> Optional[CompiledRuleSet]:
        """The compiled ruleset for one leased dictionary generation
        (``None`` for a rule-free tenant)."""
        active = self._policy.active
        if not active.ruleset.rules:
            return None
        key = (active.gen_id, generation.gen_id)
        binding = self._bindings.get(key)
        if binding is not None:
            return binding
        with self._bind_lock:
            binding = self._bindings.get(key)
            if binding is None:
                binding = active.ruleset.compile(generation.compiled)
                # Bindings of retired (policy, dict) pairs are dead
                # weight; keep only the newest few for raced leases.
                while len(self._bindings) > 3:
                    self._bindings.pop(next(iter(self._bindings)))
                self._bindings[key] = binding
            return binding

    # -- data path -----------------------------------------------------------------

    def scan(self, request: ScanRequest,
             backend: Optional[str] = None) -> Tuple[ScanOutcome, int]:
        """One-shot stateless scan through this tenant's dictionary —
        the same ``execute`` call the tenant-less path runs, on the
        tenant's leased generation."""
        with self.registry.lease() as gen:
            outcome = execute(gen.ctx, request, backend)
            return outcome, gen.gen_id

    def scan_packet(self, flow_id: Hashable,
                    payload: bytes) -> Tuple[PacketVerdict, int, int]:
        """Sessioned scan + verdict.  Returns ``(verdict, generation,
        evicted)``.

        The binding is resolved *before* the packet is scanned: both
        swap directions validate the active (policy, dictionary) pair
        before promoting, so a binding failure can only mean this lease
        was overtaken by a dictionary reload *and* a policy swap since
        it was read — re-lease the now-active pair and try again (the
        flow's DFA state has not advanced yet, so the retry scans the
        packet exactly once).
        """
        while True:
            with self.registry.lease() as gen:
                try:
                    binding = self._binding(gen)
                except PolicyError:
                    if gen.gen_id == self.registry.generation:
                        raise
                    continue
                detail = gen.sessions.scan_packet_detail(flow_id, payload)
                verdict = self.verdicts.apply(flow_id, detail, binding)
                return verdict, gen.gen_id, len(detail.evicted)

    def close_flow(self, flow_id: Hashable) -> Tuple[int, int, Optional[str]]:
        """Evict one flow; returns ``(bytes, matches, final action)``."""
        with self.registry.lease() as gen:
            nbytes, matches = gen.sessions.close_flow(flow_id)
        action = self.verdicts.close_flow(flow_id)
        return nbytes, matches, action

    # -- lifecycle -----------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        active = self._policy.active
        return {
            "registry": self.registry.describe(),
            "policy": {
                "generation": active.gen_id,
                "rules": len(active.ruleset.rules),
                "mode": active.ruleset.mode,
                "actions": [r.action for r in active.ruleset.rules],
            },
            "verdicts": self.verdicts.describe(),
        }

    def close(self) -> None:
        self.registry.close()

    def __repr__(self) -> str:
        return (f"Tenant({self.name!r}, "
                f"dict_gen={self.registry.generation}, "
                f"policy_gen={self.policy_generation}, "
                f"rules={len(self.ruleset.rules)})")


class TenantManager:
    """The daemon's name → :class:`Tenant` table.

    Tenants share one artifact cache (identical dictionaries warm-swap
    across tenants) and the service's flow-table defaults; everything
    else — dictionary, policy, verdict state, metrics identity — is
    per-tenant and never crosses.
    """

    def __init__(self, *, cache=None, max_flows: int = 65536,
                 session_policy: str = "lru", max_states: int = 1 << 30,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._cache = cache
        self._max_flows = max_flows
        self._session_policy = session_policy
        self._max_states = max_states
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}

    def create(self, name: str, patterns: Optional[Sequence] = None, *,
               rules: Optional[RuleSet] = None,
               regex: bool = False, compiled=None,
               first_generation: int = 1) -> Tenant:
        tenant = Tenant(
            name, patterns, rules=rules, regex=regex,
            max_states=self._max_states, cache=self._cache,
            max_flows=self._max_flows,
            session_policy=self._session_policy, clock=self._clock,
            compiled=compiled, first_generation=first_generation)
        with self._lock:
            if name in self._tenants:
                tenant.close()
                raise TenantError(f"tenant {name!r} already exists")
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise TenantError(f"unknown tenant {name!r}")
        return tenant

    def drop(self, name: str) -> None:
        with self._lock:
            tenant = self._tenants.pop(name, None)
        if tenant is None:
            raise TenantError(f"unknown tenant {name!r}")
        tenant.close()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def describe(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            tenants = list(self._tenants.items())
        return {name: tenant.describe() for name, tenant in tenants}

    def close(self) -> None:
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for tenant in tenants:
            tenant.close()
