"""Detection rules: bind dictionary patterns to actions.

The scan core reports *counts*; a DPI engine needs *decisions*.  A
:class:`Rule` names a set of dictionary patterns and the action to take
when they fire often enough (``threshold``) and recently enough
(``window_bytes``, a trailing window measured in flow bytes — byte-
denominated so replays are deterministic).  A :class:`RuleSet` is the
tenant-facing policy document: an ordered list of rules plus the
verdict mode (first-match-wins or accumulate).

Compilation (:meth:`RuleSet.compile`) binds the rule patterns to one
:class:`~repro.core.compiled.CompiledDictionary` through its per-DFA
slice projection (``compiled.pattern_locations()``):

* a slice whose patterns all map to the *same* rule set is **pure** —
  its per-packet match delta attributes to those rules directly, with
  zero extra work on the scan path;
* a **mixed** slice (patterns of different rules share one DFA) is
  resolved exactly, but only for packets where that slice actually
  reported matches: a single walk of the folded payload from the
  flow's pre-packet state collects the slice DFA's output ids, which
  the local→rule table turns into per-rule counts.

Since most packets match nothing (the NIDS steady state), attribution
is free in the common case and exact always.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ACTIONS", "SEVERITY", "MODES", "PolicyError", "Rule",
           "RuleSet", "CompiledRuleSet"]


class PolicyError(Exception):
    """Raised for malformed rules or rules naming unknown patterns."""


#: The verdict vocabulary, mildest first.  ``forward`` is the implicit
#: no-rule verdict; the rest are rule actions.
ACTIONS: Tuple[str, ...] = ("alert", "mirror", "rate-limit", "drop")

#: Action precedence when several rules fire on one flow (accumulate
#: mode takes the most severe).
SEVERITY: Dict[str, int] = {"forward": 0, "alert": 1, "mirror": 2,
                            "rate-limit": 3, "drop": 4}

#: Verdict modes: latch the first triggered rule forever, or keep
#: evaluating and escalate to the most severe triggered action.
MODES: Tuple[str, ...] = ("first-match", "accumulate")


def _as_bytes(pattern) -> bytes:
    return pattern.encode() if isinstance(pattern, str) else bytes(pattern)


def _spec_bytes(pattern) -> bytes:
    """Wire-side inverse of ``to_spec``'s latin-1 decode.

    Spec strings are byte images (one char per byte), so they must
    re-encode latin-1 — UTF-8 would turn ``"\\xff"`` into two bytes and
    silently change what the signature matches.  Code points above 255
    cannot name a byte pattern and are rejected (UnicodeEncodeError is
    a ValueError, mapped to PolicyError by ``from_spec``).
    """
    if isinstance(pattern, str):
        return pattern.encode("latin-1")
    return bytes(pattern)


@dataclass(frozen=True)
class Rule:
    """One detection rule.

    ``patterns`` names dictionary entries (empty = any entry).  The rule
    *triggers* on a flow once ``threshold`` of its patterns' matches
    land within the trailing ``window_bytes`` of that flow's stream
    (``0`` = lifetime).  ``rate``/``burst`` parameterize the token
    bucket of ``rate-limit`` rules: each triggered packet spends one
    token, the bucket refills at ``rate`` tokens/second up to ``burst``,
    and a dry bucket escalates the packet's verdict to ``drop``.
    """

    name: str
    action: str
    patterns: Tuple[bytes, ...] = ()
    threshold: int = 1
    window_bytes: int = 0
    rate: float = 1.0
    burst: int = 1

    def __post_init__(self):
        if not self.name:
            raise PolicyError("rule needs a name")
        if self.action not in ACTIONS:
            raise PolicyError(
                f"rule {self.name!r}: action must be one of "
                f"{', '.join(ACTIONS)}, got {self.action!r}")
        if self.threshold < 1:
            raise PolicyError(f"rule {self.name!r}: threshold must be "
                              f"positive")
        if self.window_bytes < 0:
            raise PolicyError(f"rule {self.name!r}: window_bytes must "
                              f"be non-negative")
        if self.rate <= 0:
            raise PolicyError(f"rule {self.name!r}: rate must be "
                              f"positive")
        if self.burst < 1:
            raise PolicyError(f"rule {self.name!r}: burst must be "
                              f"positive")
        object.__setattr__(self, "patterns",
                           tuple(_as_bytes(p) for p in self.patterns))

    def to_spec(self) -> Dict[str, object]:
        """JSON-friendly form (the POLICY verb's wire shape)."""
        return {
            "name": self.name,
            "action": self.action,
            "patterns": [p.decode("latin-1") for p in self.patterns],
            "threshold": self.threshold,
            "window_bytes": self.window_bytes,
            "rate": self.rate,
            "burst": self.burst,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "Rule":
        if not isinstance(spec, dict):
            raise PolicyError(f"rule spec must be an object, got "
                              f"{type(spec).__name__}")
        unknown = set(spec) - {"name", "action", "patterns", "threshold",
                               "window_bytes", "rate", "burst"}
        if unknown:
            raise PolicyError(
                f"rule spec has unknown keys: {', '.join(sorted(unknown))}")
        try:
            return cls(
                name=str(spec.get("name", "")),
                action=str(spec.get("action", "")),
                patterns=tuple(
                    _spec_bytes(p if isinstance(p, (str, bytes)) else str(p))
                    for p in spec.get("patterns", ())),
                threshold=int(spec.get("threshold", 1)),
                window_bytes=int(spec.get("window_bytes", 0)),
                rate=float(spec.get("rate", 1.0)),
                burst=int(spec.get("burst", 1)))
        except (TypeError, ValueError) as exc:
            raise PolicyError(f"malformed rule spec: {exc}") from exc


@dataclass(frozen=True)
class RuleSet:
    """An ordered rule list plus the verdict mode — the policy document
    a tenant hot-swaps as one unit."""

    rules: Tuple[Rule, ...] = ()
    mode: str = "first-match"

    def __post_init__(self):
        if self.mode not in MODES:
            raise PolicyError(f"mode must be one of {', '.join(MODES)}, "
                              f"got {self.mode!r}")
        object.__setattr__(self, "rules", tuple(self.rules))
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise PolicyError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)

    def __len__(self) -> int:
        return len(self.rules)

    def to_specs(self) -> List[Dict[str, object]]:
        return [rule.to_spec() for rule in self.rules]

    @classmethod
    def from_specs(cls, specs: Sequence[Dict],
                   mode: str = "first-match") -> "RuleSet":
        if not isinstance(specs, (list, tuple)):
            raise PolicyError("rules must be a list of rule objects")
        return cls(rules=tuple(Rule.from_spec(s) for s in specs),
                   mode=mode)

    def compile(self, compiled) -> "CompiledRuleSet":
        """Bind this ruleset to one compiled dictionary generation."""
        return CompiledRuleSet.build(self, compiled)


class CompiledRuleSet:
    """A :class:`RuleSet` bound to one dictionary generation.

    Holds, per slice, either the shared rule-index tuple every pattern
    of the slice maps to (*pure* — delta attribution is table-free) or
    the ``local output id → rule indices`` map plus the slice DFA for
    the exact resolve walk (*mixed*).
    """

    def __init__(self, ruleset: RuleSet, compiled,
                 pattern_rules: Dict[int, Tuple[int, ...]],
                 pure: List[Optional[Tuple[int, ...]]],
                 mixed: List[Optional[Dict[int, Tuple[int, ...]]]]) -> None:
        self.ruleset = ruleset
        self.compiled = compiled
        self.fingerprint = compiled.fingerprint
        self._pattern_rules = pattern_rules
        self._pure = pure
        self._mixed = mixed

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return self.ruleset.rules

    @property
    def mode(self) -> str:
        return self.ruleset.mode

    @property
    def pure_slices(self) -> int:
        """Slices whose deltas attribute without a resolve walk."""
        return sum(1 for p in self._pure if p is not None)

    @classmethod
    def build(cls, ruleset: RuleSet, compiled) -> "CompiledRuleSet":
        fold = compiled.fold
        # Dictionary entries are matched *folded*; rules referring to a
        # pattern must resolve through the same fold or case variants
        # would silently miss.
        by_folded: Dict[bytes, List[int]] = {}
        for gid, pattern in enumerate(compiled.patterns):
            by_folded.setdefault(fold.fold_bytes(pattern), []).append(gid)

        pattern_rules: Dict[int, List[int]] = {}
        for ri, rule in enumerate(ruleset.rules):
            if not rule.patterns:      # wildcard: any dictionary entry
                gids = range(compiled.num_patterns)
            else:
                gids = []
                for pattern in rule.patterns:
                    hit = by_folded.get(fold.fold_bytes(pattern))
                    if not hit:
                        raise PolicyError(
                            f"rule {rule.name!r} names pattern "
                            f"{pattern!r} which is not in the "
                            f"dictionary")
                    gids.extend(hit)
            for gid in gids:
                pattern_rules.setdefault(gid, []).append(ri)

        frozen = {gid: tuple(ris) for gid, ris in pattern_rules.items()}
        locations = compiled.pattern_locations()
        per_slice_locals: List[Dict[int, Tuple[int, ...]]] = [
            {} for _ in range(compiled.num_slices)]
        for gid, ris in frozen.items():
            si, local = locations[gid]
            per_slice_locals[si][local] = ris

        pure: List[Optional[Tuple[int, ...]]] = []
        mixed: List[Optional[Dict[int, Tuple[int, ...]]]] = []
        for si in range(compiled.num_slices):
            locals_map = per_slice_locals[si]
            rule_sets = {locals_map.get(local, ())
                         for local in range(len(compiled.groups[si]))}
            if len(rule_sets) <= 1:
                pure.append(rule_sets.pop() if rule_sets else ())
                mixed.append(None)
            else:
                pure.append(None)
                mixed.append(locals_map)
        return cls(ruleset, compiled, frozen, pure, mixed)

    # -- attribution ---------------------------------------------------------------

    def _resolve_walk(self, slice_index: int, pre_state: int,
                      folded: bytes) -> Dict[int, int]:
        """Exact per-rule counts for one mixed slice: replay the folded
        payload from the flow's pre-packet state, crediting each output
        id's rules.  Runs only for match-bearing packets of mixed
        slices, so the python-speed walk stays off the fast path."""
        dfa = self.compiled.dfas[slice_index]
        locals_map = self._mixed[slice_index]
        table = dfa.transitions
        outputs = dfa.outputs
        counts: Dict[int, int] = {}
        state = pre_state
        for symbol in folded:
            state = int(table[state, symbol])
            out = outputs.get(state)
            if out:
                for local in out:
                    for ri in locals_map.get(local, ()):
                        counts[ri] = counts.get(ri, 0) + 1
        return counts

    def attribute(self, detail) -> Dict[int, int]:
        """Per-rule match counts for one packet's
        :class:`~repro.service.sessions.PacketScan`."""
        counts: Dict[int, int] = {}
        for si, delta in enumerate(detail.per_slice):
            if not delta:
                continue
            shared = self._pure[si]
            if shared is not None:
                for ri in shared:
                    counts[ri] = counts.get(ri, 0) + delta
            else:
                for ri, n in self._resolve_walk(
                        si, detail.pre_states[si],
                        detail.folded).items():
                    counts[ri] = counts.get(ri, 0) + n
        return counts

    def __repr__(self) -> str:
        return (f"CompiledRuleSet(rules={len(self.rules)}, "
                f"mode={self.mode!r}, "
                f"slices={self.compiled.num_slices}, "
                f"pure={self.pure_slices}, "
                f"fingerprint={self.fingerprint[:12]!r})")
