"""Flow sessions over a compiled dictionary.

The daemon's ``FLOW`` verb is the paper's "16 distinct input streams"
made service-shaped: each client flow is one logical byte stream, split
across packets, and a signature straddling two packets of the same flow
must still match.  :class:`SessionScanner` maps flow ids onto one
:class:`~repro.core.flows.FlowMatcher` per dictionary slice (the same
DFA state persistence the tile's state-save area provides), folds raw
payloads once, and keeps per-flow lifetime totals.

Reload semantics — *restart at generation*: each dictionary generation
owns its own ``SessionScanner``; when the registry promotes a new
generation it calls :meth:`carry_from`, which transfers the lifetime
byte/match totals of live flows but **not** their DFA states.  A flow
whose stream spans a swap resumes from the new dictionary's start state
— matches entirely inside either generation are found, a match
straddling the swap instant is not, which is exactly the guarantee a
half-tile STT replacement gives the lanes it restarts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from ..core.flows import FlowError, FlowMatcher

__all__ = ["PacketScan", "SessionScanner", "FlowError"]


@dataclass
class PacketScan:
    """One packet's scan, with per-slice detail for the policy layer.

    ``per_slice[i]`` is the match delta slice ``i``'s DFA produced for
    this packet and ``pre_states[i]`` the state that slice resumed from
    — together with ``folded`` that is everything a ruleset needs to
    attribute the delta to individual dictionary entries (the same
    slice projection the union automaton's layout uses).
    """

    new: int                      # total new matches, all slices
    flow_total: int               # lifetime matches of the flow
    per_slice: List[int] = field(default_factory=list)
    pre_states: List[int] = field(default_factory=list)
    folded: bytes = b""
    #: Flow ids the LRU policy dropped to admit this packet.
    evicted: List[Hashable] = field(default_factory=list)


class SessionScanner:
    """Per-generation flow-session table spanning every dictionary slice.

    One :class:`FlowMatcher` per slice DFA, all fed the same folded
    payloads in the same order, so their LRU tables stay in lockstep and
    an eviction drops the same flow everywhere.  Thread-safe: packets of
    different flows may arrive on different executor threads, and a
    per-scanner lock serializes them (per-flow scans must serialize
    anyway to chain DFA states).
    """

    def __init__(self, compiled, max_flows: int = 65536,
                 on_full: str = "lru") -> None:
        if max_flows < 1:
            raise FlowError("max_flows must be positive")
        self.compiled = compiled
        self.max_flows = max_flows
        self.on_full = on_full
        self._lock = threading.Lock()
        self._matchers: List[FlowMatcher] = [
            FlowMatcher(dfa, max_flows, on_full=on_full)
            for dfa in compiled.dfas]
        # Lifetime (bytes, matches) per live flow — survives reloads via
        # carry_from, pruned when the LRU policy evicts the flow.
        self._totals: Dict[Hashable, List[int]] = {}
        self._seen_evictions = 0
        # Evictions inherited from retired generations (carry_from), so
        # the operator-facing counter is cumulative across reloads.
        self._carried_evictions = 0
        # Evictions a successor already adopted — carry_from may run
        # twice on the same retiring scanner (once at promote, once
        # when its last lease drains) and must not double-count.
        self._evictions_handed_off = 0

    # -- introspection -------------------------------------------------------------

    @property
    def num_flows(self) -> int:
        with self._lock:
            return len(self._totals)

    @property
    def evictions(self) -> int:
        own = self._matchers[0].evictions if self._matchers else 0
        return own + self._carried_evictions

    def flow_ids(self) -> List[Hashable]:
        with self._lock:
            return list(self._totals)

    def stats(self) -> Dict[str, int]:
        """Operator-facing session-table counters (STATS surface)."""
        with self._lock:
            return {
                "flows": len(self._totals),
                "evictions": self.evictions,
                "max_flows": self.max_flows,
            }

    # -- scanning ------------------------------------------------------------------

    def _prune_evicted(self) -> List[Hashable]:
        """Drop totals of flows the LRU policy evicted; returns their
        ids (only walks the table when an eviction happened)."""
        evictions = self._matchers[0].evictions
        if evictions == self._seen_evictions:
            return []
        self._seen_evictions = evictions
        live = set(self._matchers[0].flow_ids())
        dead = [fid for fid in self._totals if fid not in live]
        for fid in dead:
            del self._totals[fid]
        return dead

    def scan_packet(self, flow_id: Hashable,
                    payload: bytes) -> Tuple[int, int, int]:
        """Scan one packet in its flow's context.

        Returns ``(new_matches, flow_total_matches, evicted)`` where
        ``evicted`` counts flows the LRU policy dropped to admit this
        one.
        """
        detail = self.scan_packet_detail(flow_id, payload)
        return detail.new, detail.flow_total, len(detail.evicted)

    def scan_packet_detail(self, flow_id: Hashable,
                           payload: bytes) -> PacketScan:
        """Scan one packet and keep the per-slice evidence.

        Same totals as :meth:`scan_packet` — the policy layer's verdict
        engine consumes the per-slice deltas and pre-packet states to
        attribute matches to rules without a second scan of the common
        (no-match) case.
        """
        with self._lock:
            folded = self.compiled.fold.fold_bytes(payload)
            per_slice: List[int] = []
            pre_states: List[int] = []
            for matcher in self._matchers:
                pre_states.append(matcher.peek_state(flow_id))
                per_slice.append(matcher.scan_packet(flow_id, folded))
            new = sum(per_slice)
            evicted = self._prune_evicted()
            total = self._totals.setdefault(flow_id, [0, 0])
            total[0] += len(payload)
            total[1] += new
            return PacketScan(new=new, flow_total=total[1],
                              per_slice=per_slice, pre_states=pre_states,
                              folded=folded, evicted=evicted)

    def close_flow(self, flow_id: Hashable) -> Tuple[int, int]:
        """Evict one flow; returns its lifetime ``(bytes, matches)``
        (including bytes/matches accrued under earlier generations)."""
        with self._lock:
            total = self._totals.pop(flow_id, None)
            if total is None:
                raise FlowError(f"unknown flow {flow_id!r}")
            for matcher in self._matchers:
                try:
                    matcher.close_flow(flow_id)
                except FlowError:
                    # The flow never sent a packet under this
                    # generation (registered by carry_from only).
                    pass
            return total[0], total[1]

    def total_matches(self) -> int:
        with self._lock:
            return sum(t[1] for t in self._totals.values())

    # -- reload boundary ----------------------------------------------------------

    def carry_from(self, old: "SessionScanner") -> int:
        """Adopt the live flows of a retiring generation's scanner.

        Lifetime totals *move* (the old table is emptied); DFA states
        do not transfer (restart-at-generation).  Flows are
        re-registered in this generation's matchers, in the old LRU
        order, so they stay first in line for eviction and the tables
        remain consistent.  Move semantics make the carry idempotent-
        by-delta: the registry runs it again when the retired
        generation's last lease drains, so packets scanned through a
        lease that survived the promote are merged too, not lost.
        Returns the number of flows carried.
        """
        with old._lock:
            # Old LRU order (least-recently-scanned first) so recency
            # survives the swap.
            self._carried_evictions += \
                old.evictions - old._evictions_handed_off
            old._evictions_handed_off = old.evictions
            order = old._matchers[0].flow_ids() if old._matchers else []
            totals = {fid: list(old._totals[fid]) for fid in order
                      if fid in old._totals}
            for fid, t in old._totals.items():
                if fid not in totals:
                    totals[fid] = list(t)
            old._totals.clear()
        with self._lock:
            carried = 0
            for fid, t in totals.items():
                cur = self._totals.get(fid)
                if cur is not None:
                    # The flow already scanned under this generation
                    # (promotion raced the carry): merge lifetimes.
                    cur[0] += t[0]
                    cur[1] += t[1]
                    carried += 1
                    continue
                self._totals[fid] = t
                carried += 1
                for matcher in self._matchers:
                    if fid not in matcher:
                        matcher.touch(fid)
            # Touching may itself evict (old table larger than our
            # budget); drop the victims' totals immediately.
            self._prune_evicted()
            return carried

    def __repr__(self) -> str:
        return (f"SessionScanner(flows={self.num_flows}, "
                f"slices={len(self._matchers)}, "
                f"max_flows={self.max_flows}, on_full={self.on_full!r})")
