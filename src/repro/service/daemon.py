"""The live scan daemon: asyncio TCP front end over the scan backends.

This is the paper's deployment story running end to end: a resident
compiled dictionary filters traffic from many concurrent clients while
the *next* dictionary compiles and swaps in underneath — dynamic STT
replacement (§6) serving live requests instead of a modelled schedule.

Layering:

* the event loop owns connections, framing and admission control —
  it never touches a DFA;
* scans execute on a thread pool (numpy releases the GIL in the hot
  gather loops), one-shot ``SCAN`` requests through the PR-3 backend
  registry (:func:`repro.core.backends.execute`), ``FLOW`` packets
  through the leased generation's
  :class:`~repro.service.sessions.SessionScanner`;
* reloads compile on a dedicated single thread so a large dictionary
  build can never starve the scan pool, then promote atomically via
  :class:`~repro.service.registry.DictionaryRegistry`;
* :class:`~repro.service.metrics.ServiceMetrics` observes everything
  and the ``STATS`` verb serves the snapshot;
* the ``TENANT``/``POLICY`` verbs drive a
  :class:`~repro.policy.tenants.TenantManager`: each tenant gets an
  isolated dictionary registry, ruleset generation and verdict engine,
  and ``SCAN``/``FLOW``/``CLOSE_FLOW``/``RELOAD`` route to it when the
  request names a ``tenant`` (tenant-less requests serve from the
  default registry exactly as before — the differential suite pins
  the rule-free tenant path to it bit for bit).

**Admission control**: at most ``max_pending`` scan requests are in
flight; beyond that the daemon either rejects immediately with a
``busy`` error (``admission="reject"``, the default — shed load early,
the NIDS stance) or queues the request up to ``request_timeout``
seconds (``admission="wait"``, the batch stance).  **Graceful drain**:
shutdown stops accepting, lets in-flight requests finish (bounded by
``drain_timeout``), then closes connections and releases pools.

**Cross-request batching**: with ``batch_max > 1`` the daemon coalesces
concurrently queued count-only ``SCAN`` requests into one multi-stream
scan (:meth:`~repro.core.backends.ScanContext.batch_totals` — the
cache-resident hot/cold union table when the dictionary supports one,
else the stacked fused grid) — the paper's 16-interleaved-streams trick
applied across clients instead of within one buffer.  A batch flushes when ``batch_max`` requests are queued or
``batch_wait`` seconds after the first one arrived, whichever comes
first; each request still gets its own admission slot, response header
and per-request metrics, plus batch-occupancy counters under
``STATS.metrics.batches``.

**Pool mode** (``pool_workers > 0``): the daemon becomes a gateway in
front of a fleet of scan worker *processes* — the paper's PPE/SPE
split.  The gateway keeps the network, admission and compile roles;
each worker attaches to the compiled dictionary through shared memory
(compile once, map everywhere — workers do **zero** automaton builds,
and STATS proves it per worker), owns the flow sessions that
consistent-hashing places on it, and serves scans from its own
process so the fleet scales across cores without sharing a GIL.
Stateless ``SCAN`` stripes to the idlest worker; ``FLOW`` pins to the
hash owner; ``RELOAD`` fans a generation swap out to every worker,
which leases the new tables before the gateway retires the old
segment; ``STATS`` merges per-worker histograms bucket-wise.  The
in-process batcher is disabled — parallelism comes from the fleet.
"""

from __future__ import annotations

import asyncio
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Sequence, Tuple

from ..core.backends import BackendError, ScanRequest, execute, get_backend
from ..core.compiled import CompileError
from ..core.flows import FlowError
from ..core.scan.bundle import bundle_from_compiled
from ..policy.rules import PolicyError, RuleSet
from ..policy.tenants import Tenant, TenantError, TenantManager
from .metrics import ServiceMetrics
from .pool import WorkerCrashError, WorkerOpError, WorkerPool
from .protocol import (MAX_FRAME_BYTES, RELOAD_STRATEGY, Frame,
                       ProtocolError, decode_patterns, encode_frame,
                       split_body)
from .registry import DictionaryRegistry, RegistryError

__all__ = ["ServiceConfig", "ScanService", "ServiceThread"]

_LEN_PREFIX = struct.Struct(">I")


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = let the OS pick
    #: Default backend for SCAN (``None`` = execution planner).
    backend: Optional[str] = None
    #: Worker processes for the pooled/streaming backends.
    workers: int = 1
    #: Admission control: concurrent scan requests in flight.
    max_pending: int = 64
    #: ``"reject"`` sheds load immediately; ``"wait"`` queues up to
    #: ``request_timeout`` seconds.
    admission: str = "reject"
    request_timeout: float = 5.0
    #: Grace period for in-flight requests at shutdown.
    drain_timeout: float = 10.0
    #: Threads executing scans (numpy releases the GIL in the hot loop).
    scan_threads: int = 4
    #: Flow-session table bound and eviction policy per generation.
    max_flows: int = 65536
    session_policy: str = "lru"
    #: Cap on match events returned per SCAN response.
    max_events: int = 1000
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Cross-request micro-batching: coalesce up to this many
    #: concurrently queued count-only SCANs into one fused
    #: ``run_streams`` call (1 = disabled).
    batch_max: int = 1
    #: Seconds a partial batch waits for company before flushing.
    batch_wait: float = 0.002
    #: Worker processes behind the gateway (0 = serve in-process).
    #: Pool mode compiles dictionaries once in the gateway and attaches
    #: every worker to the same shared-memory tables; flows stay
    #: worker-local by consistent hash of ``(tenant, flow_id)``.
    pool_workers: int = 0

    def validate(self) -> None:
        if self.admission not in ("reject", "wait"):
            raise ValueError(
                f"admission must be 'reject' or 'wait', got "
                f"{self.admission!r}")
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        if self.scan_threads < 1:
            raise ValueError("scan_threads must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.batch_max < 1:
            raise ValueError("batch_max must be positive")
        if self.batch_wait < 0:
            raise ValueError("batch_wait must be non-negative")
        if self.pool_workers < 0:
            raise ValueError("pool_workers must be >= 0")


class _ScanBatcher:
    """Coalesce concurrently queued SCAN payloads into one fused
    multi-stream scan.

    All state lives on the event loop (no locks): ``submit`` appends the
    payload and either flushes a full batch immediately or arms a
    ``batch_wait`` timer on the first member.  A flush takes one
    registry lease and runs the whole batch as interleaved lanes of a
    single multi-stream scan on the scan pool —
    :meth:`ScanContext.batch_totals` routes it through the
    cache-resident hot/cold union table when the dictionary supports
    one, else the stacked fused grid; the counts are bit-identical to
    scanning each payload alone either way.
    """

    def __init__(self, service: "ScanService") -> None:
        self._service = service
        self._max = service.config.batch_max
        self._wait = service.config.batch_wait
        self._items: list = []          # (payload, future) pairs
        self._timer: Optional[asyncio.TimerHandle] = None

    def submit(self, payload: bytes) -> "asyncio.Future":
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._items.append((payload, future))
        if len(self._items) >= self._max:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self._wait, self.flush)
        return future

    def flush(self) -> None:
        """Launch the queued batch now (idempotent when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        items, self._items = self._items, []
        if items:
            asyncio.get_running_loop().create_task(self._run(items))

    @staticmethod
    def _scan(ctx, payloads):
        totals = ctx.batch_totals(payloads)
        return totals, ctx.last_batch_scan_stats

    async def _run(self, items) -> None:
        service = self._service
        payloads = [payload for payload, _ in items]
        loop = asyncio.get_running_loop()
        try:
            with service.registry.lease() as gen:
                t0 = time.perf_counter()
                totals, scan_stats = await loop.run_in_executor(
                    service._scan_pool,
                    partial(self._scan, gen.ctx, payloads))
                seconds = time.perf_counter() - t0
                service.metrics.record_batch(len(items))
                if scan_stats:
                    service.metrics.record_scanner_stats(gen.gen_id,
                                                         scan_stats)
                for (_, future), matches in zip(items, totals):
                    if not future.done():
                        future.set_result({
                            "generation": gen.gen_id,
                            "matches": int(matches),
                            "seconds": seconds,
                            "batch_size": len(items),
                        })
        except Exception as exc:
            for _, future in items:
                if not future.done():
                    future.set_exception(exc)


class ScanService:
    """One daemon: a registry of dictionary generations behind a
    length-prefixed TCP protocol.  Construct, :meth:`start` on an event
    loop (or wrap in :class:`ServiceThread`), connect with
    :class:`~repro.service.client.ServiceClient`."""

    def __init__(self, patterns: Sequence, *,
                 config: Optional[ServiceConfig] = None,
                 fold=None, regex: bool = False, cache=None,
                 max_states: int = 1 << 30,
                 tenants: Optional[Dict[str, Dict]] = None) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        if self.config.backend is not None:
            get_backend(self.config.backend)   # fail fast on typos
        self.registry = DictionaryRegistry(
            patterns, fold=fold, regex=regex, max_states=max_states,
            cache=cache, max_flows=self.config.max_flows,
            session_policy=self.config.session_policy)
        # Tenant-scoped dictionaries + policies; the default registry
        # above keeps serving tenant-less requests unchanged.
        self.tenants = TenantManager(
            cache=cache, max_flows=self.config.max_flows,
            session_policy=self.config.session_policy,
            max_states=max_states)
        for name, spec in (tenants or {}).items():
            rules = spec.get("rules")
            if rules is not None and not isinstance(rules, RuleSet):
                rules = RuleSet.from_specs(
                    rules, mode=spec.get("mode", "first-match"))
            self.tenants.create(
                name, spec["patterns"], rules=rules,
                regex=bool(spec.get("regex", False)))
        self.metrics = ServiceMetrics()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._scan_pool: Optional[ThreadPoolExecutor] = None
        self._reload_pool: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()
        self._pending = 0
        self._draining = False
        self._cond: Optional[asyncio.Condition] = None
        self._stopped: Optional[asyncio.Event] = None
        self._batcher: Optional[_ScanBatcher] = None
        self._pool: Optional[WorkerPool] = None
        self._verbs = {
            "PING": self._verb_ping,
            "SCAN": self._verb_scan,
            "FLOW": self._verb_flow,
            "CLOSE_FLOW": self._verb_close_flow,
            "RELOAD": self._verb_reload,
            "TENANT": self._verb_tenant,
            "POLICY": self._verb_policy,
            "STATS": self._verb_stats,
            "SHUTDOWN": self._verb_shutdown,
        }

    def _tenant_of(self, frame: Frame) -> Optional[Tenant]:
        """Resolve the optional ``tenant`` header field (None = the
        default, tenant-less registry)."""
        name = frame.header.get("tenant")
        if name is None:
            return None
        return self.tenants.get(str(name))

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving; returns once the socket is listening
        (``self.port`` then holds the real port, even for port 0)."""
        self._cond = asyncio.Condition()
        self._stopped = asyncio.Event()
        if self.config.pool_workers > 0:
            # Fork the fleet before anything else: a forked child must
            # not inherit executor threads or the listening socket.
            # The batcher stays off — in pool mode concurrent requests
            # parallelize across worker processes instead.
            self._pool = WorkerPool(self)
            await self._pool.start()
        elif self.config.batch_max > 1:
            self._batcher = _ScanBatcher(self)
        self._scan_pool = ThreadPoolExecutor(
            max_workers=self.config.scan_threads,
            thread_name_prefix="repro-scan")
        self._reload_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-reload")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def serve(self) -> None:
        """Start and run until :meth:`shutdown` (the CLI entry point)."""
        await self.start()
        await self.wait_stopped()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests
        (bounded by ``drain_timeout``), release every resource."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            self._batcher.flush()   # don't leave admitted scans queued
        try:
            await asyncio.wait_for(self._wait_drained(),
                                   timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._connections):
            writer.close()
        if self._pool is not None:
            await self._pool.stop()
        self._scan_pool.shutdown(wait=True)
        self._reload_pool.shutdown(wait=True)
        self.registry.close()
        self.tenants.close()
        self._stopped.set()

    async def _wait_drained(self) -> None:
        async with self._cond:
            await self._cond.wait_for(lambda: self._pending == 0)

    # -- connection handling -------------------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> Optional[Frame]:
        try:
            prefix = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        frame_len = _LEN_PREFIX.unpack(prefix)[0]
        if frame_len > self.config.max_frame_bytes:
            raise ProtocolError(
                f"frame of {frame_len} bytes exceeds the "
                f"{self.config.max_frame_bytes}-byte limit")
        body = await reader.readexactly(frame_len)
        # Zero-copy ingestion: the payload stays a memoryview over the
        # receive buffer; every scan path consumes buffers directly and
        # the view keeps the body alive for exactly one request.
        return split_body(body, zero_copy=True)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await self._read_frame(reader)
                except ProtocolError as exc:
                    self.metrics.record_error()
                    writer.write(encode_frame(
                        {"ok": False, "code": "protocol",
                         "error": str(exc)}))
                    await writer.drain()
                    break
                if frame is None:
                    break
                header, payload = await self._dispatch(frame)
                shutdown_after = header.pop("_shutdown", False)
                writer.write(encode_frame(header, payload))
                await writer.drain()
                if shutdown_after:
                    asyncio.create_task(self.shutdown())
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # -- dispatch ------------------------------------------------------------------

    @staticmethod
    def _error(rid, code: str, message: str) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": False, "code": code,
                 "error": message}, b"")

    async def _dispatch(self, frame: Frame) -> Tuple[Dict, bytes]:
        rid = frame.header.get("id")
        verb = frame.verb
        handler = self._verbs.get(verb)
        if handler is None:
            self.metrics.record_error()
            return self._error(rid, "bad-verb",
                               f"unknown verb {verb!r}")
        self.metrics.record_request(verb)
        try:
            return await handler(rid, frame)
        except (BackendError, ProtocolError, RegistryError,
                CompileError, PolicyError, TenantError,
                ValueError) as exc:
            self.metrics.record_error()
            return self._error(rid, "bad-request", str(exc))
        except FlowError as exc:
            self.metrics.record_error()
            return self._error(rid, "flow-error", str(exc))
        except WorkerOpError as exc:
            # A pool worker already classified the failure; echo its
            # code so clients see the same taxonomy either mode.
            self.metrics.record_error()
            return self._error(rid, exc.code, str(exc))
        except WorkerCrashError as exc:
            # Accounted loss, never silent: the rejection counter
            # carries it and the client gets a retryable error — the
            # replacement worker (or a ring neighbour) takes the retry.
            self.metrics.record_error()
            self.metrics.record_rejected()
            return self._error(rid, "worker-crash", str(exc))
        except Exception as exc:  # keep the daemon up, report the verb
            self.metrics.record_error()
            return self._error(rid, "internal",
                               f"{type(exc).__name__}: {exc}")

    # -- admission control ---------------------------------------------------------

    async def _admit(self, rid) -> Optional[Tuple[Dict, bytes]]:
        """Take one scan slot; returns an error response when the
        request cannot be admitted."""
        if self._draining:
            return self._error(rid, "draining", "service is shutting "
                               "down")
        if self._pending >= self.config.max_pending:
            if self.config.admission == "reject":
                self.metrics.record_rejected()
                return self._error(
                    rid, "busy",
                    f"queue full ({self.config.max_pending} in flight); "
                    f"retry")
            try:
                await asyncio.wait_for(
                    self._wait_for_slot(),
                    timeout=self.config.request_timeout)
            except asyncio.TimeoutError:
                self.metrics.record_timeout()
                return self._error(
                    rid, "timeout",
                    f"no scan slot within "
                    f"{self.config.request_timeout:.3g}s")
            if self._draining:
                return self._error(rid, "draining",
                                   "service is shutting down")
        self._pending += 1
        self.metrics.set_queue_depth(self._pending)
        return None

    async def _wait_for_slot(self) -> None:
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._pending < self.config.max_pending)

    async def _release_slot(self) -> None:
        self._pending -= 1
        self.metrics.set_queue_depth(self._pending)
        async with self._cond:
            self._cond.notify_all()

    # -- pool routing ---------------------------------------------------------------

    async def _admit_pool(self, rid, handle
                          ) -> Optional[Tuple[Dict, bytes]]:
        """Per-worker admission: pool mode splits ``max_pending``
        evenly across workers, so backpressure tracks the worker that
        actually owns the request's hash span instead of one global
        counter — a hot span rejects while the rest of the fleet keeps
        absorbing load."""
        if self._draining:
            return self._error(rid, "draining",
                               "service is shutting down")
        if not self._pool.has_slot(handle):
            if self.config.admission == "reject":
                self.metrics.record_rejected()
                return self._error(
                    rid, "busy",
                    f"worker {handle.index} queue full "
                    f"({self._pool.per_worker_cap} in flight); retry")
            try:
                await asyncio.wait_for(
                    self._pool.wait_for_slot(handle),
                    timeout=self.config.request_timeout)
            except asyncio.TimeoutError:
                self.metrics.record_timeout()
                return self._error(
                    rid, "timeout",
                    f"no slot on worker {handle.index} within "
                    f"{self.config.request_timeout:.3g}s")
            if self._draining:
                return self._error(rid, "draining",
                                   "service is shutting down")
        self._pending += 1
        self.metrics.set_queue_depth(self._pending)
        return None

    async def _pool_call(self, handle, kind: str, meta: Dict,
                         payload=b"") -> Dict:
        # The pipe transport pickles; a zero-copy memoryview payload
        # materializes exactly once, here at the process boundary.
        data = bytes(payload) if payload else b""
        return await handle.call(kind, meta, data)

    async def _scan_pooled(self, rid, frame: Frame,
                           tenant: Optional[Tenant], backend,
                           with_events: bool,
                           workers: int) -> Tuple[Dict, bytes]:
        """Stateless SCAN stripes to the idlest live worker."""
        handle = self._pool.least_loaded()
        admission = await self._admit_pool(rid, handle)
        if admission is not None:
            return admission
        try:
            meta: Dict[str, object] = {"backend": backend,
                                       "workers": workers,
                                       "events": with_events}
            if tenant is not None:
                meta["tenant"] = tenant.name
            result = await self._pool_call(handle, "scan", meta,
                                           frame.payload)
            return dict(result, id=rid, ok=True), b""
        finally:
            await self._release_slot()

    async def _flow_pooled(self, rid, frame: Frame,
                           tenant: Optional[Tenant],
                           flow_id) -> Tuple[Dict, bytes]:
        """FLOW pins to the consistent-hash owner of
        ``(tenant, flow_id)`` so the session's DFA state never leaves
        its worker."""
        handle = self._pool.place(
            tenant.name if tenant is not None else "", flow_id)
        admission = await self._admit_pool(rid, handle)
        if admission is not None:
            return admission
        try:
            meta: Dict[str, object] = {"flow": flow_id}
            if tenant is not None:
                meta["tenant"] = tenant.name
            result = await self._pool_call(handle, "flow", meta,
                                           frame.payload)
            return dict(result, id=rid, ok=True), b""
        finally:
            await self._release_slot()

    # -- verbs ---------------------------------------------------------------------

    async def _verb_ping(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": True,
                 "generation": self.registry.generation}, b"")

    async def _verb_scan(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        tenant = self._tenant_of(frame)
        backend = frame.header.get("backend") or self.config.backend
        with_events = bool(frame.header.get("events"))
        workers = int(frame.header.get("workers")
                      or self.config.workers)
        if self._pool is not None:
            return await self._scan_pooled(rid, frame, tenant, backend,
                                           with_events, workers)
        if (tenant is None and self._batcher is not None
                and not with_events and workers == 1
                and backend in (None, "auto", "fused")):
            return await self._scan_batched(rid, frame)
        admission = await self._admit(rid)
        if admission is not None:
            return admission
        try:
            request = ScanRequest(data=frame.payload, workers=workers,
                                  with_events=with_events)
            loop = asyncio.get_running_loop()
            registry = tenant.registry if tenant is not None \
                else self.registry
            with registry.lease() as gen:
                outcome = await loop.run_in_executor(
                    self._scan_pool,
                    partial(execute, gen.ctx, request, backend))
                self.metrics.record_scan(
                    outcome.backend, outcome.seconds,
                    outcome.bytes_scanned, outcome.total_matches)
                header: Dict[str, object] = {
                    "id": rid, "ok": True,
                    "generation": gen.gen_id,
                    "matches": outcome.total_matches,
                    "bytes": outcome.bytes_scanned,
                    "backend": outcome.backend,
                    "workers": outcome.workers,
                    "seconds": outcome.seconds,
                }
                if tenant is not None:
                    self.metrics.record_tenant_request(
                        tenant.name, outcome.bytes_scanned,
                        outcome.total_matches)
                    header["tenant"] = tenant.name
                if with_events and outcome.events is not None:
                    cap = self.config.max_events
                    header["events"] = [[e.end, e.pattern]
                                        for e in outcome.events[:cap]]
                    if len(outcome.events) > cap:
                        header["events_truncated"] = \
                            len(outcome.events) - cap
                return header, b""
        finally:
            await self._release_slot()

    async def _scan_batched(self, rid,
                            frame: Frame) -> Tuple[Dict, bytes]:
        """Count-only SCAN via the cross-request batcher: the request
        holds its admission slot while queued, so concurrent clients
        inside the wait window ride the same fused pass."""
        admission = await self._admit(rid)
        if admission is not None:
            return admission
        try:
            result = await self._batcher.submit(frame.payload)
            self.metrics.record_scan(
                "batch", result["seconds"], len(frame.payload),
                result["matches"])
            return ({"id": rid, "ok": True,
                     "generation": result["generation"],
                     "matches": result["matches"],
                     "bytes": len(frame.payload),
                     "backend": "batch",
                     "workers": 1,
                     "seconds": result["seconds"],
                     "batch_size": result["batch_size"]}, b"")
        finally:
            await self._release_slot()

    async def _verb_flow(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        flow_id = frame.header.get("flow")
        if flow_id is None:
            return self._error(rid, "bad-request",
                               "FLOW needs a 'flow' id")
        tenant = self._tenant_of(frame)
        if self._pool is not None:
            return await self._flow_pooled(rid, frame, tenant, flow_id)
        admission = await self._admit(rid)
        if admission is not None:
            return admission
        try:
            loop = asyncio.get_running_loop()
            if tenant is not None:
                return await self._flow_tenant(rid, tenant, flow_id,
                                               frame.payload, loop)
            with self.registry.lease() as gen:
                t0 = time.perf_counter()
                new, total, evicted = await loop.run_in_executor(
                    self._scan_pool, gen.sessions.scan_packet,
                    flow_id, frame.payload)
                seconds = time.perf_counter() - t0
                self.metrics.record_scan("flow", seconds,
                                         len(frame.payload), new)
                self.metrics.record_flow_evictions(evicted)
                return ({"id": rid, "ok": True,
                         "generation": gen.gen_id,
                         "flow": flow_id,
                         "matches": new,
                         "flow_total": total,
                         "bytes": len(frame.payload),
                         "seconds": seconds}, b"")
        finally:
            await self._release_slot()

    async def _flow_tenant(self, rid, tenant: Tenant, flow_id,
                           payload: bytes, loop) -> Tuple[Dict, bytes]:
        """Tenant-scoped FLOW: session scan + verdict on the tenant's
        dictionary and policy (the admission slot is already held)."""
        t0 = time.perf_counter()
        verdict, gen_id, evicted = await loop.run_in_executor(
            self._scan_pool, tenant.scan_packet, flow_id, payload)
        seconds = time.perf_counter() - t0
        self.metrics.record_scan("flow", seconds, len(payload),
                                 verdict.new_matches)
        self.metrics.record_tenant_request(tenant.name, len(payload),
                                           verdict.new_matches)
        self.metrics.record_verdict(tenant.name, verdict.action,
                                    verdict.seconds)
        self.metrics.record_flow_evictions(evicted)
        header: Dict[str, object] = {
            "id": rid, "ok": True,
            "generation": gen_id,
            "tenant": tenant.name,
            "flow": flow_id,
            "matches": verdict.new_matches,
            "flow_total": verdict.flow_total,
            "bytes": len(payload),
            "seconds": seconds,
            "action": verdict.action,
        }
        if verdict.rule is not None:
            header["rule"] = verdict.rule
        if verdict.triggered:
            header["triggered"] = list(verdict.triggered)
        return header, b""

    async def _verb_close_flow(self, rid,
                               frame: Frame) -> Tuple[Dict, bytes]:
        flow_id = frame.header.get("flow")
        if flow_id is None:
            return self._error(rid, "bad-request",
                               "CLOSE_FLOW needs a 'flow' id")
        tenant = self._tenant_of(frame)
        if self._pool is not None:
            handle = self._pool.place(
                tenant.name if tenant is not None else "", flow_id)
            meta: Dict[str, object] = {"flow": flow_id}
            if tenant is not None:
                meta["tenant"] = tenant.name
            result = await self._pool_call(handle, "close_flow", meta)
            return dict(result, id=rid, ok=True), b""
        if tenant is not None:
            nbytes, matches, action = tenant.close_flow(flow_id)
            header = {"id": rid, "ok": True,
                      "generation": tenant.registry.generation,
                      "tenant": tenant.name,
                      "flow": flow_id,
                      "bytes_seen": nbytes,
                      "matches": matches}
            if action is not None:
                header["action"] = action
            return header, b""
        with self.registry.lease() as gen:
            nbytes, matches = gen.sessions.close_flow(flow_id)
            return ({"id": rid, "ok": True,
                     "generation": gen.gen_id,
                     "flow": flow_id,
                     "bytes_seen": nbytes,
                     "matches": matches}, b"")

    async def _verb_reload(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        patterns = decode_patterns(frame.payload)
        regex = bool(frame.header.get("regex"))
        tenant = self._tenant_of(frame)
        loop = asyncio.get_running_loop()
        pooled = self._pool is not None

        def _compile():
            # Compile, promote and (in pool mode) export the new
            # generation's shared segment inside one task on the
            # single-threaded reload executor, so a concurrent RELOAD
            # cannot promote a different generation between the
            # compile and the export.
            if tenant is not None:
                result = tenant.load_dictionary(patterns, regex=regex)
                active = tenant.registry.active.compiled
            else:
                result = self.registry.load(patterns, regex=regex)
                active = self.registry.active.compiled
            bundle = bundle_from_compiled(active) if pooled else None
            return result, bundle

        result, bundle = await loop.run_in_executor(self._reload_pool,
                                                    _compile)
        flows_carried = result.flows_carried
        if pooled:
            # Fan the swap out: every worker attaches + promotes
            # before acking; the gateway retires the old segment only
            # after the last ack.  Flow sessions live in the workers,
            # so the carried-flow count is theirs.
            flows_carried = await self._pool.swap(
                tenant.name if tenant is not None else "",
                bundle, result.generation)
        self.metrics.record_reload(result.seconds, result.warm)
        header = {"id": rid, "ok": True,
                  "generation": result.generation,
                  "seconds": result.seconds,
                  "warm": result.warm,
                  "patterns": result.patterns,
                  "slices": result.slices,
                  "states": result.states,
                  "flows_carried": flows_carried}
        if tenant is not None:
            header["tenant"] = tenant.name
        return header, b""

    async def _verb_tenant(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        op = str(frame.header.get("op", "list"))
        if op == "list":
            return ({"id": rid, "ok": True,
                     "tenants": self.tenants.names()}, b"")
        name = frame.header.get("name")
        if not name:
            return self._error(rid, "bad-request",
                               f"TENANT {op} needs a 'name'")
        name = str(name)
        if op == "create":
            patterns = decode_patterns(frame.payload)
            rules = None
            if frame.header.get("rules"):
                rules = RuleSet.from_specs(
                    frame.header["rules"],
                    mode=str(frame.header.get("mode", "first-match")))
            loop = asyncio.get_running_loop()
            pooled = self._pool is not None

            def _create():
                tenant = self.tenants.create(
                    name, patterns, rules=rules,
                    regex=bool(frame.header.get("regex")))
                bundle = bundle_from_compiled(
                    tenant.registry.active.compiled) if pooled else None
                return tenant, bundle

            tenant, bundle = await loop.run_in_executor(
                self._reload_pool, _create)
            if pooled:
                await self._pool.tenant_create(
                    name, bundle, tenant.registry.generation,
                    tenant.ruleset.to_specs(), tenant.ruleset.mode)
            return ({"id": rid, "ok": True, "tenant": name,
                     "generation": tenant.registry.generation,
                     "policy_generation": tenant.policy_generation,
                     "rules": len(tenant.ruleset.rules),
                     "patterns": len(patterns)}, b"")
        if op == "delete":
            self.tenants.drop(name)
            self.metrics.forget_tenant(name)
            if self._pool is not None:
                await self._pool.tenant_delete(name)
            return ({"id": rid, "ok": True, "tenant": name,
                     "deleted": True}, b"")
        if op == "info":
            tenant = self.tenants.get(name)
            return ({"id": rid, "ok": True, "tenant": name,
                     "info": tenant.describe()}, b"")
        return self._error(rid, "bad-request",
                           f"unknown TENANT op {op!r} (create/delete/"
                           f"list/info)")

    async def _verb_policy(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        name = frame.header.get("tenant")
        if not name:
            return self._error(rid, "bad-request",
                               "POLICY needs a 'tenant'")
        tenant = self.tenants.get(str(name))
        op = str(frame.header.get("op", "get"))
        if op == "get":
            return ({"id": rid, "ok": True, "tenant": tenant.name,
                     "policy_generation": tenant.policy_generation,
                     "mode": tenant.ruleset.mode,
                     "rules": tenant.ruleset.to_specs()}, b"")
        if op == "set":
            rules = RuleSet.from_specs(
                frame.header.get("rules", []),
                mode=str(frame.header.get("mode", "first-match")))
            generation = tenant.set_rules(rules)
            if self._pool is not None:
                # The gateway validated the swap; replicate the
                # canonical specs so every worker's verdict engine
                # promotes the same policy generation.
                await self._pool.broadcast(
                    "policy_set", {"tenant": tenant.name,
                                   "rules": rules.to_specs(),
                                   "mode": rules.mode})
            return ({"id": rid, "ok": True, "tenant": tenant.name,
                     "policy_generation": generation,
                     "rules": len(rules)}, b"")
        return self._error(rid, "bad-request",
                           f"unknown POLICY op {op!r} (set/get)")

    async def _verb_stats(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        header: Dict[str, object] = {
            "id": rid, "ok": True,
            "generation": self.registry.generation,
            "registry": self.registry.describe(),
            "tenants": self.tenants.describe(),
            "reload_strategy": RELOAD_STRATEGY,
            "config": {
                "backend": self.config.backend or "auto",
                "workers": self.config.workers,
                "max_pending": self.config.max_pending,
                "admission": self.config.admission,
                "max_flows": self.config.max_flows,
                "session_policy": self.config.session_policy,
                "batch_max": self.config.batch_max,
                "batch_wait": self.config.batch_wait,
                "pool_workers": self.config.pool_workers,
            }}
        if self._pool is not None:
            # Pool-wide view: worker histograms merge bucket-wise with
            # the gateway's own counters, so p50/p95/p99 are computed
            # over the union of samples, not averaged per worker.
            acks = await self._pool.broadcast("stats")
            header["metrics"] = ServiceMetrics.merged_snapshot(
                [self.metrics.state()]
                + [ack["metrics"] for _, ack in acks])
            header["pool"] = self._pool.describe(acks)
        else:
            header["metrics"] = self.metrics.snapshot()
        return header, b""

    async def _verb_shutdown(self, rid,
                             frame: Frame) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": True, "draining": True,
                 "generation": self.registry.generation,
                 "_shutdown": True}, b"")


class ServiceThread:
    """Run a :class:`ScanService` on a dedicated event-loop thread.

    This is how synchronous callers (tests, ``repro bench-load``, the
    load generator) host a daemon in-process::

        with ServiceThread(ScanService(["virus"])) as handle:
            client = ServiceClient(handle.host, handle.port)
            ...

    ``stop()`` performs the daemon's graceful drain.
    """

    def __init__(self, service: ScanService) -> None:
        self.service = service
        self._thread = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = None
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def start(self) -> "ServiceThread":
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service.port is None:
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.service.wait_stopped())
        finally:
            self._loop.close()

    def stop(self) -> None:
        """Graceful drain from any thread (idempotent)."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive() and not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self._loop)
            try:
                future.result(timeout=30)
            except Exception:
                pass
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
