"""The live scan daemon: asyncio TCP front end over the scan backends.

This is the paper's deployment story running end to end: a resident
compiled dictionary filters traffic from many concurrent clients while
the *next* dictionary compiles and swaps in underneath — dynamic STT
replacement (§6) serving live requests instead of a modelled schedule.

Layering:

* the event loop owns connections, framing and admission control —
  it never touches a DFA;
* scans execute on a thread pool (numpy releases the GIL in the hot
  gather loops), one-shot ``SCAN`` requests through the PR-3 backend
  registry (:func:`repro.core.backends.execute`), ``FLOW`` packets
  through the leased generation's
  :class:`~repro.service.sessions.SessionScanner`;
* reloads compile on a dedicated single thread so a large dictionary
  build can never starve the scan pool, then promote atomically via
  :class:`~repro.service.registry.DictionaryRegistry`;
* :class:`~repro.service.metrics.ServiceMetrics` observes everything
  and the ``STATS`` verb serves the snapshot.

**Admission control**: at most ``max_pending`` scan requests are in
flight; beyond that the daemon either rejects immediately with a
``busy`` error (``admission="reject"``, the default — shed load early,
the NIDS stance) or queues the request up to ``request_timeout``
seconds (``admission="wait"``, the batch stance).  **Graceful drain**:
shutdown stops accepting, lets in-flight requests finish (bounded by
``drain_timeout``), then closes connections and releases pools.
"""

from __future__ import annotations

import asyncio
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Sequence, Tuple

from ..core.backends import BackendError, ScanRequest, execute, get_backend
from ..core.compiled import CompileError
from ..core.flows import FlowError
from .metrics import ServiceMetrics
from .protocol import (MAX_FRAME_BYTES, RELOAD_STRATEGY, Frame,
                       ProtocolError, decode_patterns, encode_frame,
                       split_body)
from .registry import DictionaryRegistry, RegistryError

__all__ = ["ServiceConfig", "ScanService", "ServiceThread"]

_LEN_PREFIX = struct.Struct(">I")


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = let the OS pick
    #: Default backend for SCAN (``None`` = execution planner).
    backend: Optional[str] = None
    #: Worker processes for the pooled/streaming backends.
    workers: int = 1
    #: Admission control: concurrent scan requests in flight.
    max_pending: int = 64
    #: ``"reject"`` sheds load immediately; ``"wait"`` queues up to
    #: ``request_timeout`` seconds.
    admission: str = "reject"
    request_timeout: float = 5.0
    #: Grace period for in-flight requests at shutdown.
    drain_timeout: float = 10.0
    #: Threads executing scans (numpy releases the GIL in the hot loop).
    scan_threads: int = 4
    #: Flow-session table bound and eviction policy per generation.
    max_flows: int = 65536
    session_policy: str = "lru"
    #: Cap on match events returned per SCAN response.
    max_events: int = 1000
    max_frame_bytes: int = MAX_FRAME_BYTES

    def validate(self) -> None:
        if self.admission not in ("reject", "wait"):
            raise ValueError(
                f"admission must be 'reject' or 'wait', got "
                f"{self.admission!r}")
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        if self.scan_threads < 1:
            raise ValueError("scan_threads must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")


class ScanService:
    """One daemon: a registry of dictionary generations behind a
    length-prefixed TCP protocol.  Construct, :meth:`start` on an event
    loop (or wrap in :class:`ServiceThread`), connect with
    :class:`~repro.service.client.ServiceClient`."""

    def __init__(self, patterns: Sequence, *,
                 config: Optional[ServiceConfig] = None,
                 fold=None, regex: bool = False, cache=None,
                 max_states: int = 1 << 30) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        if self.config.backend is not None:
            get_backend(self.config.backend)   # fail fast on typos
        self.registry = DictionaryRegistry(
            patterns, fold=fold, regex=regex, max_states=max_states,
            cache=cache, max_flows=self.config.max_flows,
            session_policy=self.config.session_policy)
        self.metrics = ServiceMetrics()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._scan_pool: Optional[ThreadPoolExecutor] = None
        self._reload_pool: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()
        self._pending = 0
        self._draining = False
        self._cond: Optional[asyncio.Condition] = None
        self._stopped: Optional[asyncio.Event] = None
        self._verbs = {
            "PING": self._verb_ping,
            "SCAN": self._verb_scan,
            "FLOW": self._verb_flow,
            "CLOSE_FLOW": self._verb_close_flow,
            "RELOAD": self._verb_reload,
            "STATS": self._verb_stats,
            "SHUTDOWN": self._verb_shutdown,
        }

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving; returns once the socket is listening
        (``self.port`` then holds the real port, even for port 0)."""
        self._cond = asyncio.Condition()
        self._stopped = asyncio.Event()
        self._scan_pool = ThreadPoolExecutor(
            max_workers=self.config.scan_threads,
            thread_name_prefix="repro-scan")
        self._reload_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-reload")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def serve(self) -> None:
        """Start and run until :meth:`shutdown` (the CLI entry point)."""
        await self.start()
        await self.wait_stopped()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests
        (bounded by ``drain_timeout``), release every resource."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._wait_drained(),
                                   timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._connections):
            writer.close()
        self._scan_pool.shutdown(wait=True)
        self._reload_pool.shutdown(wait=True)
        self.registry.close()
        self._stopped.set()

    async def _wait_drained(self) -> None:
        async with self._cond:
            await self._cond.wait_for(lambda: self._pending == 0)

    # -- connection handling -------------------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> Optional[Frame]:
        try:
            prefix = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        frame_len = _LEN_PREFIX.unpack(prefix)[0]
        if frame_len > self.config.max_frame_bytes:
            raise ProtocolError(
                f"frame of {frame_len} bytes exceeds the "
                f"{self.config.max_frame_bytes}-byte limit")
        body = await reader.readexactly(frame_len)
        return split_body(body)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await self._read_frame(reader)
                except ProtocolError as exc:
                    self.metrics.record_error()
                    writer.write(encode_frame(
                        {"ok": False, "code": "protocol",
                         "error": str(exc)}))
                    await writer.drain()
                    break
                if frame is None:
                    break
                header, payload = await self._dispatch(frame)
                shutdown_after = header.pop("_shutdown", False)
                writer.write(encode_frame(header, payload))
                await writer.drain()
                if shutdown_after:
                    asyncio.create_task(self.shutdown())
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # -- dispatch ------------------------------------------------------------------

    @staticmethod
    def _error(rid, code: str, message: str) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": False, "code": code,
                 "error": message}, b"")

    async def _dispatch(self, frame: Frame) -> Tuple[Dict, bytes]:
        rid = frame.header.get("id")
        verb = frame.verb
        handler = self._verbs.get(verb)
        if handler is None:
            self.metrics.record_error()
            return self._error(rid, "bad-verb",
                               f"unknown verb {verb!r}")
        self.metrics.record_request(verb)
        try:
            return await handler(rid, frame)
        except (BackendError, ProtocolError, RegistryError,
                CompileError, ValueError) as exc:
            self.metrics.record_error()
            return self._error(rid, "bad-request", str(exc))
        except FlowError as exc:
            self.metrics.record_error()
            return self._error(rid, "flow-error", str(exc))
        except Exception as exc:  # keep the daemon up, report the verb
            self.metrics.record_error()
            return self._error(rid, "internal",
                               f"{type(exc).__name__}: {exc}")

    # -- admission control ---------------------------------------------------------

    async def _admit(self, rid) -> Optional[Tuple[Dict, bytes]]:
        """Take one scan slot; returns an error response when the
        request cannot be admitted."""
        if self._draining:
            return self._error(rid, "draining", "service is shutting "
                               "down")
        if self._pending >= self.config.max_pending:
            if self.config.admission == "reject":
                self.metrics.record_rejected()
                return self._error(
                    rid, "busy",
                    f"queue full ({self.config.max_pending} in flight); "
                    f"retry")
            try:
                await asyncio.wait_for(
                    self._wait_for_slot(),
                    timeout=self.config.request_timeout)
            except asyncio.TimeoutError:
                self.metrics.record_timeout()
                return self._error(
                    rid, "timeout",
                    f"no scan slot within "
                    f"{self.config.request_timeout:.3g}s")
            if self._draining:
                return self._error(rid, "draining",
                                   "service is shutting down")
        self._pending += 1
        self.metrics.set_queue_depth(self._pending)
        return None

    async def _wait_for_slot(self) -> None:
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._pending < self.config.max_pending)

    async def _release_slot(self) -> None:
        self._pending -= 1
        self.metrics.set_queue_depth(self._pending)
        async with self._cond:
            self._cond.notify_all()

    # -- verbs ---------------------------------------------------------------------

    async def _verb_ping(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": True,
                 "generation": self.registry.generation}, b"")

    async def _verb_scan(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        admission = await self._admit(rid)
        if admission is not None:
            return admission
        try:
            backend = frame.header.get("backend") or self.config.backend
            with_events = bool(frame.header.get("events"))
            workers = int(frame.header.get("workers")
                          or self.config.workers)
            request = ScanRequest(data=frame.payload, workers=workers,
                                  with_events=with_events)
            loop = asyncio.get_running_loop()
            with self.registry.lease() as gen:
                outcome = await loop.run_in_executor(
                    self._scan_pool,
                    partial(execute, gen.ctx, request, backend))
                self.metrics.record_scan(
                    outcome.backend, outcome.seconds,
                    outcome.bytes_scanned, outcome.total_matches)
                header: Dict[str, object] = {
                    "id": rid, "ok": True,
                    "generation": gen.gen_id,
                    "matches": outcome.total_matches,
                    "bytes": outcome.bytes_scanned,
                    "backend": outcome.backend,
                    "workers": outcome.workers,
                    "seconds": outcome.seconds,
                }
                if with_events and outcome.events is not None:
                    cap = self.config.max_events
                    header["events"] = [[e.end, e.pattern]
                                        for e in outcome.events[:cap]]
                    if len(outcome.events) > cap:
                        header["events_truncated"] = \
                            len(outcome.events) - cap
                return header, b""
        finally:
            await self._release_slot()

    async def _verb_flow(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        flow_id = frame.header.get("flow")
        if flow_id is None:
            return self._error(rid, "bad-request",
                               "FLOW needs a 'flow' id")
        admission = await self._admit(rid)
        if admission is not None:
            return admission
        try:
            loop = asyncio.get_running_loop()
            with self.registry.lease() as gen:
                t0 = time.perf_counter()
                new, total, evicted = await loop.run_in_executor(
                    self._scan_pool, gen.sessions.scan_packet,
                    flow_id, frame.payload)
                seconds = time.perf_counter() - t0
                self.metrics.record_scan("flow", seconds,
                                         len(frame.payload), new)
                self.metrics.record_flow_evictions(evicted)
                return ({"id": rid, "ok": True,
                         "generation": gen.gen_id,
                         "flow": flow_id,
                         "matches": new,
                         "flow_total": total,
                         "bytes": len(frame.payload),
                         "seconds": seconds}, b"")
        finally:
            await self._release_slot()

    async def _verb_close_flow(self, rid,
                               frame: Frame) -> Tuple[Dict, bytes]:
        flow_id = frame.header.get("flow")
        if flow_id is None:
            return self._error(rid, "bad-request",
                               "CLOSE_FLOW needs a 'flow' id")
        with self.registry.lease() as gen:
            nbytes, matches = gen.sessions.close_flow(flow_id)
            return ({"id": rid, "ok": True,
                     "generation": gen.gen_id,
                     "flow": flow_id,
                     "bytes_seen": nbytes,
                     "matches": matches}, b"")

    async def _verb_reload(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        patterns = decode_patterns(frame.payload)
        regex = bool(frame.header.get("regex"))
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._reload_pool,
            partial(self.registry.load, patterns, regex=regex))
        self.metrics.record_reload(result.seconds, result.warm)
        return ({"id": rid, "ok": True,
                 "generation": result.generation,
                 "seconds": result.seconds,
                 "warm": result.warm,
                 "patterns": result.patterns,
                 "slices": result.slices,
                 "states": result.states,
                 "flows_carried": result.flows_carried}, b"")

    async def _verb_stats(self, rid, frame: Frame) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": True,
                 "generation": self.registry.generation,
                 "metrics": self.metrics.snapshot(),
                 "registry": self.registry.describe(),
                 "reload_strategy": RELOAD_STRATEGY,
                 "config": {
                     "backend": self.config.backend or "auto",
                     "workers": self.config.workers,
                     "max_pending": self.config.max_pending,
                     "admission": self.config.admission,
                     "max_flows": self.config.max_flows,
                     "session_policy": self.config.session_policy,
                 }}, b"")

    async def _verb_shutdown(self, rid,
                             frame: Frame) -> Tuple[Dict, bytes]:
        return ({"id": rid, "ok": True, "draining": True,
                 "generation": self.registry.generation,
                 "_shutdown": True}, b"")


class ServiceThread:
    """Run a :class:`ScanService` on a dedicated event-loop thread.

    This is how synchronous callers (tests, ``repro bench-load``, the
    load generator) host a daemon in-process::

        with ServiceThread(ScanService(["virus"])) as handle:
            client = ServiceClient(handle.host, handle.port)
            ...

    ``stop()`` performs the daemon's graceful drain.
    """

    def __init__(self, service: ScanService) -> None:
        self.service = service
        self._thread = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = None
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def start(self) -> "ServiceThread":
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service.port is None:
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.service.wait_stopped())
        finally:
            self._loop.close()

    def stop(self) -> None:
        """Graceful drain from any thread (idempotent)."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive() and not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self._loop)
            try:
                future.result(timeout=30)
            except Exception:
                pass
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
