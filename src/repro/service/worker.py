"""Worker-process side of the multi-process scan service.

This is the paper's SPE: the gateway (PPE) compiles the dictionary
once, places it in shared memory as a ``SharedArrayBundle``, and each
worker process *attaches* — it rebuilds a
:class:`~repro.core.compiled.CompiledDictionary` from the shared views
with **zero** automaton builds (``COUNTERS["automaton_builds"]`` is
reset at worker entry and reported over the ready handshake and STATS,
so the compile-once/map-everywhere contract is provable end to end).

A worker is deliberately single-threaded: it owns a duplex pipe to the
gateway and serves one message at a time, so a generation swap can
never race a scan *within* a worker — the cross-worker ordering is the
gateway's job (workers lease the new bundle before the gateway retires
the old one).  Flow sessions and verdict state live here, placed by
the gateway's consistent hash, which is what keeps a flow's DFA state
core-local across its lifetime.

Wire format (over ``multiprocessing.Pipe``): requests are
``(kind, seq, meta, payload)`` tuples, responses ``(seq, ok, result)``
where ``result`` is a picklable dict (an error descriptor with
``code``/``error`` when ``ok`` is false).  ``seq == -1`` is the ready
handshake.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, Optional

from ..core.backends import BackendError, ScanRequest, execute
from ..core.compiled import COUNTERS, CompileError
from ..core.flows import FlowError
from ..core.scan.bundle import SharedArrayBundle, compiled_from_bundle
from ..policy.rules import PolicyError, RuleSet
from ..policy.tenants import TenantError, TenantManager
from .metrics import ServiceMetrics
from .protocol import ProtocolError
from .registry import DictionaryRegistry, RegistryError

__all__ = ["worker_main"]


def _error_code(exc: BaseException) -> str:
    """The daemon's error taxonomy, applied worker-side so the gateway
    can echo the same codes clients already know."""
    if isinstance(exc, (BackendError, ProtocolError, RegistryError,
                        CompileError, PolicyError, TenantError,
                        ValueError)):
        return "bad-request"
    if isinstance(exc, FlowError):
        return "flow-error"
    return "internal"


class _PoolWorker:
    """One worker process's state: attached dictionary generations,
    flow sessions, tenant replicas and private metrics."""

    def __init__(self, conn, init: Dict) -> None:
        self.conn = conn
        self.config = dict(init.get("config", {}))
        self.max_events = int(self.config.get("max_events", 1000))
        # Attached segments, keyed by scope ("" = the default
        # dictionary, else the tenant name).  Exactly one live bundle
        # per scope; a reload swaps the attachment after the new
        # generation is promoted.
        self._bundles: Dict[str, SharedArrayBundle] = {}
        bundle = SharedArrayBundle.attach(init["bundle_meta"])
        self._bundles[""] = bundle
        self.registry = DictionaryRegistry(
            compiled=compiled_from_bundle(bundle),
            first_generation=int(init.get("generation", 1)),
            max_flows=int(self.config.get("max_flows", 65536)),
            session_policy=self.config.get("session_policy", "lru"))
        self.tenants = TenantManager(
            max_flows=int(self.config.get("max_flows", 65536)),
            session_policy=self.config.get("session_policy", "lru"))
        for spec in init.get("tenants", []):
            self._attach_tenant(spec)
        self.metrics = ServiceMetrics()
        self._ops = {
            "ping": self._op_ping,
            "scan": self._op_scan,
            "flow": self._op_flow,
            "close_flow": self._op_close_flow,
            "reload": self._op_reload,
            "tenant_create": self._op_tenant_create,
            "tenant_delete": self._op_tenant_delete,
            "policy_set": self._op_policy_set,
            "stats": self._op_stats,
        }

    def _attach_tenant(self, spec: Dict):
        bundle = SharedArrayBundle.attach(spec["bundle_meta"])
        rules = None
        if spec.get("rules"):
            rules = RuleSet.from_specs(
                spec["rules"], mode=spec.get("mode", "first-match"))
        tenant = self.tenants.create(
            spec["name"], rules=rules,
            compiled=compiled_from_bundle(bundle),
            first_generation=int(spec.get("generation", 1)))
        self._bundles[spec["name"]] = bundle
        return tenant

    def _tenant(self, name: Optional[str]):
        return self.tenants.get(str(name)) if name else None

    # -- ops ------------------------------------------------------------------------

    def _op_ping(self, meta: Dict, payload: bytes) -> Dict:
        return {"generation": self.registry.generation,
                "automaton_builds": COUNTERS["automaton_builds"],
                "pid": os.getpid()}

    def _op_scan(self, meta: Dict, payload: bytes) -> Dict:
        tenant = self._tenant(meta.get("tenant"))
        with_events = bool(meta.get("events"))
        request = ScanRequest(data=payload,
                              workers=int(meta.get("workers", 1)),
                              with_events=with_events)
        registry = tenant.registry if tenant is not None else self.registry
        with registry.lease() as gen:
            outcome = execute(gen.ctx, request, meta.get("backend"))
            self.metrics.record_scan(
                outcome.backend, outcome.seconds,
                outcome.bytes_scanned, outcome.total_matches)
            header: Dict[str, object] = {
                "generation": gen.gen_id,
                "matches": outcome.total_matches,
                "bytes": outcome.bytes_scanned,
                "backend": outcome.backend,
                "workers": outcome.workers,
                "seconds": outcome.seconds,
            }
            if tenant is not None:
                self.metrics.record_tenant_request(
                    tenant.name, outcome.bytes_scanned,
                    outcome.total_matches)
                header["tenant"] = tenant.name
            if with_events and outcome.events is not None:
                cap = self.max_events
                header["events"] = [[e.end, e.pattern]
                                    for e in outcome.events[:cap]]
                if len(outcome.events) > cap:
                    header["events_truncated"] = \
                        len(outcome.events) - cap
            return header

    def _op_flow(self, meta: Dict, payload: bytes) -> Dict:
        flow_id = meta["flow"]
        tenant = self._tenant(meta.get("tenant"))
        if tenant is not None:
            t0 = time.perf_counter()
            verdict, gen_id, evicted = tenant.scan_packet(flow_id,
                                                          payload)
            seconds = time.perf_counter() - t0
            self.metrics.record_scan("flow", seconds, len(payload),
                                     verdict.new_matches)
            self.metrics.record_tenant_request(
                tenant.name, len(payload), verdict.new_matches)
            self.metrics.record_verdict(tenant.name, verdict.action,
                                        verdict.seconds)
            self.metrics.record_flow_evictions(evicted)
            header: Dict[str, object] = {
                "generation": gen_id,
                "tenant": tenant.name,
                "flow": flow_id,
                "matches": verdict.new_matches,
                "flow_total": verdict.flow_total,
                "bytes": len(payload),
                "seconds": seconds,
                "action": verdict.action,
            }
            if verdict.rule is not None:
                header["rule"] = verdict.rule
            if verdict.triggered:
                header["triggered"] = list(verdict.triggered)
            return header
        with self.registry.lease() as gen:
            t0 = time.perf_counter()
            new, total, evicted = gen.sessions.scan_packet(flow_id,
                                                           payload)
            seconds = time.perf_counter() - t0
            self.metrics.record_scan("flow", seconds, len(payload), new)
            self.metrics.record_flow_evictions(evicted)
            return {"generation": gen.gen_id,
                    "flow": flow_id,
                    "matches": new,
                    "flow_total": total,
                    "bytes": len(payload),
                    "seconds": seconds}

    def _op_close_flow(self, meta: Dict, payload: bytes) -> Dict:
        flow_id = meta["flow"]
        tenant = self._tenant(meta.get("tenant"))
        if tenant is not None:
            nbytes, matches, action = tenant.close_flow(flow_id)
            header = {"generation": tenant.registry.generation,
                      "tenant": tenant.name,
                      "flow": flow_id,
                      "bytes_seen": nbytes,
                      "matches": matches}
            if action is not None:
                header["action"] = action
            return header
        with self.registry.lease() as gen:
            nbytes, matches = gen.sessions.close_flow(flow_id)
            return {"generation": gen.gen_id,
                    "flow": flow_id,
                    "bytes_seen": nbytes,
                    "matches": matches}

    def _op_reload(self, meta: Dict, payload: bytes) -> Dict:
        """Generation swap: attach the new bundle (lease) *before* the
        old attachment is dropped, preserving the drain semantics — a
        single-threaded worker has no scan in flight here, so the
        retired generation drains inline."""
        bundle = SharedArrayBundle.attach(meta["bundle_meta"])
        compiled = compiled_from_bundle(bundle)
        scope = str(meta.get("tenant") or "")
        generation = int(meta["generation"])
        try:
            if scope:
                result = self.tenants.get(scope).load_compiled(
                    compiled, generation=generation)
            else:
                result = self.registry.load_compiled(
                    compiled, generation=generation)
        except BaseException:
            bundle.close()
            raise
        old = self._bundles.get(scope)
        self._bundles[scope] = bundle
        if old is not None:
            old.close()
        # The gateway records the end-to-end reload (compile + fan-out)
        # in its own metrics; recording here too would double-count in
        # the merged STATS view.
        return {"generation": result.generation,
                "flows_carried": result.flows_carried,
                "warm": result.warm}

    def _op_tenant_create(self, meta: Dict, payload: bytes) -> Dict:
        tenant = self._attach_tenant(meta)
        return {"generation": tenant.registry.generation,
                "policy_generation": tenant.policy_generation}

    def _op_tenant_delete(self, meta: Dict, payload: bytes) -> Dict:
        name = str(meta["name"])
        self.tenants.drop(name)
        self.metrics.forget_tenant(name)
        bundle = self._bundles.pop(name, None)
        if bundle is not None:
            bundle.close()
        return {"deleted": True}

    def _op_policy_set(self, meta: Dict, payload: bytes) -> Dict:
        tenant = self.tenants.get(str(meta["tenant"]))
        rules = RuleSet.from_specs(
            meta.get("rules", []),
            mode=str(meta.get("mode", "first-match")))
        return {"policy_generation": tenant.set_rules(rules)}

    def _op_stats(self, meta: Dict, payload: bytes) -> Dict:
        registry = self.registry.describe()
        tenants = self.tenants.describe()
        flows = int(registry["flows"]) + sum(
            int(t["registry"]["flows"]) for t in tenants.values())
        return {"metrics": self.metrics.state(),
                "registry": registry,
                "tenants": tenants,
                "flows": flows,
                "generation": self.registry.generation,
                "automaton_builds": COUNTERS["automaton_builds"],
                "pid": os.getpid()}

    # -- serve loop -----------------------------------------------------------------

    def _send(self, seq: int, ok: bool, result: Dict) -> None:
        try:
            self.conn.send((seq, ok, result))
        except (OSError, ValueError, BrokenPipeError):
            pass

    def run(self) -> None:
        while True:
            try:
                kind, seq, meta, payload = self.conn.recv()
            except (EOFError, OSError):
                break
            if kind == "stop":
                self._send(seq, True, {"stopped": True})
                break
            handler = self._ops.get(kind)
            if handler is None:
                self._send(seq, False, {"code": "bad-verb",
                                        "error": f"unknown op {kind!r}"})
                continue
            try:
                self._send(seq, True, handler(meta or {}, payload))
            except Exception as exc:
                self._send(seq, False, {
                    "code": _error_code(exc),
                    "error": f"{type(exc).__name__}: {exc}"
                    if _error_code(exc) == "internal" else str(exc)})
        self.close()

    def close(self) -> None:
        self.registry.close()
        self.tenants.close()
        for bundle in self._bundles.values():
            bundle.close()
        self._bundles.clear()
        try:
            self.conn.close()
        except OSError:
            pass


def worker_main(conn, init: Dict) -> None:
    """Process entry point (forked by the gateway's WorkerPool)."""
    # The gateway handles SIGINT/SIGTERM and drains the pool with an
    # explicit "stop" message; a stray terminal signal must not drop a
    # worker mid-request.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Child-private counter reset: everything this worker builds from
    # here on is its own doing, so a nonzero value after startup would
    # disprove the compile-once/attach-everywhere contract.
    COUNTERS["automaton_builds"] = 0
    try:
        worker = _PoolWorker(conn, init)
    except BaseException as exc:
        try:
            conn.send((-1, False, {"code": "worker-init",
                                   "error": f"{type(exc).__name__}: "
                                            f"{exc}"}))
        except (OSError, ValueError, BrokenPipeError):
            pass
        return
    conn.send((-1, True, {
        "pid": os.getpid(),
        "generation": worker.registry.generation,
        "automaton_builds": COUNTERS["automaton_builds"],
    }))
    worker.run()
