"""Service observability: counters, latency histograms, reload stats.

The daemon is a long-running data-plane process; the paper's throughput
tables become *live* numbers here.  :class:`ServiceMetrics` aggregates

* request/byte/match counters, per verb and total;
* per-backend latency histograms with p50/p95/p99 (log-spaced buckets,
  so the footprint is fixed no matter how many requests flow through);
* reload counts, warm (artifact-cache hit) reload counts and swap
  latency;
* admission-control outcomes (rejections, timeouts) and the pending
  queue's depth high-water mark;
* per-tenant request/byte/match counters, per-action verdict counts
  and the verdict-path latency histogram — keyed by tenant name only,
  so tenants can audit their own traffic without seeing anyone else's.

Everything is guarded by one lock — the recording paths are a handful
of integer updates, so contention is negligible next to a scan — and
``snapshot()`` returns a plain JSON-serializable dict, which is exactly
what the ``STATS`` verb and ``repro serve --metrics-json`` emit.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ServiceMetrics"]


class LatencyHistogram:
    """Fixed-footprint latency histogram with quantile estimation.

    Buckets are spaced geometrically from 1 µs to ~537 s (factor 2**0.25
    per bucket, ~19 % relative resolution — plenty for p50/p95/p99 of a
    network service).  Quantiles return the geometric midpoint of the
    bucket holding the requested rank, so the error is bounded by the
    bucket ratio regardless of sample count.
    """

    _MIN = 1e-6
    _FACTOR = 2.0 ** 0.25
    _BUCKETS = 116  # _MIN * _FACTOR**115 ≈ 4.4e2 s

    def __init__(self) -> None:
        self._counts = [0] * self._BUCKETS
        self.count = 0
        self.sum_seconds = 0.0
        self.min_seconds: Optional[float] = None
        self.max_seconds: Optional[float] = None

    def _bucket(self, seconds: float) -> int:
        if seconds <= self._MIN:
            return 0
        idx = int(math.log(seconds / self._MIN) / math.log(self._FACTOR))
        return min(idx + 1, self._BUCKETS - 1)

    def record(self, seconds: float) -> None:
        self._counts[self._bucket(seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile in seconds (0 when empty)."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                if i == 0:
                    return self._MIN
                lo = self._MIN * self._FACTOR ** (i - 1)
                return lo * math.sqrt(self._FACTOR)
        return self.max_seconds or 0.0

    @property
    def mean_seconds(self) -> float:
        return self.sum_seconds / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_seconds * 1e3,
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "min_ms": (self.min_seconds or 0.0) * 1e3,
            "max_ms": (self.max_seconds or 0.0) * 1e3,
        }

    # -- pool merging --------------------------------------------------------------

    def state(self) -> Dict[str, object]:
        """Picklable raw state (bucket counts, not quantiles) so pool
        workers can ship their histograms to the gateway losslessly —
        merged quantiles are computed from summed buckets, which is
        exact at bucket resolution, unlike averaging per-worker p99s."""
        return {
            "counts": list(self._counts),
            "count": self.count,
            "sum_seconds": self.sum_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
        }

    def absorb(self, state: Dict[str, object]) -> None:
        """Merge another histogram's :meth:`state` into this one."""
        for i, c in enumerate(state.get("counts", ())):
            if i >= self._BUCKETS:
                break
            self._counts[i] += int(c)
        self.count += int(state.get("count", 0))
        self.sum_seconds += float(state.get("sum_seconds", 0.0))
        lo = state.get("min_seconds")
        if lo is not None and (self.min_seconds is None
                               or lo < self.min_seconds):
            self.min_seconds = lo
        hi = state.get("max_seconds")
        if hi is not None and (self.max_seconds is None
                               or hi > self.max_seconds):
            self.max_seconds = hi


class ServiceMetrics:
    """All of the daemon's counters behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._verbs: Dict[str, int] = {}
        self._backends: Dict[str, LatencyHistogram] = {}
        self._swap = LatencyHistogram()
        self.requests_total = 0
        self.bytes_scanned = 0
        self.matches = 0
        self.errors = 0
        self.rejected = 0
        self.timeouts = 0
        self.reloads = 0
        self.warm_reloads = 0
        self.flow_evictions = 0
        self.queue_depth = 0
        self.queue_high_water = 0
        self.batches = 0
        self.batched_requests = 0
        self.batch_high_water = 0
        self._scanners: Dict[int, Dict[str, object]] = {}
        # Per-tenant isolation: every counter below is keyed by tenant
        # name and only ever touched by that tenant's requests, so one
        # tenant's traffic can never leak into another's STATS view.
        self._tenants: Dict[str, Dict[str, object]] = {}

    # -- recording -----------------------------------------------------------------

    def record_request(self, verb: str) -> None:
        with self._lock:
            self.requests_total += 1
            self._verbs[verb] = self._verbs.get(verb, 0) + 1

    def record_scan(self, backend: str, seconds: float, nbytes: int,
                    matches: int) -> None:
        with self._lock:
            self.bytes_scanned += nbytes
            self.matches += matches
            hist = self._backends.get(backend)
            if hist is None:
                hist = self._backends[backend] = LatencyHistogram()
            hist.record(seconds)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_reload(self, seconds: float, warm: bool) -> None:
        with self._lock:
            self.reloads += 1
            if warm:
                self.warm_reloads += 1
            self._swap.record(seconds)

    def record_batch(self, occupancy: int) -> None:
        """One coalesced scan batch of ``occupancy`` requests executed
        (one fused ``run_streams`` call served them all)."""
        with self._lock:
            self.batches += 1
            self.batched_requests += occupancy
            if occupancy > self.batch_high_water:
                self.batch_high_water = occupancy

    def record_scanner_stats(self, gen_id: int, stats: Dict) -> None:
        """Accumulate one batch's hot/cold scanner counters under its
        dictionary generation.  ``stats`` is
        :attr:`ScanContext.last_batch_scan_stats`: scanner name plus
        steps / cold_steps / escapes (hot_hit_rate is recomputed from
        the aggregated step counts at snapshot time)."""
        if not stats:
            return
        with self._lock:
            agg = self._scanners.get(gen_id)
            if agg is None:
                agg = self._scanners[gen_id] = {
                    "scanner": stats.get("scanner", "?"),
                    "batches": 0, "steps": 0, "cold_steps": 0,
                    "escapes": 0}
            agg["scanner"] = stats.get("scanner", agg["scanner"])
            agg["batches"] += 1
            for key in ("steps", "cold_steps", "escapes"):
                agg[key] += int(stats.get(key, 0))

    def record_flow_evictions(self, count: int) -> None:
        if count:
            with self._lock:
                self.flow_evictions += count

    def _tenant_slot(self, tenant: str) -> Dict[str, object]:
        slot = self._tenants.get(tenant)
        if slot is None:
            slot = self._tenants[tenant] = {
                "requests": 0, "bytes_scanned": 0, "matches": 0,
                "actions": {}, "verdict_latency": LatencyHistogram()}
        return slot

    def record_tenant_request(self, tenant: str, nbytes: int,
                              matches: int) -> None:
        """One tenant-scoped SCAN/FLOW served."""
        with self._lock:
            slot = self._tenant_slot(tenant)
            slot["requests"] += 1
            slot["bytes_scanned"] += nbytes
            slot["matches"] += matches

    def record_verdict(self, tenant: str, action: str,
                       seconds: float) -> None:
        """One packet verdict: per-action count + policy-path latency
        (attribution + rule evaluation, excluding the scan itself)."""
        with self._lock:
            slot = self._tenant_slot(tenant)
            actions = slot["actions"]
            actions[action] = actions.get(action, 0) + 1
            slot["verdict_latency"].record(seconds)

    def forget_tenant(self, tenant: str) -> None:
        """Drop a deleted tenant's counters (its name may be reused)."""
        with self._lock:
            self._tenants.pop(tenant, None)

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    # -- pool merging --------------------------------------------------------------

    _COUNTER_FIELDS = ("requests_total", "bytes_scanned", "matches",
                       "errors", "rejected", "timeouts", "reloads",
                       "warm_reloads", "flow_evictions", "batches",
                       "batched_requests")

    def state(self) -> Dict[str, object]:
        """Picklable raw state for cross-process aggregation: every
        counter plus histogram *buckets* (see
        :meth:`LatencyHistogram.state`).  This is what a pool worker
        returns for STATS; the gateway merges all worker states with
        :meth:`absorb` so pool-wide quantiles are computed over the
        union of samples."""
        with self._lock:
            return {
                "verbs": dict(self._verbs),
                "counters": {name: getattr(self, name)
                             for name in self._COUNTER_FIELDS},
                "queue_depth": self.queue_depth,
                "queue_high_water": self.queue_high_water,
                "batch_high_water": self.batch_high_water,
                "swap": self._swap.state(),
                "backends": {name: hist.state()
                             for name, hist in self._backends.items()},
                "scanners": {gen_id: dict(agg)
                             for gen_id, agg in self._scanners.items()},
                "tenants": {
                    name: {
                        "requests": slot["requests"],
                        "bytes_scanned": slot["bytes_scanned"],
                        "matches": slot["matches"],
                        "actions": dict(slot["actions"]),
                        "verdict_latency":
                            slot["verdict_latency"].state(),
                    }
                    for name, slot in self._tenants.items()},
            }

    def absorb(self, state: Dict[str, object]) -> None:
        """Merge one :meth:`state` into this instance: counters sum,
        histogram buckets sum, min/max extremes win, queue depth sums
        (pool-wide pending) while high-water takes the max."""
        with self._lock:
            for verb, n in state.get("verbs", {}).items():
                self._verbs[verb] = self._verbs.get(verb, 0) + int(n)
            for name, value in state.get("counters", {}).items():
                if name in self._COUNTER_FIELDS:
                    setattr(self, name, getattr(self, name) + int(value))
            self.queue_depth += int(state.get("queue_depth", 0))
            self.queue_high_water = max(
                self.queue_high_water,
                int(state.get("queue_high_water", 0)))
            self.batch_high_water = max(
                self.batch_high_water,
                int(state.get("batch_high_water", 0)))
            self._swap.absorb(state.get("swap", {}))
            for name, hist_state in state.get("backends", {}).items():
                hist = self._backends.get(name)
                if hist is None:
                    hist = self._backends[name] = LatencyHistogram()
                hist.absorb(hist_state)
            for gen_id, stats in state.get("scanners", {}).items():
                gen_id = int(gen_id)
                agg = self._scanners.get(gen_id)
                if agg is None:
                    agg = self._scanners[gen_id] = {
                        "scanner": stats.get("scanner", "?"),
                        "batches": 0, "steps": 0, "cold_steps": 0,
                        "escapes": 0}
                agg["scanner"] = stats.get("scanner", agg["scanner"])
                for key in ("batches", "steps", "cold_steps", "escapes"):
                    agg[key] += int(stats.get(key, 0))
            for name, incoming in state.get("tenants", {}).items():
                slot = self._tenant_slot(name)
                slot["requests"] += int(incoming.get("requests", 0))
                slot["bytes_scanned"] += \
                    int(incoming.get("bytes_scanned", 0))
                slot["matches"] += int(incoming.get("matches", 0))
                actions = slot["actions"]
                for action, n in incoming.get("actions", {}).items():
                    actions[action] = actions.get(action, 0) + int(n)
                slot["verdict_latency"].absorb(
                    incoming.get("verdict_latency", {}))

    @classmethod
    def merged_snapshot(cls, states: List[Dict[str, object]]
                        ) -> Dict[str, object]:
        """One pool-wide :meth:`snapshot` over many :meth:`state`
        payloads (gateway + workers)."""
        merged = cls()
        for state in states:
            merged.absorb(state)
        return merged.snapshot()

    # -- reading -------------------------------------------------------------------

    def backend_names(self) -> List[str]:
        with self._lock:
            return list(self._backends)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view of every counter and histogram."""
        with self._lock:
            return {
                "requests": dict(self._verbs, total=self.requests_total),
                "bytes_scanned": self.bytes_scanned,
                "matches": self.matches,
                "errors": self.errors,
                "admission": {
                    "rejected": self.rejected,
                    "timeouts": self.timeouts,
                    "queue_depth": self.queue_depth,
                    "queue_high_water": self.queue_high_water,
                },
                "reloads": {
                    "count": self.reloads,
                    "warm": self.warm_reloads,
                    "swap_latency": self._swap.snapshot(),
                },
                "flow_evictions": self.flow_evictions,
                "batches": {
                    "count": self.batches,
                    "requests": self.batched_requests,
                    "mean_occupancy": (self.batched_requests / self.batches
                                       if self.batches else 0.0),
                    "max_occupancy": self.batch_high_water,
                },
                "tenants": {
                    name: {
                        "requests": slot["requests"],
                        "bytes_scanned": slot["bytes_scanned"],
                        "matches": slot["matches"],
                        "actions": dict(slot["actions"]),
                        "verdict_latency":
                            slot["verdict_latency"].snapshot(),
                    }
                    for name, slot in self._tenants.items()},
                "backends": {name: hist.snapshot()
                             for name, hist in self._backends.items()},
                "scanners": {
                    str(gen_id): dict(
                        agg,
                        hot_hit_rate=(
                            1.0 - agg["cold_steps"] / agg["steps"]
                            if agg["steps"] else 1.0))
                    for gen_id, agg in self._scanners.items()},
            }
