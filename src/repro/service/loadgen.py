"""Load generator for the scan daemon: closed- and open-loop.

``repro bench-load`` and the service bench drive a daemon the way the
paper's traffic generator drives the tile: synthetic packet payloads
(:func:`repro.workloads.traffic.packet_stream`) with a controlled
planted-match density, sent by N concurrent connections.  Two loops:

* **closed** (default) — each connection keeps one request in flight,
  the classic latency-vs-throughput operating point;
* **open** (``arrival_rate``) — requests fire on a fixed schedule
  (:func:`repro.workloads.traffic.open_loop_schedule`) regardless of
  how fast responses come back, and latency is measured from the
  *scheduled* send time, so a saturated service accrues queueing delay
  instead of silently throttling the offered load (no coordinated
  omission).  This is the honest way to compare worker-pool sizes: the
  same offered rate hits every configuration.

Latencies are measured per request at the client; quantiles are exact
(sorted samples, not histogram buckets), so ``BENCH_service.json`` can
be compared against the daemon's own histogram-based ``STATS`` view.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..workloads.traffic import open_loop_schedule, packet_stream
from .client import ServiceClient, ServiceError

__all__ = ["LoadResult", "run_load"]


def _quantile(sorted_samples: List[float], q: float) -> float:
    """Exact empirical quantile (nearest-rank) of sorted samples."""
    if not sorted_samples:
        return 0.0
    rank = max(1, int(round(q * len(sorted_samples))))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


@dataclass
class LoadResult:
    """Aggregate outcome of one closed-loop run."""

    mode: str
    connections: int
    requests: int
    errors: int
    bytes_sent: int
    matches: int
    seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    #: Distinct dictionary generations observed in responses — >1 means
    #: the run crossed at least one hot reload.
    generations: List[int] = field(default_factory=list)
    error_codes: Dict[str, int] = field(default_factory=dict)
    #: Tenant the load was aimed at (None = default dictionary).
    tenant: Optional[str] = None
    #: Verdict actions observed in FLOW responses (tenant runs).
    actions: Dict[str, int] = field(default_factory=dict)
    #: Open-loop run (fixed arrival schedule) vs closed loop.
    open_loop: bool = False
    #: Offered aggregate arrival rate of an open-loop run (req/s).
    offered_rps: float = 0.0

    @property
    def gbps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.bytes_sent * 8 / self.seconds / 1e9

    @property
    def requests_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.requests / self.seconds

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable body for ``BENCH_service.json``."""
        return {
            "mode": self.mode,
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "error_codes": dict(self.error_codes),
            "bytes_sent": self.bytes_sent,
            "matches": self.matches,
            "seconds": self.seconds,
            "gbps": self.gbps,
            "requests_per_second": self.requests_per_second,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
            },
            "generations": list(self.generations),
            "tenant": self.tenant,
            "actions": dict(self.actions),
            "open_loop": self.open_loop,
            "offered_rps": self.offered_rps,
        }

    def summary(self) -> str:
        gens = ",".join(str(g) for g in self.generations)
        where = f" tenant={self.tenant}" if self.tenant else ""
        if self.open_loop:
            where += f" open-loop@{self.offered_rps:.0f}rps"
        acts = ""
        if self.actions:
            acts = " | verdicts " + ",".join(
                f"{k}:{v}" for k, v in sorted(self.actions.items()))
        return (f"{self.requests} requests{where} on {self.connections} "
                f"connection(s) in {self.seconds:.2f}s | "
                f"{self.gbps:.4f} Gbps, "
                f"{self.requests_per_second:.0f} req/s | latency "
                f"p50 {self.p50_ms:.2f} / p95 {self.p95_ms:.2f} / "
                f"p99 {self.p99_ms:.2f} ms | errors {self.errors} | "
                f"generation(s) {gens}{acts}")


class _Worker(threading.Thread):
    """One closed-loop connection: send, wait, record, repeat."""

    def __init__(self, host: str, port: int, packets: Sequence[bytes],
                 mode: str, flows: int, index: int,
                 barrier: threading.Barrier,
                 tenant: Optional[str] = None,
                 schedule: Optional[Sequence[float]] = None) -> None:
        super().__init__(daemon=True, name=f"loadgen-{index}")
        self.host, self.port = host, port
        self.packets = packets
        self.mode = mode
        self.flows = flows
        self.index = index
        self.barrier = barrier
        self.tenant = tenant
        #: Open loop: absolute send offsets from the common start; the
        #: connection sleeps to each slot and charges any backlog to
        #: the measured latency rather than the arrival process.
        self.schedule = schedule
        self.latencies: List[float] = []
        self.errors: Dict[str, int] = {}
        self.bytes_sent = 0
        self.matches = 0
        self.generations: set = set()
        self.actions: Dict[str, int] = {}

    def run(self) -> None:
        try:
            client = ServiceClient(self.host, self.port)
        except OSError:
            self.errors["connect"] = len(self.packets)
            self.barrier.wait()
            return
        self.barrier.wait()    # everyone starts together
        start = time.perf_counter()
        try:
            for j, packet in enumerate(self.packets):
                if self.schedule is not None:
                    due = start + self.schedule[j]
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    t0 = due        # latency from the *scheduled* time
                else:
                    t0 = time.perf_counter()
                try:
                    if self.mode == "flow":
                        flow_id = f"c{self.index}-f{j % self.flows}"
                        reply = client.scan_packet(flow_id, packet,
                                                   tenant=self.tenant)
                        self.actions[reply.action] = \
                            self.actions.get(reply.action, 0) + 1
                    else:
                        reply = client.scan(packet, tenant=self.tenant)
                except ServiceError as exc:
                    self.errors[exc.code] = \
                        self.errors.get(exc.code, 0) + 1
                    if exc.code in ("closed", "transport"):
                        break
                    continue
                self.latencies.append(time.perf_counter() - t0)
                self.bytes_sent += len(packet)
                self.matches += reply.matches
                self.generations.add(reply.generation)
        finally:
            client.close()


def run_load(host: str, port: int, *,
             connections: int = 4,
             requests_per_connection: int = 200,
             mode: str = "scan",
             flows_per_connection: int = 8,
             min_size: int = 256, max_size: int = 1500,
             alphabet_size: int = 256,
             patterns: Optional[Sequence[bytes]] = None,
             match_fraction: float = 0.2,
             seed: int = 0,
             tenant: Optional[str] = None,
             arrival_rate: Optional[float] = None) -> LoadResult:
    """Drive a running daemon and measure it.

    ``mode="scan"`` sends stateless one-shot scans; ``mode="flow"``
    spreads each connection's packets over ``flows_per_connection``
    session flows.  Each connection gets its own deterministic packet
    burst (``seed + index``) and deterministic flow ids, so a FLOW-mode
    run is reproducible end to end from ``seed`` alone; payloads are
    optionally planted with ``patterns``.  With ``tenant``, every
    request routes through that tenant's dictionary and policy, and
    FLOW-mode results tally the verdict actions observed.

    By default the run is closed-loop (one request in flight per
    connection).  With ``arrival_rate`` (aggregate requests/second)
    the run is **open-loop**: sends follow a fixed schedule and
    latency includes any queueing the service accrues behind the
    schedule — the offered load does not bend to the service.
    """
    if mode not in ("scan", "flow"):
        raise ValueError(f"mode must be 'scan' or 'flow', got {mode!r}")
    if connections < 1 or requests_per_connection < 1:
        raise ValueError("need at least one connection and one request")
    schedules: Optional[List[List[float]]] = None
    if arrival_rate is not None:
        schedules = open_loop_schedule(connections,
                                       requests_per_connection,
                                       arrival_rate)
    barrier = threading.Barrier(connections + 1)
    workers = [
        _Worker(host, port,
                packet_stream(requests_per_connection,
                              min_size=min_size, max_size=max_size,
                              alphabet_size=alphabet_size,
                              patterns=patterns,
                              match_fraction=match_fraction,
                              seed=seed + i),
                mode, flows_per_connection, i, barrier, tenant=tenant,
                schedule=schedules[i] if schedules else None)
        for i in range(connections)]
    for w in workers:
        w.start()
    barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    seconds = time.perf_counter() - t0

    latencies = sorted(lat for w in workers for lat in w.latencies)
    error_codes: Dict[str, int] = {}
    for w in workers:
        for code, n in w.errors.items():
            error_codes[code] = error_codes.get(code, 0) + n
    generations = sorted({g for w in workers for g in w.generations})
    actions: Dict[str, int] = {}
    for w in workers:
        for act, n in w.actions.items():
            actions[act] = actions.get(act, 0) + n
    return LoadResult(
        mode=mode,
        connections=connections,
        requests=len(latencies),
        errors=sum(error_codes.values()),
        bytes_sent=sum(w.bytes_sent for w in workers),
        matches=sum(w.matches for w in workers),
        seconds=seconds,
        p50_ms=_quantile(latencies, 0.50) * 1e3,
        p95_ms=_quantile(latencies, 0.95) * 1e3,
        p99_ms=_quantile(latencies, 0.99) * 1e3,
        mean_ms=(sum(latencies) / len(latencies) * 1e3)
        if latencies else 0.0,
        generations=generations,
        error_codes=error_codes,
        tenant=tenant,
        actions=actions,
        open_loop=arrival_rate is not None,
        offered_rps=float(arrival_rate or 0.0))
