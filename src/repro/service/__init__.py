"""Live scan service: a hot-reloadable dictionary daemon.

The paper compiles a dictionary and streams traffic through it; this
package keeps that dictionary *resident in a long-running process* and
serves concurrent scans over a length-prefixed TCP protocol — the
production shape of the reproduction:

* :mod:`~repro.service.protocol` — the wire format and verb set;
* :mod:`~repro.service.registry` — hot dictionary reload (double-
  buffered generations, the paper's §6 replacement at service scale);
* :mod:`~repro.service.sessions` — flow sessions: per-connection DFA
  state across packet boundaries;
* :mod:`~repro.service.metrics` — counters and latency histograms;
* :mod:`~repro.service.daemon` — the asyncio server with admission
  control and graceful drain;
* :mod:`~repro.service.pool` / :mod:`~repro.service.worker` — the
  multi-process gateway mode: a worker fleet attached to the compiled
  dictionary via shared memory, flows placed by consistent hash;
* :mod:`~repro.service.client` — the blocking client;
* :mod:`~repro.service.loadgen` — the closed-/open-loop load
  generator behind ``repro bench-load``.

The daemon also hosts the policy layer (:mod:`repro.policy`): tenants
with isolated dictionaries and hot-swappable rulesets, reachable via
the ``TENANT``/``POLICY`` verbs and a ``tenant`` header on scans.
"""

from .client import ServiceClient, ServiceError
from .daemon import ScanService, ServiceConfig, ServiceThread
from .loadgen import LoadResult, run_load
from .metrics import LatencyHistogram, ServiceMetrics
from .pool import (ConsistentHashRing, PoolError, WorkerCrashError,
                   WorkerPool)
from .protocol import (RELOAD_STRATEGY, VERB_SPECS, VERBS, Frame,
                       ProtocolError)
from .registry import (DictionaryRegistry, Generation, RegistryError,
                       ReloadResult)
from .sessions import PacketScan, SessionScanner

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ScanService",
    "ServiceConfig",
    "ServiceThread",
    "LoadResult",
    "run_load",
    "LatencyHistogram",
    "ServiceMetrics",
    "ConsistentHashRing",
    "PoolError",
    "WorkerCrashError",
    "WorkerPool",
    "RELOAD_STRATEGY",
    "VERB_SPECS",
    "VERBS",
    "Frame",
    "ProtocolError",
    "DictionaryRegistry",
    "Generation",
    "RegistryError",
    "ReloadResult",
    "PacketScan",
    "SessionScanner",
]
