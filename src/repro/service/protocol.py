"""Wire protocol of the scan daemon: length-prefixed binary frames.

One frame carries one request or one response.  The layout is

::

    uint32  frame_len    big-endian; bytes that follow this field
    uint32  header_len   big-endian; length of the JSON header
    header               UTF-8 JSON object (verb / status + fields)
    payload              frame_len - 4 - header_len raw bytes

Payloads are opaque bytes — the traffic being scanned, a packet of a
flow, or a newline-separated dictionary for ``RELOAD`` — so the protocol
is binary-safe and the JSON header stays tiny.  Both sides prefix every
frame with its full length, so a reader always knows exactly how much to
consume: no sentinels, no escaping, no ambiguity at chunk boundaries
(the same property the staging ring gives the scan pipeline).

Requests carry ``{"verb": ..., "id": ...}`` plus verb-specific fields;
responses echo ``id`` and always carry ``ok`` and — the hot-reload
contract — the ``generation`` of the dictionary that served them.
``SCAN``/``FLOW``/``CLOSE_FLOW``/``RELOAD`` take an optional
``"tenant"`` header field routing them to that tenant's isolated
dictionary and policy (absent = the daemon's default dictionary);
``TENANT`` reuses the line-delimited pattern payload for ``create`` and
``POLICY`` carries rule specs as a JSON list in the header (rules are
tiny structured data, payloads are for traffic).

This module is stdlib-only (no numpy, no asyncio imports) so the client
and ``repro info`` can load it without pulling in the engines.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Frame",
    "ProtocolError",
    "MAX_FRAME_BYTES",
    "VERBS",
    "VERB_SPECS",
    "RELOAD_STRATEGY",
    "encode_frame",
    "decode_frame",
    "split_body",
    "encode_patterns",
    "decode_patterns",
]


class ProtocolError(Exception):
    """Raised for malformed frames, oversized frames or unknown verbs."""


#: Upper bound on one frame (64 MB): a guard against a corrupt length
#: prefix allocating unbounded memory, not a throughput limit — larger
#: inputs stream as multiple SCAN/FLOW requests.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_PREFIX = struct.Struct(">I")

#: ``(verb, description)`` — the daemon's full vocabulary, in the order
#: ``repro info`` prints them.
VERB_SPECS: List[Tuple[str, str]] = [
    ("PING", "liveness probe; returns the active dictionary generation"),
    ("SCAN", "one-shot stateless scan of the payload (backend registry)"),
    ("FLOW", "sessioned scan: payload joins the flow's byte stream"),
    ("CLOSE_FLOW", "evict one flow; returns its lifetime bytes/matches"),
    ("RELOAD", "hot dictionary swap: stage, compile, promote atomically"),
    ("TENANT", "tenant lifecycle: create/delete/list/info isolated "
               "dictionary+policy namespaces"),
    ("POLICY", "rule hot-swap: stage a tenant's ruleset, promote "
               "atomically (set/get)"),
    ("STATS", "metrics snapshot: counters, latency quantiles, reloads"),
    ("SHUTDOWN", "graceful drain: finish in-flight requests, then stop"),
]

VERBS: Tuple[str, ...] = tuple(v for v, _ in VERB_SPECS)

#: One-line summary of the swap mechanism, shared by ``repro info`` and
#: the STATS response.
RELOAD_STRATEGY = (
    "double-buffered generations: compile into the standby slot, "
    "promote atomically between requests; in-flight scans finish on "
    "the generation they started with")


@dataclass
class Frame:
    """One decoded frame: a JSON header plus an opaque payload.

    ``payload`` is ``bytes`` by default; a zero-copy decode
    (``split_body(..., zero_copy=True)``) leaves it a ``memoryview``
    slice of the receive buffer, which every scan path consumes without
    materializing (``np.frombuffer`` accepts any buffer)."""

    header: Dict[str, object]
    payload: bytes = b""

    @property
    def verb(self) -> str:
        return str(self.header.get("verb", ""))

    @property
    def ok(self) -> bool:
        return bool(self.header.get("ok", False))


def encode_frame(header: Dict[str, object], payload: bytes = b"") -> bytes:
    """Serialize one frame (length prefix + header + payload)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    frame_len = 4 + len(header_bytes) + len(payload)
    if frame_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {frame_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit; split the input")
    # join() accepts any buffer, so memoryview payloads encode without
    # an intermediate bytes() conversion.
    return b"".join((_PREFIX.pack(frame_len),
                     _PREFIX.pack(len(header_bytes)),
                     header_bytes, payload))


def split_body(body: bytes, zero_copy: bool = False) -> Frame:
    """Decode a frame body (everything after the ``frame_len`` prefix).

    With ``zero_copy`` the returned payload is a ``memoryview`` slice
    of ``body`` — no per-request copy of the traffic being scanned.
    The caller owns the aliasing: the view is only valid while ``body``
    is alive, and consumers that need real ``bytes`` (pattern decoding,
    cross-process pickling) convert explicitly.
    """
    if len(body) < 4:
        raise ProtocolError("truncated frame: missing header length")
    header_len = _PREFIX.unpack_from(body, 0)[0]
    if 4 + header_len > len(body):
        raise ProtocolError(
            f"truncated frame: header of {header_len} bytes does not "
            f"fit the {len(body)}-byte body")
    try:
        header = json.loads(bytes(body[4:4 + header_len]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    payload = memoryview(body)[4 + header_len:] if zero_copy \
        else body[4 + header_len:]
    return Frame(header=header, payload=payload)


def decode_frame(buf: bytes) -> Tuple[Optional[Frame], bytes]:
    """Decode one frame from ``buf``; returns ``(frame, rest)`` or
    ``(None, buf)`` when the buffer does not yet hold a whole frame."""
    if len(buf) < 4:
        return None, buf
    frame_len = _PREFIX.unpack_from(buf, 0)[0]
    if frame_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {frame_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    if len(buf) < 4 + frame_len:
        return None, buf
    return split_body(buf[4:4 + frame_len]), buf[4 + frame_len:]


# -- dictionary payloads ------------------------------------------------------------


def encode_patterns(patterns) -> bytes:
    """RELOAD payload: one pattern per line.

    Patterns may be ``str`` or ``bytes``; embedded newlines are the one
    thing the framing cannot carry, so they are rejected here rather
    than silently corrupting the dictionary.
    """
    out: List[bytes] = []
    for i, p in enumerate(patterns):
        raw = p.encode() if isinstance(p, str) else bytes(p)
        if b"\n" in raw:
            raise ProtocolError(
                f"pattern {i} contains a newline; the RELOAD payload is "
                f"line-delimited")
        if not raw:
            raise ProtocolError(f"pattern {i} is empty")
        out.append(raw)
    if not out:
        raise ProtocolError("RELOAD needs at least one pattern")
    return b"\n".join(out)


def decode_patterns(payload: bytes) -> List[bytes]:
    """Inverse of :func:`encode_patterns`.

    Accepts ``bytes`` or a zero-copy ``memoryview`` payload (patterns
    are tiny next to traffic, so materializing here is fine).
    """
    if not isinstance(payload, bytes):
        payload = bytes(payload)
    if not payload:
        raise ProtocolError("empty RELOAD payload")
    patterns = [line for line in payload.split(b"\n") if line]
    if not patterns:
        raise ProtocolError("RELOAD payload holds no patterns")
    return patterns
