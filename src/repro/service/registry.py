"""Hot-reloadable dictionary generations: the paper's dynamic STT
replacement (§6), lifted from SPE half-tile slots to a serving daemon.

On the Cell, a new dictionary slice streams into the shadow STT slot
while the resident slot keeps filtering; a buffer boundary flips the
roles.  :class:`DictionaryRegistry` is the same machine at service
scale, built on the same primitive
(:class:`~repro.core.replacement.DoubleBuffer`):

* the **active** slot holds the :class:`Generation` serving scans — a
  :class:`~repro.core.compiled.CompiledDictionary`, its
  :class:`~repro.core.backends.ScanContext` (worker pools, shared
  tables) and its flow-session table;
* :meth:`load` compiles the incoming dictionary (through
  :class:`~repro.core.compiled.ArtifactCache`, so re-deploying a known
  rule set is a *warm swap* with zero automaton builds), stages it in
  the standby slot, and **promotes atomically between requests**;
* scans :meth:`lease` the generation they start on and hold it until
  they finish — a promote never yanks tables out from under an
  in-flight scan, and the retired generation's pools are closed only
  when its last lease drains (zero failed requests during a swap);
* every response is stamped with the generation id of the dictionary
  that produced it, so clients can correlate counts with reloads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.backends import ScanContext
from ..core.compiled import (COUNTERS, ArtifactCache, CompiledDictionary,
                             compile_dictionary)
from ..core.replacement import DoubleBuffer
from ..dfa.alphabet import FoldMap
from .sessions import SessionScanner

__all__ = ["DictionaryRegistry", "Generation", "ReloadResult",
           "RegistryError"]


class RegistryError(Exception):
    """Raised for unusable reloads or a closed registry."""


class Generation:
    """One dictionary generation: compiled artifact + execution context
    + flow sessions, reference-counted so retirement waits for the last
    in-flight scan."""

    def __init__(self, gen_id: int, compiled: CompiledDictionary,
                 max_flows: int, session_policy: str) -> None:
        self.gen_id = gen_id
        self.compiled = compiled
        self.ctx = ScanContext(compiled)
        self.sessions = SessionScanner(compiled, max_flows=max_flows,
                                       on_full=session_policy)
        self._lock = threading.Lock()
        self._leases = 0
        self._retired = False
        self._closed = False
        # Runs once when the retired generation's last lease drains —
        # the registry hooks the final session carry here so packets
        # scanned through a surviving lease are merged, not lost.
        self.on_drained: Optional[Callable[[], None]] = None

    # -- lease management ----------------------------------------------------------

    def acquire(self) -> bool:
        """Take a lease; ``False`` if the generation already released
        its resources (the caller should re-read the active slot)."""
        with self._lock:
            if self._closed:
                return False
            self._leases += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._leases -= 1
            close_now = self._retired and self._leases == 0 \
                and not self._closed
            if close_now:
                self._closed = True
        if close_now:
            self._drained()

    def retire(self) -> None:
        """Mark retired; resources are released once leases drain."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            close_now = self._leases == 0 and not self._closed
            if close_now:
                self._closed = True
        if close_now:
            self._drained()

    def _drained(self) -> None:
        hook, self.on_drained = self.on_drained, None
        if hook is not None:
            hook()
        self.ctx.close()

    @property
    def leases(self) -> int:
        with self._lock:
            return self._leases

    def __repr__(self) -> str:
        return (f"Generation(id={self.gen_id}, "
                f"slices={self.compiled.num_slices}, "
                f"leases={self.leases}, retired={self._retired})")


@dataclass
class ReloadResult:
    """What one hot reload did."""

    generation: int
    seconds: float
    #: Artifact-cache hit: the swap did zero automaton builds.
    warm: bool
    patterns: int
    slices: int
    states: int
    #: Flows carried across the reload boundary (restart-at-generation).
    flows_carried: int


class _Lease:
    """Context manager pairing a :class:`Generation` with its release."""

    def __init__(self, generation: Generation) -> None:
        self.generation = generation

    def __enter__(self) -> Generation:
        return self.generation

    def __exit__(self, *exc) -> None:
        self.generation.release()


class DictionaryRegistry:
    """Active/standby dictionary slots with atomic promotion."""

    def __init__(self, patterns: Optional[Sequence] = None,
                 fold: Optional[FoldMap] = None,
                 regex: bool = False,
                 max_states: int = 1 << 30,
                 cache=None,
                 max_flows: int = 65536,
                 session_policy: str = "lru",
                 compiled: Optional[CompiledDictionary] = None,
                 first_generation: int = 1) -> None:
        if cache is True:
            cache = ArtifactCache()
        elif cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self._cache = cache
        self._fold = fold
        self._max_states = max_states
        self._max_flows = max_flows
        self._session_policy = session_policy
        # Serializes reloads end to end (compile + stage + promote);
        # scans never take it.  Reentrant because a retiring generation
        # with zero leases drains inline within load(), and its drain
        # hook re-enters to absorb leftover session totals.
        self._reload_lock = threading.RLock()
        self._closed = False
        self.swap_count = 0
        self.last_swap_seconds = 0.0

        if compiled is not None:
            # Worker side of the process pool: the gateway compiled the
            # dictionary once; this registry merely wraps the attached
            # artifact (zero automaton builds here).
            self._fold = compiled.fold
            first = Generation(int(first_generation), compiled,
                               self._max_flows, self._session_policy)
        elif patterns is not None:
            first = self._compile_generation(int(first_generation),
                                             patterns, regex)
        else:
            raise RegistryError("need patterns or a compiled dictionary")
        self._buffer: DoubleBuffer[Generation] = DoubleBuffer(first)

    # -- compile -------------------------------------------------------------------

    def _compile_generation(self, gen_id: int, patterns: Sequence,
                            regex: bool) -> Generation:
        compiled = compile_dictionary(
            patterns, fold=self._fold, regex=regex,
            max_states=self._max_states, cache=self._cache)
        if self._fold is None:
            # Every later generation must fold identically, or session
            # state and counts would silently change meaning.
            self._fold = compiled.fold
        return Generation(gen_id, compiled, self._max_flows,
                          self._session_policy)

    # -- serving side --------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Id of the currently active generation."""
        return self._buffer.active.gen_id

    @property
    def active(self) -> Generation:
        return self._buffer.active

    def lease(self) -> _Lease:
        """Acquire the active generation for one scan.

        The tiny race — a promote retiring the generation between the
        read and the acquire — is handled by retrying: ``acquire`` fails
        only after the generation released its resources, and by then
        the buffer's active slot holds the successor.
        """
        if self._closed:
            raise RegistryError("registry is closed")
        while True:
            generation = self._buffer.active
            if generation.acquire():
                return _Lease(generation)

    # -- reload side ---------------------------------------------------------------

    def load(self, patterns: Sequence, regex: bool = False,
             validate: Optional[Callable[[CompiledDictionary], None]] = None,
             ) -> ReloadResult:
        """Compile ``patterns`` and atomically promote them.

        Runs entirely off the scan path: the active generation serves
        throughout the compile, the promotion itself is a pointer flip
        inside the :class:`DoubleBuffer` lock, and in-flight scans keep
        their leased generation until they finish.

        ``validate``, if given, is called with the incoming
        :class:`~repro.core.compiled.CompiledDictionary` *before* the
        new generation is staged.  If it raises, the reload is refused:
        the incoming generation's resources are released and the active
        generation keeps serving, untouched.  This is the hook policy
        layers use to keep cross-referencing state (rule bindings) from
        drifting apart from the dictionary.
        """
        with self._reload_lock:
            if self._closed:
                raise RegistryError("registry is closed")
            t0 = time.perf_counter()
            builds_before = COUNTERS["automaton_builds"]
            gen_id = self._buffer.active.gen_id + 1
            incoming = self._compile_generation(gen_id, patterns, regex)
            warm = COUNTERS["automaton_builds"] == builds_before
            return self._promote(incoming, warm, t0, validate)

    def load_compiled(self, compiled: CompiledDictionary,
                      generation: Optional[int] = None,
                      validate: Optional[
                          Callable[[CompiledDictionary], None]] = None,
                      ) -> ReloadResult:
        """Promote an externally compiled dictionary.

        The pool's worker side of a hot reload: the gateway compiled
        (or artifact-loaded) the dictionary once and shipped it over
        shared memory; this registry wraps it in a fresh
        :class:`Generation` without any compile work.  ``generation``
        pins the new generation id so workers track the gateway's
        numbering; the same drain/carry semantics as :meth:`load`
        apply.
        """
        with self._reload_lock:
            if self._closed:
                raise RegistryError("registry is closed")
            t0 = time.perf_counter()
            gen_id = self._buffer.active.gen_id + 1 \
                if generation is None else int(generation)
            if self._fold is None:
                self._fold = compiled.fold
            incoming = Generation(gen_id, compiled, self._max_flows,
                                  self._session_policy)
            return self._promote(incoming, True, t0, validate)

    def _promote(self, incoming: Generation, warm: bool, t0: float,
                 validate: Optional[
                     Callable[[CompiledDictionary], None]]) -> ReloadResult:
        """Shared promote tail: validate, stage, flip, carry, retire."""
        if validate is not None:
            try:
                validate(incoming.compiled)
            except BaseException:
                # Never staged: zero leases, so retire releases the
                # incoming pools inline and the old generation
                # stays active.
                incoming.retire()
                raise
        self._buffer.stage(incoming)
        retired = self._buffer.promote()
        # Carry sessions *after* the flip: new flow packets already
        # route to the incoming generation, and carry_from merges
        # with any that raced the promotion.  A lease taken before
        # the flip may still scan into the retired tables after
        # this carry — the drain hook moves that remainder over
        # when the last lease releases, so no totals are lost.
        flows = incoming.sessions.carry_from(retired.sessions)
        retired.on_drained = (
            lambda old=retired.sessions: self._absorb(old))
        retired.retire()
        seconds = time.perf_counter() - t0
        self.swap_count += 1
        self.last_swap_seconds = seconds
        return ReloadResult(
            generation=incoming.gen_id,
            seconds=seconds,
            warm=warm,
            patterns=incoming.compiled.num_patterns,
            slices=incoming.compiled.num_slices,
            states=incoming.compiled.total_states,
            flows_carried=flows)

    def _absorb(self, old_sessions: SessionScanner) -> None:
        """Drain-time carry: merge a fully retired generation's
        leftover session totals into whatever generation is active
        *now*.  Runs under the reload lock so a concurrent promote
        cannot strand the totals in another retiring generation."""
        with self._reload_lock:
            if not self._closed:
                self._buffer.active.sessions.carry_from(old_sessions)

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Retire the active generation and release its resources
        (idempotent; waits for nothing — leases drain it)."""
        with self._reload_lock:
            if self._closed:
                return
            self._closed = True
            self._buffer.active.retire()

    def __enter__(self) -> "DictionaryRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> dict:
        """Registry state for STATS and ``repro serve`` banners."""
        active = self._buffer.active
        sessions = active.sessions.stats()
        return {
            "generation": active.gen_id,
            "patterns": active.compiled.num_patterns,
            "slices": active.compiled.num_slices,
            "states": active.compiled.total_states,
            "fingerprint": active.compiled.fingerprint[:12],
            "regex": active.compiled.regex,
            "flows": sessions["flows"],
            "sessions": sessions,
            "swaps": self.swap_count,
            "last_swap_ms": self.last_swap_seconds * 1e3,
        }

    def __repr__(self) -> str:
        return (f"DictionaryRegistry(generation={self.generation}, "
                f"swaps={self.swap_count})")
