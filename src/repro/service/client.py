"""Blocking client for the scan daemon.

A thin synchronous wrapper over one TCP connection: build a frame, send
it, read exactly one response frame.  Stdlib-only (socket + the framing
module), so scripts, tests and the CI smoke job can drive a daemon
without importing numpy or the engines.

Every reply carries the dictionary ``generation`` that served it — the
client surfaces it on each result so callers can correlate responses
with hot reloads.
"""

from __future__ import annotations

import itertools
import socket
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .protocol import (Frame, ProtocolError, _PREFIX, encode_frame,
                       encode_patterns, split_body)

__all__ = ["ServiceClient", "ServiceError", "ScanResult", "FlowResult",
           "ReloadReply"]


class ServiceError(Exception):
    """A transport failure or an error response from the daemon.

    ``code`` carries the daemon's error code (``busy``, ``timeout``,
    ``draining``, ``flow-error``, ``bad-request``, ...) when the error
    came from a response frame.
    """

    def __init__(self, message: str, code: str = "client") -> None:
        super().__init__(message)
        self.code = code


@dataclass
class ScanResult:
    """One SCAN response."""

    matches: int
    bytes_scanned: int
    generation: int
    backend: str
    workers: int
    seconds: float
    events: Optional[List[Tuple[int, int]]] = None
    events_truncated: int = 0


@dataclass
class FlowResult:
    """One FLOW response."""

    matches: int          # new matches from this packet
    flow_total: int       # lifetime matches of the flow
    generation: int
    seconds: float
    #: Policy verdict for tenant-scoped flows (``forward`` = no rule
    #: fired; tenant-less flows always forward).
    action: str = "forward"
    #: Rule that determined ``action`` (None = none fired).
    rule: Optional[str] = None
    #: Rules newly triggered by this packet.
    triggered: List[str] = field(default_factory=list)


@dataclass
class ReloadReply:
    """One RELOAD response."""

    generation: int
    seconds: float
    warm: bool
    patterns: int
    slices: int
    states: int
    flows_carried: int
    raw: Dict[str, object] = field(default_factory=dict, repr=False)


class ServiceClient:
    """One connection to a :class:`~repro.service.daemon.ScanService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = socket.create_connection(
            (host, port), timeout=timeout)

    # -- transport -----------------------------------------------------------------

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServiceError("connection closed by the daemon",
                                   code="closed")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, header: Dict[str, object],
                payload: bytes = b"") -> Frame:
        """Send one frame, read one response frame; raises
        :class:`ServiceError` on transport failure or an error reply."""
        if self._sock is None:
            raise ServiceError("client is closed", code="closed")
        rid = next(self._ids)
        header = dict(header, id=rid)
        try:
            self._sock.sendall(encode_frame(header, payload))
            frame_len = _PREFIX.unpack(self._recv_exact(4))[0]
            frame = split_body(self._recv_exact(frame_len))
        except (OSError, ProtocolError) as exc:
            raise ServiceError(str(exc), code="transport") from exc
        if frame.header.get("id") not in (rid, None):
            raise ServiceError(
                f"response id {frame.header.get('id')} does not match "
                f"request id {rid}", code="transport")
        if not frame.ok:
            raise ServiceError(
                str(frame.header.get("error", "unknown error")),
                code=str(frame.header.get("code", "error")))
        return frame

    # -- verbs ---------------------------------------------------------------------

    def ping(self) -> int:
        """Liveness probe; returns the active dictionary generation."""
        return int(self.request({"verb": "PING"}).header["generation"])

    def scan(self, data: Union[str, bytes], backend: Optional[str] = None,
             workers: Optional[int] = None,
             events: bool = False,
             tenant: Optional[str] = None) -> ScanResult:
        """One-shot stateless scan of ``data`` (optionally through a
        tenant's dictionary)."""
        raw = data.encode() if isinstance(data, str) else bytes(data)
        header: Dict[str, object] = {"verb": "SCAN"}
        if backend:
            header["backend"] = backend
        if workers:
            header["workers"] = workers
        if events:
            header["events"] = True
        if tenant:
            header["tenant"] = tenant
        h = self.request(header, raw).header
        return ScanResult(
            matches=int(h["matches"]),
            bytes_scanned=int(h["bytes"]),
            generation=int(h["generation"]),
            backend=str(h.get("backend", "")),
            workers=int(h.get("workers", 1)),
            seconds=float(h.get("seconds", 0.0)),
            events=[(int(e[0]), int(e[1])) for e in h["events"]]
            if "events" in h else None,
            events_truncated=int(h.get("events_truncated", 0)))

    def scan_packet(self, flow_id: Union[str, int],
                    payload: Union[str, bytes],
                    tenant: Optional[str] = None) -> FlowResult:
        """Sessioned scan: ``payload`` continues flow ``flow_id``'s
        byte stream (matches may span packet boundaries).  With
        ``tenant``, the packet is judged by the tenant's policy and the
        result carries the verdict."""
        raw = payload.encode() if isinstance(payload, str) \
            else bytes(payload)
        header: Dict[str, object] = {"verb": "FLOW", "flow": flow_id}
        if tenant:
            header["tenant"] = tenant
        h = self.request(header, raw).header
        return FlowResult(
            matches=int(h["matches"]),
            flow_total=int(h["flow_total"]),
            generation=int(h["generation"]),
            seconds=float(h.get("seconds", 0.0)),
            action=str(h.get("action", "forward")),
            rule=h.get("rule"),
            triggered=list(h.get("triggered", [])))

    def close_flow(self, flow_id: Union[str, int],
                   tenant: Optional[str] = None) -> Tuple[int, int]:
        """Evict one flow; returns its lifetime ``(bytes, matches)``."""
        header: Dict[str, object] = {"verb": "CLOSE_FLOW",
                                     "flow": flow_id}
        if tenant:
            header["tenant"] = tenant
        h = self.request(header).header
        return int(h["bytes_seen"]), int(h["matches"])

    def reload(self, patterns: Iterable, regex: bool = False,
               tenant: Optional[str] = None) -> ReloadReply:
        """Hot-swap the daemon's dictionary (or one tenant's); returns
        the new generation."""
        payload = encode_patterns(list(patterns))
        header: Dict[str, object] = {"verb": "RELOAD", "regex": regex}
        if tenant:
            header["tenant"] = tenant
        h = self.request(header, payload).header
        return ReloadReply(
            generation=int(h["generation"]),
            seconds=float(h["seconds"]),
            warm=bool(h["warm"]),
            patterns=int(h["patterns"]),
            slices=int(h["slices"]),
            states=int(h["states"]),
            flows_carried=int(h["flows_carried"]),
            raw=dict(h))

    # -- tenants & policy ----------------------------------------------------------

    def tenant_create(self, name: str, patterns: Iterable,
                      rules: Optional[List[Dict[str, object]]] = None,
                      mode: str = "first-match",
                      regex: bool = False) -> Dict[str, object]:
        """Register a tenant with its own dictionary and (optional)
        ruleset; returns the creation reply header."""
        header: Dict[str, object] = {"verb": "TENANT", "op": "create",
                                     "name": name, "regex": regex}
        if rules:
            header["rules"] = list(rules)
            header["mode"] = mode
        payload = encode_patterns(list(patterns))
        return dict(self.request(header, payload).header)

    def tenant_delete(self, name: str) -> None:
        self.request({"verb": "TENANT", "op": "delete", "name": name})

    def tenants(self) -> List[str]:
        h = self.request({"verb": "TENANT", "op": "list"}).header
        return list(h.get("tenants", []))

    def tenant_info(self, name: str) -> Dict[str, object]:
        h = self.request({"verb": "TENANT", "op": "info",
                          "name": name}).header
        return dict(h.get("info", {}))

    def set_policy(self, tenant: str,
                   rules: List[Dict[str, object]],
                   mode: str = "first-match") -> int:
        """Hot-swap a tenant's ruleset; returns the policy generation."""
        h = self.request({"verb": "POLICY", "op": "set",
                          "tenant": tenant, "rules": list(rules),
                          "mode": mode}).header
        return int(h["policy_generation"])

    def policy(self, tenant: str) -> Dict[str, object]:
        """The tenant's active ruleset (specs + mode + generation)."""
        return dict(self.request({"verb": "POLICY", "op": "get",
                                  "tenant": tenant}).header)

    def stats(self) -> Dict[str, object]:
        """The daemon's metrics snapshot plus registry state."""
        return dict(self.request({"verb": "STATS"}).header)

    def shutdown(self) -> None:
        """Ask the daemon to drain and stop."""
        self.request({"verb": "SHUTDOWN"})
        self.close()
