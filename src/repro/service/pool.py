"""Gateway-side worker pool: fork, route, reload, restart.

The multi-process topology mirrors the paper's Cell layout: the
gateway is the PPE — it owns the network, compiles every dictionary
exactly once and orchestrates generation swaps — while each worker
process is an SPE that *attaches* to the compiled tables through
shared memory (:class:`~repro.core.scan.bundle.SharedArrayBundle`)
and runs the scan loops against its private flow state.

Three pieces live here:

* :class:`ConsistentHashRing` — flow placement.  ``(tenant, flow_id)``
  hashes onto a ring of virtual nodes so a flow's session state stays
  on one worker for its lifetime; a worker that dies and restarts
  reclaims exactly its old ring span (the ring is keyed by worker
  *index*, not pid), and while it is down its span drains to ring
  neighbours instead of rehashing the world.
* :class:`WorkerHandle` — one worker process plus its duplex pipe.  A
  sender thread drains an outbound queue, a receiver thread parks in
  ``recv`` and resolves pending futures on the gateway's event loop;
  an EOF fails every in-flight future with :class:`WorkerCrashError`
  (accounted by the daemon as rejects — never a silent drop) and
  triggers an automatic restart.
* :class:`WorkerPool` — the fleet: spawn-before-serving (workers fork
  before the gateway creates executors or binds its socket), bundle
  ownership (the gateway's copy of each generation's segment is
  unlinked only after every worker has attached the successor),
  striping for stateless scans, per-worker admission depths and
  crash/restart bookkeeping.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import math
import multiprocessing as mp
import queue
import threading
from typing import Dict, List, Optional, Tuple

from ..core.scan.bundle import SharedArrayBundle, bundle_from_compiled
from .worker import worker_main

__all__ = ["ConsistentHashRing", "WorkerCrashError", "WorkerOpError",
           "WorkerHandle", "WorkerPool", "PoolError"]


class PoolError(Exception):
    """Raised for unusable pool configurations or a dead fleet."""


class WorkerCrashError(Exception):
    """The worker died with requests in flight (or before accepting
    one).  The daemon surfaces this as a ``worker-crash`` error and
    counts it as a rejection — the client sees the failure, retries,
    and lands on the restarted worker or a ring neighbour."""

    code = "worker-crash"


class WorkerOpError(Exception):
    """A worker-side operation failed; carries the worker's error code
    so the gateway can echo the daemon's normal error taxonomy."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _hash64(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Consistent hashing over worker indices with virtual nodes.

    ~``vnodes`` points per worker keep the per-worker key share within
    a few percent of uniform; placement walks clockwise from the key's
    position to the first *alive* owner, so a dead worker's span
    spreads over its ring successors and snaps back when it returns.
    """

    def __init__(self, size: int, vnodes: int = 64) -> None:
        if size < 1:
            raise PoolError("ring needs at least one worker")
        points: List[Tuple[int, int]] = []
        for worker in range(size):
            for v in range(vnodes):
                points.append((_hash64(b"worker-%d-vnode-%d"
                                       % (worker, v)), worker))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [w for _, w in points]

    @staticmethod
    def key(tenant: str, flow_id: object) -> bytes:
        return ("%s\x00%r" % (tenant, flow_id)).encode()

    def place(self, tenant: str, flow_id: object,
              alive: List[bool]) -> int:
        """Worker index owning ``(tenant, flow_id)`` among ``alive``."""
        start = bisect.bisect_right(self._hashes,
                                    _hash64(self.key(tenant, flow_id)))
        n = len(self._owners)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if alive[owner]:
                return owner
        raise PoolError("no alive workers in the pool")


class WorkerHandle:
    """One forked worker process and its message plumbing.

    All future bookkeeping (``_pending``, ``depth``) is confined to the
    gateway's event loop: ``call`` runs on the loop and pipe events are
    marshalled back with ``call_soon_threadsafe``.
    """

    def __init__(self, index: int, ctx, init: Dict,
                 loop: asyncio.AbstractEventLoop,
                 on_down, on_slot) -> None:
        self.index = index
        self.loop = loop
        self.generation = int(init.get("generation", 1))
        self.alive = False
        self.stopping = False
        self.depth = 0
        self.info: Dict[str, object] = {}
        self._on_down = on_down
        self._on_slot = on_slot
        self._seq = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._send_q: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self.ready: asyncio.Future = loop.create_future()
        self._conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=worker_main, args=(child, init),
                                daemon=True,
                                name=f"repro-pool-worker-{index}")
        self.proc.start()
        child.close()
        self._sender = threading.Thread(
            target=self._send_loop, daemon=True,
            name=f"repro-pool-send-{index}")
        self._receiver = threading.Thread(
            target=self._recv_loop, daemon=True,
            name=f"repro-pool-recv-{index}")
        self._sender.start()
        self._receiver.start()

    # -- pipe threads ---------------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            msg = self._send_q.get()
            if msg is None:
                break
            try:
                self._conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                break

    def _recv_loop(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError, ValueError, TypeError):
                # ValueError/TypeError: the gateway closed the handle
                # (nulling its fd) between our recv calls during shutdown.
                break
            self.loop.call_soon_threadsafe(self._deliver, msg)
        self.loop.call_soon_threadsafe(self._on_eof)

    # -- event-loop side ------------------------------------------------------------

    def _deliver(self, msg: tuple) -> None:
        seq, ok, result = msg
        if seq == -1:
            if not self.ready.done():
                if ok:
                    self.alive = True
                    self.info = dict(result)
                    self.ready.set_result(result)
                else:
                    self.ready.set_exception(WorkerOpError(
                        result.get("code", "worker-init"),
                        str(result.get("error", "worker init failed"))))
            return
        fut = self._pending.pop(seq, None)
        if fut is None:
            return
        self.depth -= 1
        self._on_slot()
        if fut.done():
            return
        if ok:
            fut.set_result(result)
        else:
            fut.set_exception(WorkerOpError(
                result.get("code", "internal"),
                str(result.get("error", "worker error"))))

    def _on_eof(self) -> None:
        was_alive = self.alive
        self.alive = False
        if not self.ready.done():
            self.ready.set_exception(
                WorkerCrashError(f"worker {self.index} died during "
                                 f"startup"))
        pending, self._pending = self._pending, {}
        self.depth = 0
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(WorkerCrashError(
                    f"worker {self.index} died with the request in "
                    f"flight"))
        if pending:
            self._on_slot()
        if was_alive and not self.stopping:
            self._on_down(self, len(pending))

    def call(self, kind: str, meta: Optional[Dict] = None,
             payload: bytes = b"") -> "asyncio.Future":
        """Issue one op; resolves with the worker's result dict."""
        if not self.alive:
            fut = self.loop.create_future()
            fut.set_exception(WorkerCrashError(
                f"worker {self.index} is down"))
            return fut
        self._seq += 1
        fut = self.loop.create_future()
        self._pending[self._seq] = fut
        self.depth += 1
        self._send_q.put((kind, self._seq, meta or {}, payload))
        return fut

    def shutdown(self, timeout: float = 5.0) -> None:
        """Tear down the process and pipe threads (blocking; called
        off the hot path during service shutdown)."""
        self.stopping = True
        self.alive = False
        self._send_q.put(None)
        try:
            self._conn.close()
        except OSError:
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout)


class WorkerPool:
    """The gateway's fleet of scan workers.

    Owns the shared-memory bundles (one per scope: ``""`` for the
    default dictionary, tenant name otherwise), the placement ring and
    the per-worker admission depths.  Every public coroutine runs on
    the gateway's event loop.
    """

    def __init__(self, service) -> None:
        cfg = service.config
        if "fork" not in mp.get_all_start_methods():
            raise PoolError(
                "pool mode needs the fork start method (shared-memory "
                "attach without resource-tracker duplication)")
        self.service = service
        self.size = int(cfg.pool_workers)
        if self.size < 1:
            raise PoolError("pool_workers must be >= 1 in pool mode")
        self._ctx = mp.get_context("fork")
        self.ring = ConsistentHashRing(self.size)
        self.handles: List[WorkerHandle] = []
        #: scope -> (generation id, owned bundle)
        self._bundles: Dict[str, Tuple[int, SharedArrayBundle]] = {}
        #: Backpressure is budgeted per worker: the service-wide
        #: max_pending splits evenly so one hot hash span cannot
        #: starve the rest of the fleet.
        self.per_worker_cap = max(1, math.ceil(cfg.max_pending
                                               / self.size))
        self.restarts = 0
        self.crashed_requests = 0
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slot_cond: Optional[asyncio.Condition] = None

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        """Export bundles and fork the fleet.

        Must run before the gateway creates thread pools or binds its
        socket: fork duplicates the calling thread only, and a child
        must never inherit live executor threads or server FDs.
        """
        self._loop = asyncio.get_running_loop()
        self._slot_cond = asyncio.Condition()
        compiled = self.service.registry.active.compiled
        self._bundles[""] = (self.service.registry.generation,
                             bundle_from_compiled(compiled))
        for name in self.service.tenants.names():
            tenant = self.service.tenants.get(name)
            self._bundles[name] = (
                tenant.registry.generation,
                bundle_from_compiled(tenant.registry.active.compiled))
        for index in range(self.size):
            self.handles.append(self._spawn(index))
        await asyncio.gather(*(h.ready for h in self.handles))

    def _init_for(self, index: int) -> Dict:
        cfg = self.service.config
        gen, bundle = self._bundles[""]
        init: Dict[str, object] = {
            "bundle_meta": bundle.meta(),
            "generation": gen,
            "config": {
                "max_flows": cfg.max_flows,
                "session_policy": cfg.session_policy,
                "max_events": cfg.max_events,
            },
            "tenants": [],
        }
        for name, (tgen, tbundle) in self._bundles.items():
            if not name:
                continue
            try:
                tenant = self.service.tenants.get(name)
            except Exception:
                continue
            init["tenants"].append({
                "name": name,
                "bundle_meta": tbundle.meta(),
                "generation": tgen,
                "rules": tenant.ruleset.to_specs(),
                "mode": tenant.ruleset.mode,
            })
        return init

    def _spawn(self, index: int) -> WorkerHandle:
        return WorkerHandle(index, self._ctx, self._init_for(index),
                            self._loop, self._worker_down,
                            self._notify_slot)

    def _worker_down(self, handle: WorkerHandle, in_flight: int) -> None:
        """Crash callback (event loop): account the dropped requests
        and bring a replacement up on the same ring position."""
        self.restarts += 1
        self.crashed_requests += in_flight
        for _ in range(in_flight):
            self.service.metrics.record_rejected()
        if not self._stopping:
            self._loop.create_task(self._restart(handle.index))

    async def _restart(self, index: int) -> None:
        handle = self._spawn(index)
        self.handles[index] = handle
        try:
            await asyncio.wait_for(asyncio.shield(handle.ready), 30.0)
        except (WorkerCrashError, WorkerOpError, asyncio.TimeoutError):
            # Replacement failed too; its span keeps draining to ring
            # neighbours and the next crash cycle may retry.
            pass

    async def stop(self) -> None:
        """Graceful drain: every live worker acks a ``stop`` (closing
        its sessions and attachments), then processes and owned
        segments are torn down."""
        self._stopping = True
        futs = []
        for handle in self.handles:
            handle.stopping = True
            if handle.alive:
                futs.append(handle.call("stop"))
        if futs:
            await asyncio.wait(futs, timeout=10.0)
        for handle in self.handles:
            handle.shutdown()
        for _, bundle in self._bundles.values():
            bundle.close()
        self._bundles.clear()

    # -- placement & admission ------------------------------------------------------

    def _alive_mask(self) -> List[bool]:
        return [h.alive for h in self.handles]

    def place(self, tenant: Optional[str], flow_id: object
              ) -> WorkerHandle:
        """The worker owning this flow's hash span."""
        index = self.ring.place(tenant or "", flow_id,
                                self._alive_mask())
        return self.handles[index]

    def least_loaded(self) -> WorkerHandle:
        """Stripe a stateless request to the idlest live worker."""
        alive = [h for h in self.handles if h.alive]
        if not alive:
            raise WorkerCrashError("no alive workers in the pool")
        return min(alive, key=lambda h: h.depth)

    def _notify_slot(self) -> None:
        if self._slot_cond is not None:
            self._loop.create_task(self._wake_waiters())

    async def _wake_waiters(self) -> None:
        async with self._slot_cond:
            self._slot_cond.notify_all()

    def has_slot(self, handle: WorkerHandle) -> bool:
        return handle.depth < self.per_worker_cap

    async def wait_for_slot(self, handle: WorkerHandle) -> None:
        """Block until the worker's depth dips under its cap (used by
        the ``wait`` admission policy; soft — a burst of waiters waking
        together may briefly overshoot the cap, which only deepens the
        worker's mailbox, never loses a request)."""
        async with self._slot_cond:
            await self._slot_cond.wait_for(
                lambda: not handle.alive or self.has_slot(handle))

    # -- fleet ops ------------------------------------------------------------------

    async def broadcast(self, kind: str, meta: Optional[Dict] = None,
                        payload: bytes = b""
                        ) -> List[Tuple[int, Dict]]:
        """Fan one op out to every live worker; returns
        ``(index, result)`` pairs for the workers that acked.  A worker
        crashing mid-broadcast is skipped — its replacement is
        re-initialized from the pool's current state, which already
        includes whatever this broadcast is installing."""
        calls = [(h.index, h.call(kind, meta, payload))
                 for h in self.handles if h.alive]
        acks: List[Tuple[int, Dict]] = []
        for index, fut in calls:
            try:
                acks.append((index, await fut))
            except WorkerCrashError:
                continue
        return acks

    async def swap(self, scope: str, bundle: SharedArrayBundle,
                   generation: int) -> int:
        """Install a new dictionary generation fleet-wide.

        Lease-before-retire across processes: the pool's scope entry is
        flipped *first* (so a worker restarting mid-swap initializes on
        the new generation), every worker attaches and promotes before
        acking, and only after the last ack does the gateway close the
        superseded segment.  Returns the total flows carried across the
        swap, summed over workers.
        """
        old = self._bundles.get(scope)
        self._bundles[scope] = (generation, bundle)
        meta: Dict[str, object] = {"bundle_meta": bundle.meta(),
                                   "generation": generation}
        if scope:
            meta["tenant"] = scope
        try:
            acks = await self.broadcast("reload", meta)
        except WorkerOpError:
            # A worker refused the generation (validation failure).
            # The gateway-side compile already validated, so this is
            # exceptional; keep the new bundle installed for restarts
            # and surface the error.
            raise
        finally:
            if old is not None:
                old[1].close()
        if not scope:
            for handle in self.handles:
                if handle.alive:
                    handle.generation = generation
        return sum(int(ack.get("flows_carried", 0))
                   for _, ack in acks)

    async def tenant_create(self, name: str,
                            bundle: SharedArrayBundle,
                            generation: int,
                            rules: List[Dict], mode: str) -> None:
        self._bundles[name] = (generation, bundle)
        await self.broadcast("tenant_create", {
            "name": name,
            "bundle_meta": bundle.meta(),
            "generation": generation,
            "rules": rules,
            "mode": mode,
        })

    async def tenant_delete(self, name: str) -> None:
        await self.broadcast("tenant_delete", {"name": name})
        entry = self._bundles.pop(name, None)
        if entry is not None:
            entry[1].close()

    # -- observability --------------------------------------------------------------

    def describe(self, stats: Optional[List[Tuple[int, Dict]]] = None
                 ) -> Dict[str, object]:
        """The STATS ``pool`` section; ``stats`` are per-worker
        ``stats`` op acks to fold in (flows, builds, generation)."""
        by_index = dict(stats or ())
        workers = []
        for handle in self.handles:
            ack = by_index.get(handle.index, {})
            workers.append({
                "index": handle.index,
                "pid": handle.proc.pid,
                "alive": handle.alive,
                "depth": handle.depth,
                "generation": ack.get("generation",
                                      handle.generation),
                "flows": ack.get("flows", 0),
                "automaton_builds": ack.get(
                    "automaton_builds",
                    handle.info.get("automaton_builds", 0)),
            })
        return {
            "size": self.size,
            "per_worker_cap": self.per_worker_cap,
            "restarts": self.restarts,
            "crashed_requests": self.crashed_requests,
            "flows": sum(int(w["flows"]) for w in workers),
            "workers": workers,
        }
