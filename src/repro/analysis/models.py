"""Analytic performance models and the paper's reference numbers.

Everything the evaluation section states numerically lives here, so the
benchmarks can print paper-vs-measured side by side and the tests can pin
the analytic laws:

* Table 1 — the five implementation versions;
* Figure 2 — bandwidth operating points (via :mod:`repro.cell.memory`);
* Figure 3 — the local-store cases (via :mod:`repro.core.planner`);
* Figure 5 — the 16 KB double-buffering periods;
* §5 — composition throughput (5.11 × tiles, 40.88 Gbps per chip,
  81.76 Gbps per blade);
* §6 / Figure 9 — the replacement law 5.11/(2(n−1)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cell.spu import CLOCK_HZ

__all__ = [
    "Table1Row",
    "PAPER_TABLE1",
    "PAPER_TILE_GBPS",
    "PAPER_CHIP_GBPS",
    "PAPER_BLADE_GBPS",
    "PAPER_COMPUTE_PERIOD_US",
    "PAPER_TRANSFER_US",
    "PAPER_WORST_CASE_SPE_BW",
    "gbps_from_cycles_per_transition",
    "cycles_per_transition_from_gbps",
    "parallel_gbps",
    "replacement_gbps",
    "spes_for_line_rate",
]


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1."""

    version: int
    simd: bool
    unroll: Optional[int]
    total_cycles: int
    transitions: int
    cycles_per_transition: float
    throughput_mtps: float          # million transitions / second
    throughput_gbps: float
    cpi: float
    dual_issue_pct: float
    stall_pct: float
    registers: Optional[int]        # None = "spill"
    speedup: float


#: Table 1 of the paper, verbatim.
PAPER_TABLE1: Dict[int, Table1Row] = {
    1: Table1Row(1, False, None, 311316, 16384, 19.00, 168.41, 1.35,
                 2.60, 0.0, 63.2, 4, 1.00),
    2: Table1Row(2, True, None, 123976, 16384, 7.57, 422.89, 3.38,
                 0.67, 43.8, 7.4, 40, 2.51),
    3: Table1Row(3, True, 2, 90200, 16384, 5.51, 581.25, 4.65,
                 0.63, 48.3, 0.0, 81, 3.45),
    4: Table1Row(4, True, 3, 82182, 16416, 5.01, 639.21, 5.11,
                 0.64, 48.7, 0.0, 124, 3.79),
    5: Table1Row(5, True, 4, 91833, 16384, 5.61, 570.91, 4.57,
                 0.62, 48.6, 0.6, None, 3.39),
}

#: Peak single-tile throughput (Table 1, version 4).
PAPER_TILE_GBPS = 5.11

#: One chip, 8 SPEs in parallel (§5).
PAPER_CHIP_GBPS = 40.88

#: A dual-Cell blade (§5).
PAPER_BLADE_GBPS = 81.76

#: Figure 5's compute period for a 16 KB block at 5.11 Gbps.
PAPER_COMPUTE_PERIOD_US = 25.64

#: Figure 5's transfer time for 16 KB at the worst-case per-SPE bandwidth.
PAPER_TRANSFER_US = 5.94

#: Worst-case per-SPE main-memory bandwidth (22.05 GB/s ÷ 8).
PAPER_WORST_CASE_SPE_BW = 2.76e9


def gbps_from_cycles_per_transition(cpt: float,
                                    clock_hz: float = CLOCK_HZ) -> float:
    """One byte per transition: Gbps = 8 × clock / cpt / 1e9."""
    if cpt <= 0:
        raise ValueError("cycles per transition must be positive")
    return 8.0 * clock_hz / cpt / 1e9


def cycles_per_transition_from_gbps(gbps: float,
                                    clock_hz: float = CLOCK_HZ) -> float:
    if gbps <= 0:
        raise ValueError("throughput must be positive")
    return 8.0 * clock_hz / (gbps * 1e9)


def parallel_gbps(num_tiles: int, per_tile_gbps: float = PAPER_TILE_GBPS
                  ) -> float:
    """§5: parallel tiles multiply throughput (embarrassingly parallel)."""
    if num_tiles < 1:
        raise ValueError("need at least one tile")
    return num_tiles * per_tile_gbps


def replacement_gbps(num_slices: int, num_spes: int = 1,
                     per_tile_gbps: float = PAPER_TILE_GBPS) -> float:
    """§6's law (re-exported for symmetry with the other models)."""
    from ..core.replacement import effective_gbps
    return effective_gbps(num_slices, per_tile_gbps, num_spes)


def spes_for_line_rate(line_gbps: float,
                       per_tile_gbps: float = PAPER_TILE_GBPS) -> int:
    """SPEs needed to filter a link in real time — the paper's headline:
    two SPEs suffice for a 10 Gbps link."""
    if line_gbps <= 0:
        raise ValueError("line rate must be positive")
    return max(1, -(-int(line_gbps * 1000) // int(per_tile_gbps * 1000)))
