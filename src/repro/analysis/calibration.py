"""Bandwidth-model calibration: fit Figure-2 parameters from measurements.

The memory model has three parameters — per-transfer setup time, per-SPE
link rate, and the contended aggregate cap.  The defaults are calibrated
to the paper's figure, but a user porting the models to other hardware (or
to refined Cell measurements) can re-fit them from observed
(block_size, num_spes, bandwidth) samples.

The per-SPE law is ``bs / (setup + bs / link)``; rearranged per sample,
``bs / bw = setup + bs / link`` is *linear* in (1, bs), so the fit is an
ordinary least-squares on uncapped samples.  The aggregate cap is read off
the saturated samples directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..cell.memory import BandwidthModel

__all__ = ["CalibrationSample", "fit_bandwidth_model", "CalibrationError"]


class CalibrationError(Exception):
    """Raised when the samples cannot constrain the model."""


@dataclass(frozen=True)
class CalibrationSample:
    """One measurement: aggregate bandwidth at (num_spes, block_size)."""

    num_spes: int
    block_size: int
    aggregate_bytes_per_s: float

    def __post_init__(self) -> None:
        if not 1 <= self.num_spes <= 8:
            raise CalibrationError("num_spes must be 1..8")
        if self.block_size <= 0:
            raise CalibrationError("block_size must be positive")
        if self.aggregate_bytes_per_s <= 0:
            raise CalibrationError("bandwidth must be positive")


def fit_bandwidth_model(samples: Sequence[CalibrationSample],
                        saturation_tolerance: float = 0.02
                        ) -> BandwidthModel:
    """Least-squares fit of (setup, link, aggregate cap) from samples.

    Saturated samples (several SPE counts yielding the same aggregate for
    a block size, within ``saturation_tolerance``) define the cap; the
    rest constrain the linear per-SPE law.  Needs at least two uncapped
    samples at distinct block sizes.
    """
    if len(samples) < 3:
        raise CalibrationError("need at least three samples")

    values = sorted(s.aggregate_bytes_per_s for s in samples)
    cap = values[-1]
    # Saturated = within tolerance of the maximum observed aggregate.
    uncapped = [s for s in samples
                if s.aggregate_bytes_per_s < cap * (1 - saturation_tolerance)]
    capped = [s for s in samples if s not in uncapped]
    if len(capped) < 1:
        raise CalibrationError("no saturated sample to define the cap")

    # Per-SPE rate of uncapped samples: aggregate / P = bs/(setup+bs/link)
    # -> bs * P / aggregate = setup + bs / link.
    rows = []
    rhs = []
    block_sizes = set()
    for s in uncapped:
        per_spe = s.aggregate_bytes_per_s / s.num_spes
        rows.append([1.0, s.block_size])
        rhs.append(s.block_size / per_spe)
        block_sizes.add(s.block_size)
    if len(block_sizes) < 2:
        raise CalibrationError(
            "need uncapped samples at two or more block sizes to separate "
            "setup time from link rate")
    coeffs, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(rhs),
                                 rcond=None)
    setup, inv_link = float(coeffs[0]), float(coeffs[1])
    if setup <= 0 or inv_link <= 0:
        raise CalibrationError(
            f"fit produced non-physical parameters (setup={setup:.3g}s, "
            f"1/link={inv_link:.3g}); check the samples")
    return BandwidthModel(
        heavy_traffic_aggregate=cap,
        spe_link=1.0 / inv_link,
        setup_s=setup,
    )
