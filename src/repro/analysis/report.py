"""Plain-text reporting: tables, paper-vs-measured comparisons, and ASCII
line charts for the figure benches.

The benchmark harness prints everything through these helpers so each
bench's output looks like the table or figure it reproduces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

__all__ = ["ascii_table", "comparison_table", "ascii_chart", "format_si",
           "outcome_table", "metrics_table"]

Cell = Union[str, int, float, None]


def _fmt(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                title: Optional[str] = None) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(metric_rows: Sequence[Tuple[str, float, float]],
                     title: Optional[str] = None,
                     paper_label: str = "paper",
                     measured_label: str = "measured") -> str:
    """Paper-vs-measured with a ratio column.

    ``metric_rows`` is (name, paper_value, measured_value); the ratio is
    measured/paper, the number EXPERIMENTS.md tracks per experiment.
    """
    rows: List[List[Cell]] = []
    for name, paper, measured in metric_rows:
        ratio = measured / paper if paper else float("nan")
        rows.append([name, paper, measured, ratio])
    return ascii_table(
        ["metric", paper_label, measured_label, "ratio"], rows, title)


def ascii_chart(series: Sequence[Tuple[str, Sequence[float],
                                       Sequence[float]]],
                width: int = 64, height: int = 16,
                title: Optional[str] = None,
                x_label: str = "", y_label: str = "") -> str:
    """Multi-series scatter/line chart in ASCII (one marker per series).

    Good enough to eyeball the *shape* of a reproduced figure — decay
    curves, saturation plateaus, crossovers.
    """
    markers = "ox+*#@%&"
    pts = []
    for si, (_, xs, ys) in enumerate(series):
        if len(xs) != len(ys):
            raise ValueError("series x/y length mismatch")
        for x, y in zip(xs, ys):
            pts.append((x, y, markers[si % len(markers)]))
    if not pts:
        return "(empty chart)"
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts)
    ymin = min(p[1] for p in pts)
    ymax = max(p[1] for p in pts)
    ymin = min(ymin, 0.0)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, m in pts:
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        grid[row][col] = m
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:10.2f} +" + "-" * width + "+")
    for r, row in enumerate(grid):
        prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row) + "|")
    lines.append(f"{ymin:10.2f} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{xmin:<12.4g}{x_label:^{max(0, width - 24)}}"
                 f"{xmax:>12.4g}")
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, (name, _, _) in enumerate(series))
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"y: {y_label}")
    return "\n".join(lines)


def outcome_table(outcomes: Sequence[object],
                  title: Optional[str] = None) -> str:
    """One row per :class:`~repro.core.backends.ScanOutcome` — the
    unified way benches and the CLI print cross-backend sweeps.

    Duck-typed (any object with ``backend``/``workers``/
    ``total_matches``/``bytes_scanned``/``seconds``/``gbps`` works) so
    this layer never imports the core package.
    """
    rows: List[List[Cell]] = []
    for o in outcomes:
        rows.append([
            getattr(o, "backend", "?"),
            getattr(o, "workers", 1),
            getattr(o, "total_matches", None),
            getattr(o, "bytes_scanned", None),
            getattr(o, "seconds", 0.0),
            getattr(o, "gbps", 0.0),
        ])
    return ascii_table(
        ["backend", "workers", "matches", "bytes", "seconds", "Gbps"],
        rows, title)


def metrics_table(snapshot, title: Optional[str] = None) -> str:
    """Render a :meth:`~repro.service.metrics.ServiceMetrics.snapshot`
    (or the ``metrics`` field of a STATS response) as tables.

    Duck-typed on the snapshot dict so this layer never imports the
    service package: a per-backend latency table plus a counter summary
    covering requests, admission control and reloads.
    """
    lines = []
    backends = snapshot.get("backends", {})
    rows: List[List[Cell]] = [
        [name, h.get("count"), h.get("p50_ms"), h.get("p95_ms"),
         h.get("p99_ms"), h.get("mean_ms"), h.get("max_ms")]
        for name, h in sorted(backends.items())]
    lines.append(ascii_table(
        ["backend", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms",
         "max ms"],
        rows, title=title or "service latency by backend"))
    requests = snapshot.get("requests", {})
    admission = snapshot.get("admission", {})
    reloads = snapshot.get("reloads", {})
    swap = reloads.get("swap_latency", {})
    summary: List[Sequence[Cell]] = [
        ["requests", requests.get("total", 0)],
        ["bytes scanned", snapshot.get("bytes_scanned", 0)],
        ["matches", snapshot.get("matches", 0)],
        ["errors", snapshot.get("errors", 0)],
        ["rejected", admission.get("rejected", 0)],
        ["timeouts", admission.get("timeouts", 0)],
        ["queue high-water", admission.get("queue_high_water", 0)],
        ["reloads (warm)", f"{reloads.get('count', 0)} "
                           f"({reloads.get('warm', 0)})"],
        ["swap p95 ms", swap.get("p95_ms", 0.0)],
        ["flow evictions", snapshot.get("flow_evictions", 0)],
    ]
    batches = snapshot.get("batches", {})
    if batches.get("count"):
        summary.append(
            ["batches (mean occ.)",
             f"{batches.get('count', 0)} "
             f"({batches.get('mean_occupancy', 0.0):.2f})"])
    lines.append("")
    lines.append(ascii_table(["counter", "value"], summary))
    scanners = snapshot.get("scanners", {})
    if scanners:
        rows = [
            [gen_id, agg.get("scanner", "?"), agg.get("batches", 0),
             agg.get("steps", 0), agg.get("cold_steps", 0),
             agg.get("escapes", 0),
             f"{agg.get('hot_hit_rate', 1.0):.4f}"]
            for gen_id, agg in sorted(scanners.items())]
        lines.append("")
        lines.append(ascii_table(
            ["generation", "scanner", "batches", "steps", "cold steps",
             "escapes", "hot hit rate"],
            rows, title="hot/cold scanner stats by generation"))
    return "\n".join(lines)


def format_si(value: float, unit: str = "") -> str:
    """Human-readable SI formatting (1.5e9 -> '1.50 G')."""
    for factor, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"),
                           (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.2f} {prefix}{unit}"
    return f"{value:.2f} {unit}"
