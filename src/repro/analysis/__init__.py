"""Analysis helpers: the paper's reference numbers, analytic throughput
models, and plain-text reporting for the benchmark harness."""

from .models import (PAPER_BLADE_GBPS, PAPER_CHIP_GBPS,
                     PAPER_COMPUTE_PERIOD_US, PAPER_TABLE1, PAPER_TILE_GBPS,
                     PAPER_TRANSFER_US, PAPER_WORST_CASE_SPE_BW, Table1Row,
                     cycles_per_transition_from_gbps,
                     gbps_from_cycles_per_transition, parallel_gbps,
                     replacement_gbps, spes_for_line_rate)
from .calibration import (CalibrationError, CalibrationSample,
                          fit_bandwidth_model)
from .report import (ascii_chart, ascii_table, comparison_table, format_si,
                     metrics_table, outcome_table)

__all__ = [
    "PAPER_BLADE_GBPS",
    "PAPER_CHIP_GBPS",
    "PAPER_COMPUTE_PERIOD_US",
    "PAPER_TABLE1",
    "PAPER_TILE_GBPS",
    "PAPER_TRANSFER_US",
    "PAPER_WORST_CASE_SPE_BW",
    "Table1Row",
    "cycles_per_transition_from_gbps",
    "gbps_from_cycles_per_transition",
    "parallel_gbps",
    "replacement_gbps",
    "spes_for_line_rate",
    "CalibrationError",
    "CalibrationSample",
    "fit_bandwidth_model",
    "ascii_chart",
    "ascii_table",
    "comparison_table",
    "format_si",
    "metrics_table",
    "outcome_table",
]
