"""repro — reproduction of *Peak-Performance DFA-based String Matching on
the Cell Processor* (Scarpazza, Villa & Petrini, IPPS 2007).

The package is layered bottom-up:

* :mod:`repro.cell` — Cell BE simulator substrate (SPU, local store, MFC,
  EIB/memory bandwidth model);
* :mod:`repro.dfa` — DFA construction (alphabet folding, Aho–Corasick,
  regex pipeline, minimization, partitioning);
* :mod:`repro.core` — the paper's contribution: DFA tiles, the five
  Table-1 kernels, composition, dynamic STT replacement, the vectorized
  engine and the high-level :class:`CellStringMatcher` API;
* :mod:`repro.baselines` — comparison algorithms (KMP, Boyer–Moore,
  Commentz–Walter, Wu–Manber, Bloom filters, naive);
* :mod:`repro.workloads` — synthetic dictionaries and traffic;
* :mod:`repro.analysis` — analytic models, paper reference numbers and
  report rendering.

Quickstart::

    from repro import CellStringMatcher
    matcher = CellStringMatcher(["virus", "worm", "trojan"])
    report = matcher.scan("A Virus and a WORM walked into a bar")
    assert report.total_matches == 2
"""

from .core.backends import ScanOutcome, backend_names
from .core.compiled import (ArtifactCache, CompiledDictionary,
                            compile_dictionary)
from .core.engine import VectorDFAEngine
from .core.matcher import CellStringMatcher, ScanReport
from .core.tile import DFATile
from .dfa.aho_corasick import AhoCorasick
from .dfa.alphabet import FoldMap, case_fold_32, identity_fold
from .dfa.automaton import DFA, MatchEvent
from .dfa.regex import compile_patterns, compile_regex

__version__ = "1.0.0"

__all__ = [
    "AhoCorasick",
    "ArtifactCache",
    "CellStringMatcher",
    "CompiledDictionary",
    "DFA",
    "DFATile",
    "FoldMap",
    "MatchEvent",
    "ScanOutcome",
    "ScanReport",
    "VectorDFAEngine",
    "backend_names",
    "compile_dictionary",
    "case_fold_32",
    "compile_patterns",
    "compile_regex",
    "identity_fold",
    "__version__",
]
