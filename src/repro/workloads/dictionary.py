"""Dictionary (signature set) generators.

The paper evaluates with dictionaries sized to the tile budget (~800–1712
states).  Since the original signature sets (Snort-era rules) are not
shipped, these generators produce synthetic dictionaries with controllable
statistics: count, length distribution, shared-prefix density (which
drives trie/state growth), and alphabet.

All generators emit *folded* patterns (symbols < alphabet width) unless
asked for raw ASCII; determinism comes from the caller's seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..dfa.partition import trie_states

__all__ = [
    "random_signatures",
    "signatures_for_states",
    "prefix_heavy_signatures",
    "ascii_keywords",
]

#: Security-flavoured ASCII keywords for realistic-looking dictionaries.
_KEYWORD_STEMS = [
    "ATTACK", "BACKDOOR", "BOTNET", "BUFFER", "CMDEXE", "DOWNLOAD",
    "EXPLOIT", "FORMAT", "GETROOT", "INJECT", "KEYLOG", "MALWARE",
    "OVERFLOW", "PASSWD", "PAYLOAD", "PHISH", "ROOTKIT", "SCRIPT",
    "SHELLCODE", "SPYWARE", "TROJAN", "VIRUS", "WORM", "XPLOIT",
]


def random_signatures(count: int, min_len: int = 4, max_len: int = 12,
                      alphabet_size: int = 32,
                      seed: Optional[int] = None,
                      avoid_symbol: Optional[int] = 0) -> List[bytes]:
    """Uniform random folded signatures, distinct, never empty.

    ``avoid_symbol`` (default 0, the fold's "everything else" bucket) is
    excluded so signatures cannot match runs of unmapped bytes by accident;
    pass ``None`` to allow the full range.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if not 1 <= min_len <= max_len:
        raise ValueError("need 1 <= min_len <= max_len")
    rng = np.random.default_rng(seed)
    lo = 1 if avoid_symbol == 0 else 0
    if alphabet_size - lo < 1:
        raise ValueError("alphabet too small")
    seen = set()
    out: List[bytes] = []
    attempts = 0
    while len(out) < count:
        attempts += 1
        if attempts > 100 * count:
            raise ValueError(
                f"cannot generate {count} distinct signatures with these "
                f"parameters")
        n = int(rng.integers(min_len, max_len + 1))
        sig = bytes(rng.integers(lo, alphabet_size, n, dtype=np.uint8))
        if avoid_symbol is not None and avoid_symbol != 0 \
                and avoid_symbol in sig:
            continue
        if sig not in seen:
            seen.add(sig)
            out.append(sig)
    return out


def signatures_for_states(target_states: int, min_len: int = 4,
                          max_len: int = 12, alphabet_size: int = 32,
                          seed: Optional[int] = None) -> List[bytes]:
    """Grow a dictionary until its Aho–Corasick automaton has at least
    ``target_states`` states (overshooting by at most ``max_len``) — used
    to build tiles at the paper's 800/1520/1648/1712-state operating
    points.  The trie is grown incrementally, so this is O(total states)."""
    if target_states < 2:
        raise ValueError("target_states must be >= 2")
    if not 1 <= min_len <= max_len:
        raise ValueError("need 1 <= min_len <= max_len")
    rng = np.random.default_rng(seed)
    from ..dfa.partition import _TrieCounter
    trie = _TrieCounter()
    sigs: List[bytes] = []
    seen = set()
    attempts = 0
    while trie.num_states < target_states:
        attempts += 1
        if attempts > 100 * target_states:
            raise ValueError(
                "cannot reach the requested state count with these "
                "parameters")
        n = int(rng.integers(min_len, max_len + 1))
        sig = bytes(rng.integers(1, alphabet_size, n, dtype=np.uint8))
        if sig in seen or trie.added_states(sig) == 0:
            continue
        seen.add(sig)
        sigs.append(sig)
        trie.insert(sig)
    return sigs


def prefix_heavy_signatures(count: int, prefix_len: int = 6,
                            suffix_len: int = 4, num_prefixes: int = 4,
                            alphabet_size: int = 32,
                            seed: Optional[int] = None) -> List[bytes]:
    """Signatures sharing a few long prefixes: stresses trie sharing (many
    patterns, few states) — the dense end of the dictionary spectrum."""
    if count <= 0 or num_prefixes <= 0:
        raise ValueError("count and num_prefixes must be positive")
    rng = np.random.default_rng(seed)
    prefixes = [bytes(rng.integers(1, alphabet_size, prefix_len,
                                   dtype=np.uint8))
                for _ in range(num_prefixes)]
    seen = set()
    out: List[bytes] = []
    attempts = 0
    while len(out) < count:
        attempts += 1
        if attempts > 100 * count:
            raise ValueError("cannot generate enough distinct signatures")
        pre = prefixes[int(rng.integers(0, num_prefixes))]
        suf = bytes(rng.integers(1, alphabet_size, suffix_len,
                                 dtype=np.uint8))
        sig = pre + suf
        if sig not in seen:
            seen.add(sig)
            out.append(sig)
    return out


def ascii_keywords(count: int, seed: Optional[int] = None) -> List[bytes]:
    """Realistic-looking ASCII signatures built from security keyword
    stems (fold them with :func:`repro.dfa.case_fold_32` before use)."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    out: List[bytes] = []
    seen = set()
    while len(out) < count:
        stem = _KEYWORD_STEMS[int(rng.integers(0, len(_KEYWORD_STEMS)))]
        suffix = "".join(chr(ord("A") + int(c))
                         for c in rng.integers(0, 26, 3))
        word = (stem + suffix).encode()
        if word not in seen:
            seen.add(word)
            out.append(word)
    return out
