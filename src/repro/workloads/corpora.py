"""Structured corpora: traffic that *looks* like the real thing.

Uniform noise exercises the engines' steady state, but some behaviours
only show up on structured input: letter-frequency text drives the fold's
letter buckets hard (more non-root DFA states visited), HTTP-ish headers
contain the keyword stems real rules target, and log-like lines mix both.
All generators emit raw ASCII bytes (fold before feeding folded-alphabet
engines) and are deterministic under a seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["english_like", "http_requests", "log_lines"]

# Approximate English letter frequencies (A..Z, percent).
_LETTER_FREQ = np.array([
    8.17, 1.49, 2.78, 4.25, 12.70, 2.23, 2.02, 6.09, 6.97, 0.15, 0.77,
    4.03, 2.41, 6.75, 7.51, 1.93, 0.10, 5.99, 6.33, 9.06, 2.76, 0.98,
    2.36, 0.15, 1.97, 0.07,
])

_HTTP_METHODS = [b"GET", b"POST", b"PUT", b"HEAD", b"DELETE"]
_HTTP_PATHS = [b"/index.html", b"/api/v1/users", b"/login", b"/search",
               b"/static/app.js", b"/admin", b"/upload", b"/health"]
_HTTP_AGENTS = [b"Mozilla/5.0", b"curl/8.1", b"python-requests/2.31",
                b"Wget/1.21", b"masscan/1.3"]
_LOG_LEVELS = [b"INFO", b"WARN", b"ERROR", b"DEBUG"]
_LOG_WORDS = [b"connection", b"accepted", b"refused", b"timeout",
              b"packet", b"dropped", b"firewall", b"session", b"auth",
              b"failed", b"retry", b"upstream", b"payload", b"scan"]


def english_like(length: int, seed: Optional[int] = None,
                 word_len_mean: float = 5.0) -> bytes:
    """Letter-frequency text with spaces — dense in fold-letter symbols."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    probs = _LETTER_FREQ / _LETTER_FREQ.sum()
    out = bytearray()
    while len(out) < length:
        n = max(1, int(rng.poisson(word_len_mean)))
        letters = rng.choice(26, size=n, p=probs)
        # Mixed case, like prose.
        word = bytes(int(c) + (ord("A") if rng.random() < 0.1
                               else ord("a")) for c in letters)
        out += word + b" "
    return bytes(out[:length])


def http_requests(count: int, seed: Optional[int] = None,
                  inject: Sequence[bytes] = ()) -> List[bytes]:
    """Plausible HTTP request payloads; ``inject`` strings are planted in
    a random header of some requests (the NIDS true-positive path)."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        method = _HTTP_METHODS[int(rng.integers(len(_HTTP_METHODS)))]
        path = _HTTP_PATHS[int(rng.integers(len(_HTTP_PATHS)))]
        agent = _HTTP_AGENTS[int(rng.integers(len(_HTTP_AGENTS)))]
        body = english_like(int(rng.integers(40, 400)),
                            seed=int(rng.integers(2 ** 31)))
        extra = b""
        if inject and rng.random() < 0.3:
            payload = inject[int(rng.integers(len(inject)))]
            extra = b"X-Data: " + payload + b"\r\n"
        requests.append(
            method + b" " + path + b" HTTP/1.1\r\n"
            b"Host: example.test\r\n"
            b"User-Agent: " + agent + b"\r\n" + extra +
            b"\r\n" + body)
    return requests


def log_lines(count: int, seed: Optional[int] = None) -> bytes:
    """Syslog-ish lines: timestamps, levels, keyword-rich messages."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    lines = []
    t = 0
    for _ in range(count):
        t += int(rng.integers(1, 90))
        level = _LOG_LEVELS[int(rng.integers(len(_LOG_LEVELS)))]
        k = int(rng.integers(2, 6))
        words = b" ".join(
            _LOG_WORDS[int(rng.integers(len(_LOG_WORDS)))]
            for _ in range(k))
        host = int(rng.integers(1, 255))
        lines.append(b"%08d host10.0.0.%d %s %s" % (t, host, level, words))
    return b"\n".join(lines) + b"\n"
