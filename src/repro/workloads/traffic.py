"""Synthetic network-traffic generators.

The paper filters live multi-gigabit links; offline we synthesize payloads
with the properties that matter to the engines under test:

* **uniform noise** — content-independent workloads (what a DFA sees is
  irrelevant, which is the paper's point);
* **planted matches** — payloads with a controlled density of dictionary
  hits, so counting paths are exercised end to end;
* **adversarial payloads** — inputs crafted to degrade heuristic skippers
  (Boyer–Moore/Wu–Manber), demonstrating the overload-attack argument of
  §1 while the DFA's cost stays flat.

Everything is deterministic under a caller-provided seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "random_payload",
    "plant_matches",
    "packet_stream",
    "adversarial_payload",
    "streams_for_tile",
]


def random_payload(length: int, alphabet_size: int = 32,
                   seed: Optional[int] = None) -> bytes:
    """Uniform random folded payload."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, alphabet_size, length, dtype=np.uint8).tobytes()


def plant_matches(payload: bytes, patterns: Sequence[bytes], count: int,
                  seed: Optional[int] = None) -> bytes:
    """Overwrite ``count`` random positions with random dictionary entries.

    Plants may overlap each other or create accidental extra matches, so
    the *exact* match count must come from a reference scan, not from
    ``count`` — tests rely on this honesty.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not patterns:
        raise ValueError("at least one pattern required")
    longest = max(len(p) for p in patterns)
    if longest > len(payload):
        raise ValueError("payload shorter than the longest pattern")
    rng = np.random.default_rng(seed)
    buf = bytearray(payload)
    for _ in range(count):
        p = patterns[int(rng.integers(0, len(patterns)))]
        pos = int(rng.integers(0, len(buf) - len(p) + 1))
        buf[pos:pos + len(p)] = p
    return bytes(buf)


def packet_stream(num_packets: int, min_size: int = 64,
                  max_size: int = 1500, alphabet_size: int = 32,
                  patterns: Optional[Sequence[bytes]] = None,
                  match_fraction: float = 0.1,
                  seed: Optional[int] = None) -> List[bytes]:
    """A burst of packet payloads, a fraction of which carry one planted
    dictionary entry — the NIDS steady state where most traffic is clean."""
    if num_packets <= 0:
        raise ValueError("num_packets must be positive")
    if not 0 <= match_fraction <= 1:
        raise ValueError("match_fraction must be in [0, 1]")
    if not 1 <= min_size <= max_size:
        raise ValueError("need 1 <= min_size <= max_size")
    rng = np.random.default_rng(seed)
    packets: List[bytes] = []
    for _ in range(num_packets):
        size = int(rng.integers(min_size, max_size + 1))
        payload = rng.integers(0, alphabet_size, size,
                               dtype=np.uint8).tobytes()
        if patterns and rng.random() < match_fraction:
            p = patterns[int(rng.integers(0, len(patterns)))]
            if len(p) <= size:
                pos = int(rng.integers(0, size - len(p) + 1))
                buf = bytearray(payload)
                buf[pos:pos + len(p)] = p
                payload = bytes(buf)
        packets.append(payload)
    return packets


def adversarial_payload(pattern: bytes, length: int,
                        mismatch_at_end: bool = True) -> bytes:
    """Worst-case input for skip-based matchers: endless almost-matches.

    Repeats the pattern with its last byte corrupted, so Boyer–Moore-style
    scanners walk nearly the whole window at every offset while a DFA still
    spends exactly one transition per byte.
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if length <= 0:
        raise ValueError("length must be positive")
    block = bytearray(pattern)
    idx = -1 if mismatch_at_end else 0
    block[idx] = (block[idx] + 1) % 32
    reps = -(-length // len(block))
    return bytes(block * reps)[:length]


def streams_for_tile(length: int, patterns: Sequence[bytes],
                     matches_per_stream: int = 3,
                     alphabet_size: int = 32, num_streams: int = 16,
                     seed: Optional[int] = None) -> List[bytes]:
    """Sixteen equal-length folded streams with planted matches — the
    exact input shape one DFA tile consumes."""
    if length <= 0:
        raise ValueError("length must be positive")
    rng = np.random.default_rng(seed)
    streams = []
    for i in range(num_streams):
        payload = rng.integers(0, alphabet_size, length,
                               dtype=np.uint8).tobytes()
        payload = plant_matches(payload, patterns, matches_per_stream,
                                seed=int(rng.integers(0, 2 ** 31)))
        streams.append(payload)
    return streams
