"""Synthetic network-traffic generators.

The paper filters live multi-gigabit links; offline we synthesize payloads
with the properties that matter to the engines under test:

* **uniform noise** — content-independent workloads (what a DFA sees is
  irrelevant, which is the paper's point);
* **planted matches** — payloads with a controlled density of dictionary
  hits, so counting paths are exercised end to end;
* **adversarial payloads** — inputs crafted to degrade heuristic skippers
  (Boyer–Moore/Wu–Manber), demonstrating the overload-attack argument of
  §1 while the DFA's cost stays flat;
* **multi-tenant DPI scenarios** — protocol-shaped (HTTP-ish) packets
  interleaved across tenants and flows with seeded attack insertions,
  the input shape of the policy layer's verdict benchmarks.

Everything is deterministic under a caller-provided seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "random_payload",
    "plant_matches",
    "packet_stream",
    "adversarial_payload",
    "streams_for_tile",
    "TrafficPacket",
    "http_payload",
    "tenant_traffic",
    "open_loop_schedule",
]


def open_loop_schedule(connections: int, requests_per_connection: int,
                       arrival_rate: float) -> List[List[float]]:
    """Per-connection send times (seconds from start) for an open-loop
    run at a fixed aggregate ``arrival_rate`` (requests/second).

    The global arrival sequence is uniform at ``1/rate`` spacing and
    dealt round-robin to connections, so request ``k`` of connection
    ``i`` fires at ``(k * connections + i) / rate`` — every connection
    sees the same offered rate and the aggregate is exactly
    ``arrival_rate`` regardless of how fast the service responds.
    Unlike a closed loop, a slow service does *not* slow the arrivals;
    latency is measured from the scheduled time, so queueing delay is
    charged to the service (no coordinated omission).
    """
    if connections < 1 or requests_per_connection < 1:
        raise ValueError("need at least one connection and one request")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    return [[(k * connections + i) / arrival_rate
             for k in range(requests_per_connection)]
            for i in range(connections)]


def random_payload(length: int, alphabet_size: int = 32,
                   seed: Optional[int] = None) -> bytes:
    """Uniform random folded payload."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, alphabet_size, length, dtype=np.uint8).tobytes()


def plant_matches(payload: bytes, patterns: Sequence[bytes], count: int,
                  seed: Optional[int] = None) -> bytes:
    """Overwrite ``count`` random positions with random dictionary entries.

    Plants may overlap each other or create accidental extra matches, so
    the *exact* match count must come from a reference scan, not from
    ``count`` — tests rely on this honesty.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not patterns:
        raise ValueError("at least one pattern required")
    longest = max(len(p) for p in patterns)
    if longest > len(payload):
        raise ValueError("payload shorter than the longest pattern")
    rng = np.random.default_rng(seed)
    buf = bytearray(payload)
    for _ in range(count):
        p = patterns[int(rng.integers(0, len(patterns)))]
        pos = int(rng.integers(0, len(buf) - len(p) + 1))
        buf[pos:pos + len(p)] = p
    return bytes(buf)


def packet_stream(num_packets: int, min_size: int = 64,
                  max_size: int = 1500, alphabet_size: int = 32,
                  patterns: Optional[Sequence[bytes]] = None,
                  match_fraction: float = 0.1,
                  seed: Optional[int] = None) -> List[bytes]:
    """A burst of packet payloads, a fraction of which carry one planted
    dictionary entry — the NIDS steady state where most traffic is clean."""
    if num_packets <= 0:
        raise ValueError("num_packets must be positive")
    if not 0 <= match_fraction <= 1:
        raise ValueError("match_fraction must be in [0, 1]")
    if not 1 <= min_size <= max_size:
        raise ValueError("need 1 <= min_size <= max_size")
    rng = np.random.default_rng(seed)
    packets: List[bytes] = []
    for _ in range(num_packets):
        size = int(rng.integers(min_size, max_size + 1))
        payload = rng.integers(0, alphabet_size, size,
                               dtype=np.uint8).tobytes()
        if patterns and rng.random() < match_fraction:
            p = patterns[int(rng.integers(0, len(patterns)))]
            if len(p) <= size:
                pos = int(rng.integers(0, size - len(p) + 1))
                buf = bytearray(payload)
                buf[pos:pos + len(p)] = p
                payload = bytes(buf)
        packets.append(payload)
    return packets


def adversarial_payload(pattern: bytes, length: int,
                        mismatch_at_end: bool = True) -> bytes:
    """Worst-case input for skip-based matchers: endless almost-matches.

    Repeats the pattern with its last byte corrupted, so Boyer–Moore-style
    scanners walk nearly the whole window at every offset while a DFA still
    spends exactly one transition per byte.
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if length <= 0:
        raise ValueError("length must be positive")
    block = bytearray(pattern)
    idx = -1 if mismatch_at_end else 0
    block[idx] = (block[idx] + 1) % 32
    reps = -(-length // len(block))
    return bytes(block * reps)[:length]


_HTTP_METHODS = (b"GET", b"POST", b"PUT", b"HEAD")
_HTTP_PATHS = (b"/", b"/index.html", b"/api/v1/items", b"/login",
               b"/static/app.js", b"/search?q=test", b"/upload",
               b"/health")
_HTTP_AGENTS = (b"curl/8.4.0", b"Mozilla/5.0", b"python-requests/2.31",
                b"Go-http-client/1.1")
_BODY_MIXES = ("text", "binary", "base64ish")


@dataclass
class TrafficPacket:
    """One packet of a multi-tenant DPI scenario.

    ``attacks`` lists the dictionary entries planted into this payload
    (empty for clean traffic) — ground truth for asserting that verdict
    counts line up with what the generator injected.
    """

    tenant: str
    flow: str
    payload: bytes
    attacks: List[bytes] = field(default_factory=list)


def _http_body(rng: np.random.Generator, size: int, mix: str) -> bytes:
    """A body of the requested content mix (all printable-ish for
    ``text``/``base64ish``, raw bytes for ``binary``)."""
    if mix == "text":
        words = rng.integers(97, 123, size, dtype=np.uint8)
        spaces = rng.random(size) < 0.15
        words[spaces] = 0x20
        return words.tobytes()
    if mix == "base64ish":
        alphabet = np.frombuffer(
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZ"
            b"abcdefghijklmnopqrstuvwxyz0123456789+/", dtype=np.uint8)
        return alphabet[rng.integers(0, len(alphabet), size)].tobytes()
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


def http_payload(rng: np.random.Generator, host: bytes = b"example.com",
                 min_body: int = 64, max_body: int = 1200,
                 mix: Optional[str] = None) -> bytes:
    """One HTTP-ish request: request line + headers + body.

    Deliberately *shaped* rather than RFC-faithful — what matters to the
    scan core is realistic byte statistics (ASCII header prefix, mixed
    body), not protocol correctness.
    """
    if not 1 <= min_body <= max_body:
        raise ValueError("need 1 <= min_body <= max_body")
    method = _HTTP_METHODS[int(rng.integers(0, len(_HTTP_METHODS)))]
    path = _HTTP_PATHS[int(rng.integers(0, len(_HTTP_PATHS)))]
    agent = _HTTP_AGENTS[int(rng.integers(0, len(_HTTP_AGENTS)))]
    mix = mix or _BODY_MIXES[int(rng.integers(0, len(_BODY_MIXES)))]
    body = _http_body(rng, int(rng.integers(min_body, max_body + 1)), mix)
    return (method + b" " + path + b" HTTP/1.1\r\n"
            b"Host: " + host + b"\r\n"
            b"User-Agent: " + agent + b"\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body)


def tenant_traffic(tenants: Sequence[str], num_packets: int, *,
                   flows_per_tenant: int = 8,
                   attack_patterns: Optional[
                       Dict[str, Sequence[bytes]]] = None,
                   attack_fraction: float = 0.05,
                   min_body: int = 64, max_body: int = 1200,
                   seed: Optional[int] = None) -> List[TrafficPacket]:
    """A multi-tenant DPI scenario: interleaved HTTP-ish packets.

    Each packet is assigned a tenant and one of its
    ``flows_per_tenant`` flows at random; with probability
    ``attack_fraction`` one of that tenant's ``attack_patterns`` is
    planted at a random offset in the body.  The returned packets carry
    the planted entries as ground truth, and the whole scenario is a
    pure function of ``seed`` — the reproducibility contract the policy
    benchmarks and the CI smoke rely on.
    """
    if not tenants:
        raise ValueError("at least one tenant required")
    if num_packets <= 0:
        raise ValueError("num_packets must be positive")
    if flows_per_tenant < 1:
        raise ValueError("flows_per_tenant must be positive")
    if not 0 <= attack_fraction <= 1:
        raise ValueError("attack_fraction must be in [0, 1]")
    attack_patterns = attack_patterns or {}
    rng = np.random.default_rng(seed)
    packets: List[TrafficPacket] = []
    for _ in range(num_packets):
        tenant = tenants[int(rng.integers(0, len(tenants)))]
        flow = f"{tenant}-flow-{int(rng.integers(0, flows_per_tenant))}"
        payload = http_payload(rng, host=f"{tenant}.example".encode(),
                               min_body=min_body, max_body=max_body)
        attacks: List[bytes] = []
        candidates = list(attack_patterns.get(tenant, ()))
        if candidates and rng.random() < attack_fraction:
            p = bytes(candidates[int(rng.integers(0, len(candidates)))])
            if len(p) < len(payload):
                pos = int(rng.integers(0, len(payload) - len(p) + 1))
                buf = bytearray(payload)
                buf[pos:pos + len(p)] = p
                payload = bytes(buf)
                attacks.append(p)
        packets.append(TrafficPacket(tenant=tenant, flow=flow,
                                     payload=payload, attacks=attacks))
    return packets


def streams_for_tile(length: int, patterns: Sequence[bytes],
                     matches_per_stream: int = 3,
                     alphabet_size: int = 32, num_streams: int = 16,
                     seed: Optional[int] = None) -> List[bytes]:
    """Sixteen equal-length folded streams with planted matches — the
    exact input shape one DFA tile consumes."""
    if length <= 0:
        raise ValueError("length must be positive")
    rng = np.random.default_rng(seed)
    streams = []
    for i in range(num_streams):
        payload = rng.integers(0, alphabet_size, length,
                               dtype=np.uint8).tobytes()
        payload = plant_matches(payload, patterns, matches_per_stream,
                                seed=int(rng.integers(0, 2 ** 31)))
        streams.append(payload)
    return streams
