"""Workload generators: synthetic dictionaries and traffic."""

from .corpora import english_like, http_requests, log_lines
from .dictionary import (ascii_keywords, prefix_heavy_signatures,
                         random_signatures, signatures_for_states)
from .traffic import (TrafficPacket, adversarial_payload, http_payload,
                      packet_stream, plant_matches, random_payload,
                      streams_for_tile, tenant_traffic)

__all__ = [
    "english_like",
    "http_requests",
    "log_lines",
    "ascii_keywords",
    "prefix_heavy_signatures",
    "random_signatures",
    "signatures_for_states",
    "adversarial_payload",
    "packet_stream",
    "plant_matches",
    "random_payload",
    "streams_for_tile",
    "TrafficPacket",
    "http_payload",
    "tenant_traffic",
]
