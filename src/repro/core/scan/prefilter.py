"""Packed multi-byte fingerprint prefilter — the pipeline's screening stage.

The exact kernels pay one gather (or one pair-gather) per input byte no
matter what the input looks like.  But most real traffic is *clean*:
long stretches containing no dictionary substring at all.  This stage
screens those stretches out with pure numpy-wide arithmetic — far
cheaper per byte than a DFA step — and hands only the surviving
candidate windows to the exact kernel.

The fingerprint is a folded **trigram membership mask**: a ``width³``
byte table marking every 3-symbol window that occurs anywhere in any
dictionary pattern.  Screening computes each input trigram's code with
three gathers through pre-shifted fold tables and one mask ``take`` —
no data-dependent loop — and any position whose trigram is *not* in
the mask provably cannot lie at that offset inside a match.  A pattern
of ``minlen`` bytes covers ``minlen − 2`` *consecutive* trigram start
positions, so screening samples only every ``(minlen − 2)``-th
position — the classic q-gram sampling bound — and its per-byte cost
shrinks linearly with the dictionary's shortest pattern.

Hit positions are grown into candidate windows conservatively (a hit at
``i`` can only belong to a match spanning ``[i - (maxlen-3),
i + maxlen - 1]``), runs of nearby hits are merged with a ``2×maxlen``
gap rule, which makes the resulting segments **provably disjoint** and
guarantees every true match lies wholly inside exactly one segment:
verification then counts each segment from the DFA start state with no
double counting and no misses.  Exactness is differential-tested in
``tests/core/test_differential_fuzz.py``.

On adversarial high-match-density input the mask stops rejecting and
screening would only add overhead — :meth:`PackedPrefilter.screen`
reports that as ``fall_through`` and the pipeline runs the bare kernel
instead, so the worst case costs one cheap vector pass, never a slower
scan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFAError
from .base import _env_int

__all__ = ["PackedPrefilter", "ScreenResult", "count_segments",
           "MASK_CEILING_BYTES", "MIN_PATTERN_LEN"]

#: Largest trigram mask we are willing to build (width³ bytes); beyond
#: this the mask itself stops being cache-resident and screening loses.
MASK_CEILING_BYTES = 1 << 20
#: Trigram screening needs at least 3 bytes of every pattern.
MIN_PATTERN_LEN = 3
#: Candidate fraction above which screening is declared useless and the
#: pipeline falls through to the bare kernel (percent).
DENSITY_CEILING_PCT = 50
#: Dense-padding budget for grouped segment verification (bytes).
GROUP_BUDGET_BYTES = 8 << 20


def _density_ceiling() -> float:
    return _env_int("REPRO_PREFILTER_DENSITY_PCT", DENSITY_CEILING_PCT) / 100.0


@dataclass
class ScreenResult:
    """Outcome of screening one block."""

    #: ``(k, 2)`` int64 half-open candidate windows, disjoint, ascending.
    segments: np.ndarray
    #: Trigram positions sampled / positions whose trigram was in the mask.
    positions: int
    hits: int
    #: Total bytes inside candidate windows.
    candidate_bytes: int
    #: True when screening rejected too little to be worth it.
    fall_through: bool

    @property
    def density(self) -> float:
        return self.candidate_bytes / self.positions if self.positions else 0.0


class PackedPrefilter:
    """Folded trigram membership mask over a compiled exact dictionary.

    Parameters
    ----------
    mask:
        ``width³`` uint8 membership table.
    fold_table:
        256-entry byte→symbol map (the dictionary's fold).
    width:
        Folded alphabet size.
    minlen / maxlen:
        Length extremes of the dictionary's patterns, in bytes.
    """

    def __init__(self, mask: np.ndarray, fold_table: np.ndarray,
                 width: int, minlen: int, maxlen: int) -> None:
        self.mask = np.ascontiguousarray(mask, dtype=np.uint8)
        self.fold_table = np.ascontiguousarray(fold_table, dtype=np.int32)
        self.width = int(width)
        self.minlen = int(minlen)
        self.maxlen = int(maxlen)
        if self.mask.size != self.width ** 3:
            raise DFAError(
                f"trigram mask has {self.mask.size} cells, expected "
                f"{self.width ** 3}")
        #: A minlen-byte match covers ``minlen - 2`` consecutive trigram
        #: start positions, so sampling every ``minlen - 2``-th position
        #: still lands at least one probe inside every match (the q-gram
        #: sampling bound).
        self.stride = max(1, self.minlen - (MIN_PATTERN_LEN - 1))
        # Fold composed with the code shifts, one gather table per
        # trigram byte: code = t0[b0] + t1[b1] + t2[b2].
        fold32 = self.fold_table.astype(np.int32)
        self._t0 = np.ascontiguousarray(fold32 * (self.width ** 2))
        self._t1 = np.ascontiguousarray(fold32 * self.width)
        self._t2 = np.ascontiguousarray(fold32)
        # With an even stride every sampled trigram starts on an even
        # byte, so its first two bytes are one aligned uint16 — fold
        # both through a single 64 K-entry table and save a gather per
        # sample.  Built via the view round-trip, so the table indexes
        # exactly how this host's uint16 view orders the bytes.
        pair = np.arange(65536, dtype=np.uint16).view(np.uint8)
        pair = pair.reshape(-1, 2)
        self._pair01 = np.ascontiguousarray(
            self._t0[pair[:, 0]] + self._t1[pair[:, 1]])
        self.stats = {"blocks": 0, "fall_throughs": 0, "clean_blocks": 0,
                      "bytes_screened": 0, "bytes_verified": 0}

    # -- construction -------------------------------------------------------------

    @classmethod
    def supports(cls, patterns: Sequence[bytes], width: int) -> bool:
        """Whether a mask can serve this dictionary: non-empty, every
        pattern long enough for trigram screening, mask cache-resident."""
        if not patterns or width < 2:
            return False
        if min(len(p) for p in patterns) < MIN_PATTERN_LEN:
            return False
        return width ** 3 <= _env_int("REPRO_PREFILTER_MASK_CEILING",
                                      MASK_CEILING_BYTES)

    @classmethod
    def build(cls, patterns: Sequence[bytes],
              fold_table: np.ndarray, width: int
              ) -> Optional["PackedPrefilter"]:
        """Build the mask, or ``None`` when the dictionary is not
        screenable (short patterns, regex handled by the caller, or a
        mask too large to stay cache-resident)."""
        if not cls.supports(patterns, width):
            return None
        fold = np.ascontiguousarray(fold_table, dtype=np.int64)
        w = int(width)
        mask = np.zeros(w ** 3, dtype=np.uint8)
        lens = [len(p) for p in patterns]
        for p in patterns:
            sym = fold[np.frombuffer(p, dtype=np.uint8)]
            codes = (sym[:-2] * w + sym[1:-1]) * w + sym[2:]
            mask[codes] = 1
        return cls(mask, fold_table, w, min(lens), max(lens))

    @property
    def mask_bytes(self) -> int:
        return int(self.mask.nbytes)

    @property
    def selectivity(self) -> float:
        """Fraction of possible trigrams the mask admits."""
        return float(self.mask.mean())

    # -- screening ----------------------------------------------------------------

    def screen(self, arr: np.ndarray) -> ScreenResult:
        """Screen one block; returns disjoint candidate windows.

        Exactness contract: every occurrence of a dictionary pattern in
        ``arr`` lies wholly inside exactly one returned segment (unless
        ``fall_through`` is set, in which case the caller must scan the
        whole block).
        """
        n = int(arr.size)
        self.stats["blocks"] += 1
        self.stats["bytes_screened"] += n
        if n < MIN_PATTERN_LEN:
            self.stats["clean_blocks"] += 1
            return ScreenResult(np.empty((0, 2), dtype=np.int64),
                                0, 0, 0, False)
        # Sample first, fold second: only every stride-th trigram is
        # ever touched, so the screen's cost scales with n / stride.
        step = self.stride
        s2 = np.ascontiguousarray(arr[2:n:step])
        if step % 2 == 0:
            pairs = np.ascontiguousarray(
                arr[:n & ~1].view(np.uint16)[::step // 2][:s2.size])
            codes = self._pair01.take(pairs)
        else:
            codes = self._t0.take(np.ascontiguousarray(arr[0:n - 2:step]))
            codes += self._t1.take(np.ascontiguousarray(arr[1:n - 1:step]))
        codes += self._t2.take(s2)
        pos = np.flatnonzero(self.mask.take(codes)).astype(np.int64) * step
        positions = int(codes.size)
        if pos.size == 0:
            self.stats["clean_blocks"] += 1
            return ScreenResult(np.empty((0, 2), dtype=np.int64),
                                positions, 0, 0, False)
        # Merge hits into runs: gaps above 2×maxlen guarantee the grown
        # windows of different runs cannot overlap, so the segments are
        # disjoint and a match (whose own hit positions are at most
        # ``stride`` apart) lands in exactly one of them.
        brk = np.flatnonzero(np.diff(pos) > 2 * self.maxlen)
        run_lo = pos[np.concatenate(([0], brk + 1))]
        run_hi = pos[np.concatenate((brk, [pos.size - 1]))]
        seg_lo = np.maximum(run_lo - (self.maxlen - MIN_PATTERN_LEN), 0)
        seg_hi = np.minimum(run_hi + self.maxlen, n)
        segments = np.stack([seg_lo, seg_hi], axis=1)
        candidate = int((seg_hi - seg_lo).sum())
        self.stats["bytes_verified"] += candidate
        fall_through = candidate > n * _density_ceiling()
        if fall_through:
            self.stats["fall_throughs"] += 1
        return ScreenResult(segments, positions, int(pos.size),
                            candidate, fall_through)


def count_segments(kernel, arr: np.ndarray, segments: np.ndarray) -> int:
    """Exact weighted total over candidate windows, one kernel at work.

    Small windows are batched into ragged ``run_streams`` calls (grouped
    so the dense ``maxlen × streams`` padding stays under
    :data:`GROUP_BUDGET_BYTES`); windows too large to batch are scanned
    with the kernel's chunked block path.  Results are identical to
    scanning each window from the start state individually.
    """
    total = 0
    group: List[bytes] = []
    group_max = 0
    for lo, hi in segments.tolist():
        seg_len = hi - lo
        new_max = max(group_max, seg_len)
        if group and new_max * (len(group) + 1) > GROUP_BUDGET_BYTES:
            total += _flush(kernel, group)
            group, group_max = [], 0
            new_max = seg_len
        if seg_len > GROUP_BUDGET_BYTES:
            total += kernel.count_total(arr[lo:hi])
            group_max = group_max if group else 0
            continue
        group.append(arr[lo:hi].tobytes())
        group_max = new_max
    if group:
        total += _flush(kernel, group)
    return int(total)


def _flush(kernel, group: List[bytes]) -> int:
    totals, _ = kernel.run_streams(group)
    return int(totals.sum())
