"""Staged scan-kernel package.

The monolithic ``core/engine.py`` is split into one module per inner
loop, a shared driver, and the staged-pipeline machinery:

* :mod:`.base` — tuning constants and strip-loop helpers;
* :mod:`.flat` — flag-encoded flat STT + single-DFA scanner;
* :mod:`.driver` — speculative chunked block scan, exactness ledger,
  and the reference :class:`VectorDFAEngine`;
* :mod:`.fused` — stacked multi-DFA table and grid scanner;
* :mod:`.hotcold` — cache-resident hot/cold union scan;
* :mod:`.hotcold2` — two-byte-stride pair-symbol variant;
* :mod:`.bundle` — :class:`SharedArrayBundle`, the one shared-memory
  export/attach path every kernel uses;
* :mod:`.kernels` — the :class:`ScanKernel` protocol and registry;
* :mod:`.prefilter` — packed multi-byte fingerprint screening stage;
* :mod:`.pipeline` — explicit staged :class:`ScanPipeline` assembly.

``core.engine`` remains as a compatibility shim re-exporting this
package's names.
"""

from __future__ import annotations

from .base import (
    FUSED_LANES_TARGET,
    FUSED_STRIP_ELEMS,
    HOT_BUDGET_BYTES,
    HOTCOLD_LANES_TARGET,
    HOTCOLD_STRIP_ELEMS,
    LANES_TARGET,
    MIN_PIECE,
    SPECULATION_WARMUP,
    STRIP,
    _env_int,
    _ragged_segments,
    hotcold_lanes_target,
    hotcold_strip_elems,
)
from .driver import (
    ScanDetail,
    StreamResult,
    VectorDFAEngine,
    _chunked_scan,
    _transpose_cols,
    count_arr,
    count_arr_detail,
    repair_detail,
)
from .flat import FlatScanner, build_flat_table, build_weight_table
from .fused import FusedScanner, FusedTable, _FusedSliceScanner, fuse_tables
from .hotcold import (
    HotColdFusedScanner,
    HotColdFusedTable,
    build_hot_cold_table,
    project_states,
    visit_order,
)
from .hotcold2 import (
    HotCold2Scanner,
    HotCold2Table,
    _StagedLanes,
    build_hot_cold2_table,
    pair_symbol_table,
)
from .bundle import (
    BundleError,
    SharedArrayBundle,
    bundle_from_table,
    scanner_from_bundle,
    table_from_bundle,
)
from .kernels import (
    KERNELS,
    FlatKernel,
    FusedKernel,
    HotCold2Kernel,
    HotColdKernel,
    ScanKernel,
    get_kernel,
    kernel_names,
    register_kernel,
)

__all__ = [
    "VectorDFAEngine",
    "StreamResult",
    "FlatScanner",
    "FusedTable",
    "FusedScanner",
    "HotColdFusedTable",
    "HotColdFusedScanner",
    "HotCold2Table",
    "HotCold2Scanner",
    "ScanDetail",
    "build_flat_table",
    "build_weight_table",
    "build_hot_cold_table",
    "build_hot_cold2_table",
    "pair_symbol_table",
    "fuse_tables",
    "visit_order",
    "project_states",
    "count_arr",
    "count_arr_detail",
    "repair_detail",
    "hotcold_lanes_target",
    "hotcold_strip_elems",
]
