"""Chunked speculative block scanning and the reference engine.

``_chunked_scan`` is the speculative fixpoint every kernel's block scan
rides on: split the input into chunks, scan all of them in lockstep
from guessed entry states, then rescan the chunks whose guess proved
wrong.  ``ScanDetail`` is the exactness ledger the sharded pool uses to
repair cross-shard guesses incrementally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFA, DFAError
from .base import (LANES_TARGET, MIN_PIECE, SPECULATION_WARMUP, STRIP,
                   _ragged_segments)
from .flat import FlatScanner, build_flat_table, build_weight_table


def _transpose_cols(mat: np.ndarray) -> np.ndarray:
    """Lane-major ``(chunks, piece)`` → contiguous position-major
    ``(piece, chunks)``, transposed in column blocks so each block's
    working set stays cache-resident (~3x faster than one
    ``ascontiguousarray`` of the full transpose at 8 MB inputs)."""
    lanes, piece = mat.shape
    out = np.empty((piece, lanes), dtype=mat.dtype)
    step = 512
    for j in range(0, lanes, step):
        out[:, j:j + step] = mat[j:j + step].T
    return out


def _chunked_scan(scanner: FlatScanner, arr: np.ndarray, chunks: int,
                  entry_state: int, max_passes: Optional[int] = None,
                  weights: Optional[np.ndarray] = None,
                  lanes_target: Optional[int] = None):
    """Shared core of :func:`count_arr` / :func:`count_arr_detail`.

    Requires ``arr.size > 0``.  Returns ``(remainder, head_count,
    head_exit_ptr, piece_counts, piece_exit_ptrs)`` where the scalar head
    covers ``arr[:remainder]`` and the pieces tile the rest equally.
    """
    if chunks < 1:
        # Guard here, not only in the public wrappers: a zero floor used
        # to fall through to ``n // 0`` on inputs shorter than MIN_PIECE.
        raise DFAError("chunks must be >= 1")
    lane_floor = LANES_TARGET if lanes_target is None else int(lanes_target)
    n = int(arr.size)
    chunks = min(n, max(int(chunks), min(lane_floor, n // MIN_PIECE)))
    piece_len = n // chunks
    remainder = n - piece_len * chunks

    head_count = 0
    ptr = scanner.pointer(entry_state)
    for sym in arr[:remainder]:
        ptr = scanner.step_scalar(ptr, sym)
        if weights is None:
            head_count += ptr & 1
        else:
            head_count += int(weights[ptr >> 1])

    mat = arr[remainder:].reshape(chunks, piece_len)
    if hasattr(scanner, "stage_lanes"):
        # Pair-stride scanners stage symbols lane-major once; every
        # pass (and the warmup) scans windows of the staged block.
        staged = scanner.stage_lanes(mat)

        def scan_span(sel, t0, entries, sink, wts):
            return scanner.scan_lanes(staged, sel, t0, piece_len,
                                      entries, sink, weights=wts)
    else:
        # One position-major matrix, built once, indexed per pass.
        cols = _transpose_cols(mat)

        def scan_span(sel, t0, entries, sink, wts):
            sub = cols[t0:]
            if sel is not None:
                sub = sub[:, sel]
            if t0 or sel is not None:
                sub = np.ascontiguousarray(sub)
            return scanner.scan_cols(sub, entries, sink, weights=wts)

    entry = np.full(chunks, scanner.pointer(scanner.start), dtype=np.int32)
    entry[0] = ptr                       # chunk 0's entry is exact
    if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
        # Warm the guesses: chunk k+1's entry is approximated by scanning
        # the last SPECULATION_WARMUP symbols of chunk k from the start
        # state.  Counts from this scan are discarded.
        sink = np.zeros(chunks - 1, dtype=np.int64)
        entry[1:] = scan_span(slice(0, chunks - 1),
                              piece_len - SPECULATION_WARMUP,
                              entry[1:].copy(), sink, None)
    exits = np.empty(chunks, dtype=np.int32)
    counts = np.zeros(chunks, dtype=np.int64)
    todo = np.arange(chunks)
    passes = max_passes if max_passes is not None else chunks + 1

    for _ in range(passes):
        sel = None if todo.size == chunks else todo
        part = np.zeros(todo.size, dtype=np.int64)
        fin = scan_span(sel, 0, entry[todo], part, weights)
        counts[todo] = part
        exits[todo] = fin
        # Propagate corrected entries (compare modulo the flag bit: two
        # pointers to the same row scan identically).
        wrong = np.nonzero((exits[:-1] >> 1) != (entry[1:] >> 1))[0] + 1
        if wrong.size == 0:
            break
        entry[wrong] = exits[wrong - 1]
        todo = wrong
    else:
        raise DFAError("chunk fixpoint failed to converge; this "
                       "indicates a bug, not an input property")
    return remainder, head_count, ptr, counts, exits


def count_arr(scanner: FlatScanner, arr: np.ndarray, chunks: int,
              entry_state: int, max_passes: Optional[int] = None,
              weights: Optional[np.ndarray] = None,
              lanes_target: Optional[int] = None) -> Tuple[int, int]:
    """Exact speculative count over one folded symbol array.

    The array is cut into *equal* pieces (a scalar head scan absorbs the
    division remainder, so the lockstep matrix needs no padding and
    rebuilds never happen); pieces are scanned in lockstep from guessed
    entry states and the guesses are repaired to a fixpoint.  Only the
    mis-guessed columns are re-scanned on later passes — they are
    *indexed out* of the one position-major matrix built up front.

    ``chunks`` is a floor, not an exact count: large inputs are widened
    to ``LANES_TARGET`` lanes (see the constant above) because lane width
    sets the gather width and thus the dispatch overhead per byte, while
    the count is semantically only a speculation granularity.

    Returns ``(count, exit_state)``.
    """
    if arr.size == 0:
        return 0, int(entry_state)
    _, head, _, counts, exits = _chunked_scan(
        scanner, arr, chunks, entry_state, max_passes, weights,
        lanes_target)
    return head + int(counts.sum()), int(scanner.state_of(exits[-1]))


@dataclass
class ScanDetail:
    """A chunked scan's per-segment ledger, for cheap entry repair.

    Segment 0 is the scalar head (possibly empty), segments 1.. are the
    equal lockstep pieces.  ``seg_exits[k]`` is the DFA *state* at
    ``seg_bounds[k + 1]`` given ``entry_state`` at position 0.  Whoever
    later learns the true entry state can call :func:`repair_detail`
    instead of rescanning the whole array: rescan leading segments until
    the state trajectory rejoins the recorded one, then splice.
    """

    entry_state: int
    seg_bounds: np.ndarray    # int64, len = segments + 1, [0 .. arr.size]
    seg_counts: np.ndarray    # int64 per segment
    seg_exits: np.ndarray     # int32 exit state per segment

    @property
    def total(self) -> int:
        return int(self.seg_counts.sum())

    @property
    def exit_state(self) -> int:
        if self.seg_exits.size == 0:
            return int(self.entry_state)
        return int(self.seg_exits[-1])


def count_arr_detail(scanner: FlatScanner, arr: np.ndarray, chunks: int,
                     entry_state: int,
                     weights: Optional[np.ndarray] = None,
                     lanes_target: Optional[int] = None) -> ScanDetail:
    """:func:`count_arr`, but returning the per-segment ledger."""
    if arr.size == 0:
        return ScanDetail(int(entry_state),
                          np.zeros(1, dtype=np.int64),
                          np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int32))
    remainder, head, head_ptr, counts, exits = _chunked_scan(
        scanner, arr, chunks, entry_state, None, weights, lanes_target)
    pieces = counts.size
    piece_len = (int(arr.size) - remainder) // pieces
    bounds = np.empty(pieces + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:] = remainder + piece_len * np.arange(pieces + 1,
                                                   dtype=np.int64)
    seg_counts = np.concatenate(([head], counts)).astype(np.int64)
    seg_exits = np.concatenate(
        ([int(scanner.state_of(head_ptr))],
         np.asarray(scanner.state_of(exits)))).astype(np.int32)
    return ScanDetail(int(entry_state), bounds, seg_counts, seg_exits)


def repair_detail(scanner: FlatScanner, arr: np.ndarray, detail: ScanDetail,
                  entry_state: int, chunks: int,
                  weights: Optional[np.ndarray] = None) -> Tuple[int, int]:
    """Exact ``(count, exit_state)`` of ``arr`` from ``entry_state``,
    reusing a previous scan's :class:`ScanDetail`.

    If the entry matches the recorded one, the recorded totals stand.
    Otherwise leading segments are rescanned from the corrected state
    until the trajectory hits a recorded segment-boundary state — from
    there on determinism makes the recorded counts exact — so a wrong
    speculative entry typically costs one segment, not the whole array
    (Ko et al.'s speculative-repair argument applied at the ledger's
    granularity).  Degenerates to a full rescan only when the trajectory
    never rejoins.

    ``chunks`` deliberately has no default: repair rescans must use the
    caller's chunking policy, not a magic constant that would silently
    override the lane floor.
    """
    if int(entry_state) == detail.entry_state:
        return detail.total, detail.exit_state
    state = int(entry_state)
    total = 0
    for k in range(detail.seg_counts.size):
        lo = int(detail.seg_bounds[k])
        hi = int(detail.seg_bounds[k + 1])
        cnt, state = count_arr(scanner, arr[lo:hi], chunks, state,
                               weights=weights)
        total += cnt
        if state == int(detail.seg_exits[k]):
            return (total + int(detail.seg_counts[k + 1:].sum()),
                    detail.exit_state)
    return total, state


@dataclass
class StreamResult:
    """Outcome of a lockstep multi-stream scan."""

    counts: np.ndarray         # matches per stream
    final_states: np.ndarray   # DFA state per stream after the scan

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class VectorDFAEngine:
    """Lockstep vectorized interpreter for a dense DFA."""

    def __init__(self, dfa: DFA) -> None:
        self.dfa = dfa
        # Contiguous copies kept for introspection and the Cell encoders;
        # the hot loop runs on the flag-encoded flat table below.
        self.table = np.ascontiguousarray(dfa.transitions, dtype=np.int32)
        self.final = np.ascontiguousarray(dfa.final_mask)
        self.start = dfa.start
        self.scanner = FlatScanner.from_dfa(dfa)

    # -- lockstep streams ---------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None) -> StreamResult:
        """Scan independent streams in lockstep (one gather per position).

        Streams may have different lengths: lanes are sorted by length
        and retired as their streams end, so each lane advances exactly
        ``len(stream)`` steps and a zero-length stream keeps its entry
        state.  With ``weights`` (see :func:`build_weight_table`) counts
        are per-dictionary-entry multiplicities; without, +1 per
        final-state entry (the paper's kernel semantics).
        """
        if not len(streams):
            raise DFAError("at least one stream required")
        n = len(streams)
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        length = int(lens.max())
        if start_states is not None:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.dfa.num_states):
                raise DFAError("start state out of range")
        if length == 0:
            states = np.full(n, self.start, dtype=np.int32) \
                if start_states is None else start_states.astype(np.int32)
            return StreamResult(np.zeros(n, dtype=np.int64), states)

        equal = bool((lens == length).all())
        order = np.arange(n) if equal else np.argsort(-lens,
                                                      kind="stable")
        # Fill the position-major matrix directly — no row-major staging
        # copy followed by a transposed second copy.  Ragged lanes are
        # laid out longest-first so the live lanes form a prefix.
        cols = np.zeros((length, n), dtype=np.uint8)
        for k, oi in enumerate(order):
            s = streams[oi]
            arr = np.frombuffer(s, dtype=np.uint8)
            if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
                raise DFAError(
                    f"stream {oi} contains symbols outside the "
                    f"{self.dfa.alphabet_size}-symbol alphabet; fold first")
            cols[:arr.size, k] = arr
        scanner = self.scanner
        if start_states is None:
            ptrs = np.full(n, scanner.pointer(self.start), dtype=np.int32)
        else:
            ptrs = (states[order] * scanner.stride).astype(np.int32)
        counts = np.zeros(n, dtype=np.int64)
        if equal:
            fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
            ptrs = np.asarray(fin, dtype=np.int32)
        else:
            for lo, hi, active in _ragged_segments(lens[order]):
                fin = scanner.scan_cols(cols[lo:hi, :active],
                                        ptrs[:active], counts[:active],
                                        weights=weights)
                ptrs[:active] = fin
        out_counts = np.empty_like(counts)
        out_states = np.empty(n, dtype=np.int32)
        out_counts[order] = counts
        out_states[order] = scanner.state_of(ptrs).astype(np.int32)
        return StreamResult(out_counts, out_states)

    # -- exact single-stream scan ------------------------------------------------

    def _folded_view(self, block: bytes) -> np.ndarray:
        arr = np.frombuffer(block, dtype=np.uint8)
        if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
            raise DFAError("block contains symbols outside the alphabet; "
                           "fold first")
        return arr

    def count_block(self, block: bytes, chunks: int = 256,
                    max_passes: Optional[int] = None) -> int:
        """Exact match count over one contiguous stream.

        Splits the stream into ``chunks`` pieces scanned in lockstep; entry
        states are guessed (start state), then corrected iteratively: after
        each pass, any chunk whose actual entry state (the exit state of
        its predecessor) differs from its guess is rescanned.  Guaranteed
        to terminate in at most ``chunks`` passes (``max_passes`` defaults
        to that bound); security-style DFAs almost always converge in two.
        More chunks means wider gathers and fewer numpy dispatches per
        byte, which is why the default is generous.
        """
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        arr = self._folded_view(block)
        if arr.size == 0:
            return 0
        count, _ = count_arr(self.scanner, arr, chunks, self.start,
                             max_passes=max_passes)
        return count

    def count_block_from(self, block: bytes, entry_state: int,
                         chunks: int = 256,
                         max_passes: Optional[int] = None
                         ) -> Tuple[int, int]:
        """Like :meth:`count_block` but from an arbitrary entry state,
        also returning the exit state — the primitive the host-parallel
        shard repair (:mod:`repro.parallel`) is built on."""
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        if not 0 <= entry_state < self.dfa.num_states:
            raise DFAError(f"entry state {entry_state} out of range")
        arr = self._folded_view(block)
        return count_arr(self.scanner, arr, chunks, entry_state,
                         max_passes=max_passes)

    def count_block_reference(self, block: bytes) -> int:
        """Unchunked scan (for cross-validation in tests)."""
        return self.dfa.count_matches(block)
