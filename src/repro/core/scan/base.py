"""Shared constants and strip-loop helpers for the scan kernels.

Split out of the original monolithic ``core/engine.py``; every tuning
knob that more than one kernel reads lives here so the kernel modules
stay dependency-light.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFA, DFAError


STRIP = 128

#: Lane floor for the chunked block scan.  ``chunks`` controls the
#: speculation granularity *requested* by the caller, but it also sets
#: the lockstep lane count, and few lanes means more numpy dispatches
#: per byte.  When the input is large enough, the effective chunk count
#: is raised to ``LANES_TARGET`` (never lowered): exactness is invariant
#: under chunking, so callers asking for coarse speculation still get
#: full-width gathers.  Inputs shorter than ``LANES_TARGET × MIN_PIECE``
#: keep the requested count — tiny pieces would waste the strip loop.
LANES_TARGET = 256
MIN_PIECE = 1024

#: Total lane budget of the fused D × chunks grid.  The DFA axis
#: multiplies into the gather width, so the fused chunk widening
#: targets ``FUSED_LANES_TARGET // num_dfas`` lanes per DFA — the
#: *grid* stays at full width however the dictionary was partitioned,
#: and per-step dispatch overhead is amortized over ~32× more lanes
#: than the single-DFA scan needs.  Exactness is invariant under
#: chunking, so this is pure tuning, not semantics.
FUSED_LANES_TARGET = 8192

#: int32 elements per fused strip matrix (~256 KB).  The strip and its
#: scratch double with the DFA axis, so the strip *length* shrinks as
#: ``D × lanes`` grows to keep both matrices cache-resident — at
#: D=1 × 256 lanes this reproduces ``STRIP``.
FUSED_STRIP_ELEMS = 64 * 1024

#: Warm-start window of the chunk-entry speculation.  Before the first
#: lockstep pass, every chunk's entry guess is refined by scanning the
#: *tail* of its predecessor (one extra lockstep scan over
#: ``SPECULATION_WARMUP`` positions): security DFAs synchronize within a
#: pattern length, so the tail exit almost always *is* the true entry
#: and the fixpoint converges on the first full pass instead of
#: rescanning the mis-guessed majority.  Exactness is untouched — the
#: warm guesses are still verified and repaired by the fixpoint.  The
#: warm-up is skipped for pieces shorter than ``8 ×`` the window, where
#: its relative cost stops being negligible.
SPECULATION_WARMUP = 32

#: Default byte budget for the hot partition of a
#: :class:`HotColdFusedTable` — sized for comfortable L2 residency
#: (the host analogue of the paper's 256 KB local store ceiling;
#: §4 sizes dictionaries so the *whole* STT fits local store, the
#: hot/cold split only demands it of the frequently-visited part).
HOT_BUDGET_BYTES = 512 * 1024

#: Lane budget of the hot/cold union scan.  Unlike the fused grid there
#: is no DFA axis multiplying into the gather width — one union table
#: serves every slice — so the optimum sits far below
#: ``FUSED_LANES_TARGET``: past ~2 K lanes the strip matrices outgrow
#: L2 and throughput collapses rather than climbs (measured knee on an
#: 8 MB corpus: 2048 lanes ≈ 114 MB/s vs 62 MB/s at 8192).
HOTCOLD_LANES_TARGET = 2048

#: int32 elements per hot/cold strip matrix (~1 MB).  The hot table is
#: budgeted to stay cache-resident no matter the dictionary, which
#: frees cache headroom for longer strips than the fused scan can
#: afford — and longer strips amortize the per-strip escape scan and
#: fold gather.  Measured: 256 K elems beats the fused 64 K setting by
#: ~25% at the lane target above.
HOTCOLD_STRIP_ELEMS = 256 * 1024


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def hotcold_lanes_target() -> int:
    """Effective hot/cold lane budget: :data:`HOTCOLD_LANES_TARGET`,
    overridable per process via ``REPRO_HOTCOLD_LANES`` (mirroring
    ``REPRO_HOT_BUDGET_KB``).  Read per call so tests and deployments
    can retune without reimporting."""
    return _env_int("REPRO_HOTCOLD_LANES", HOTCOLD_LANES_TARGET)


def hotcold_strip_elems() -> int:
    """Effective hot/cold strip size in int32 elements:
    :data:`HOTCOLD_STRIP_ELEMS`, overridable via
    ``REPRO_HOTCOLD_STRIP_ELEMS``."""
    return _env_int("REPRO_HOTCOLD_STRIP_ELEMS", HOTCOLD_STRIP_ELEMS)


def _ragged_segments(sorted_lens: Sequence[int]):
    """Yield ``(lo, hi, active)`` scan segments for lanes sorted by
    length descending: rows ``lo:hi`` are scanned with the first
    ``active`` lanes (exactly those longer than ``lo``)."""
    active = len(sorted_lens)
    pos = 0
    while True:
        while active > 0 and int(sorted_lens[active - 1]) <= pos:
            active -= 1
        if active == 0:
            return
        nxt = int(sorted_lens[active - 1])
        yield pos, nxt, active
        pos = nxt
