"""Generic shared-memory manifest for scan-kernel artifacts.

Every kernel used to ship its own ``Shared*Table`` class — four
near-identical copies of the same pack/attach/unlink choreography.
:class:`SharedArrayBundle` is the one implementation: an ordered
manifest of named numpy arrays packed into a single
``multiprocessing.shared_memory`` segment (8-byte aligned), plus a
picklable scalar side-channel.  The creator owns the segment and
unlinks it on close; workers :meth:`attach` in microseconds and get
zero-copy views.

The per-kernel knowledge — which arrays a table exports and how to
rebuild the table object from attached views — lives in the codec
functions :func:`bundle_from_table`, :func:`table_from_bundle` and
:func:`scanner_from_bundle`, keyed by the bundle's ``kind``.  Adding a
kernel means registering one codec, not writing a fifth shared-table
class.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..compressed import ColdRowStore
from .flat import FlatScanner
from .fused import FusedScanner, FusedTable
from .hotcold import HotColdFusedScanner, HotColdFusedTable
from .hotcold2 import HotCold2Scanner, HotCold2Table

__all__ = [
    "SharedArrayBundle",
    "BundleError",
    "bundle_from_table",
    "table_from_bundle",
    "scanner_from_bundle",
    "bundle_from_compiled",
    "compiled_from_bundle",
]

#: Meta keys that are structural, not kernel scalars.
_RESERVED = ("name", "kind", "arrays")


class BundleError(Exception):
    """Raised for malformed manifests or unknown bundle kinds."""


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class _SharedSegment(shared_memory.SharedMemory):
    """``SharedMemory`` whose ``close`` tolerates live exports.

    Numpy views of the buffer may outlive the bundle (a reconstructed
    table keeps them; a forked child inherits the parent's), and both
    explicit close and GC-time ``__del__`` route through ``close()``.
    The mapping is released when the last view dies; what matters is
    that the *name* is unlinked exactly once by the owner.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


class SharedArrayBundle:
    """Named arrays in one shared-memory segment, with zero-copy attach.

    Parameters
    ----------
    kind:
        Codec tag (``"flat"``, ``"fused"``, ``"hotcold"``,
        ``"hotcold2"``, ...) recorded in the manifest so the attaching
        side knows how to rebuild the kernel's table object.
    arrays:
        Ordered ``(name, ndarray)`` pairs; each is made contiguous and
        copied into the segment at an 8-byte-aligned offset.
    scalars:
        Picklable extras merged into the manifest (start state, widths,
        budgets, ...), readable on both sides via :meth:`scalar`.
    """

    def __init__(self, kind: str,
                 arrays: Iterable[Tuple[str, np.ndarray]],
                 scalars: Optional[Dict] = None) -> None:
        scalars = dict(scalars or {})
        for key in _RESERVED:
            if key in scalars:
                raise BundleError(f"scalar key {key!r} is reserved")
        specs = []
        prepared = []
        offset = 0
        for name, arr in arrays:
            # Flatten: the manifest records (dtype, offset, count) only,
            # so multi-dimensional inputs are stored 1-D and reshaped by
            # the attaching codec.
            arr = np.ascontiguousarray(arr).reshape(-1)
            offset = _align(offset)
            specs.append((str(name), arr.dtype.str, offset, int(arr.size)))
            prepared.append((arr, offset))
            offset += arr.nbytes
        if len({s[0] for s in specs}) != len(specs):
            raise BundleError("duplicate array name in manifest")
        self._shm = _SharedSegment(create=True, size=max(offset, 1))
        self._owner = True
        self._meta: Dict = {"name": self._shm.name, "kind": str(kind),
                            "arrays": tuple(specs), **scalars}
        # Fill before mapping views: structures rebuilt from the views
        # (e.g. the cold store) validate their contents at construction,
        # which a still-zeroed segment would fail.
        buf = self._shm.buf
        for arr, off in prepared:
            np.frombuffer(buf, dtype=arr.dtype, count=arr.size,
                          offset=off)[:] = arr
        self._map_views()

    @classmethod
    def attach(cls, meta: Dict) -> "SharedArrayBundle":
        """Attach to an existing bundle from its manifest (worker side).

        Zero-copy: the returned views alias the creator's segment.  The
        attacher never unlinks.
        """
        self = cls.__new__(cls)
        # No resource-tracker unregister here: pool workers share the
        # creator's (forked) tracker, whose registration set dedupes the
        # attach-side registration; the creator's unlink clears it once.
        self._shm = _SharedSegment(name=meta["name"])
        self._owner = False
        self._meta = dict(meta)
        self._map_views()
        return self

    def _map_views(self) -> None:
        buf = self._shm.buf
        self.kind = self._meta["kind"]
        self.arrays: Dict[str, np.ndarray] = {}
        for name, dtype, offset, count in self._meta["arrays"]:
            self.arrays[name] = np.frombuffer(buf, dtype=np.dtype(dtype),
                                              count=count, offset=offset)

    # -- use ----------------------------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def get(self, name: str) -> Optional[np.ndarray]:
        return self.arrays.get(name)

    def scalar(self, key, default=None):
        return self._meta.get(key, default)

    @property
    def scalars(self) -> Dict:
        return {k: v for k, v in self._meta.items() if k not in _RESERVED}

    def meta(self) -> Dict:
        """Picklable attachment recipe for workers."""
        return dict(self._meta)

    def table(self):
        """Rebuild this bundle's kernel table object (codec dispatch)."""
        return table_from_bundle(self)

    def scanner(self):
        """Build a scanner running directly on the shared views."""
        return scanner_from_bundle(self)

    @property
    def size_bytes(self) -> int:
        return self._shm.size

    # -- lifetime -----------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping; unlink too if we created it."""
        if self._shm is None:
            return
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            # Views of the segment are still alive in this process
            # (e.g. a reconstructed table draining its last scan); the
            # mapping is released when they are collected.  Unlinking
            # below still frees the segment's name immediately.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"SharedArrayBundle(kind={self._meta.get('kind')!r}, "
                f"arrays={len(self._meta.get('arrays', ()))}, "
                f"bytes={self._shm.size if self._shm else 0}, "
                f"owner={self._owner})")


# -- per-kind codecs ----------------------------------------------------------------

def _hotcold_arrays(table: HotColdFusedTable):
    arrays = [("hot_flat", table.hot_flat), ("weights", table.weights),
              ("keys", table.cold.keys), ("vals", table.cold.vals),
              ("default_row", table.cold.default_row),
              ("fold_table", table.fold_table),
              ("hot_states", table.hot_states),
              ("cold_states", table.cold_states),
              ("entry_cells", table.entry_cells)]
    if table.slice_maps is not None:
        arrays += [("slice_maps", table.slice_maps),
                   ("slice_weights", table.slice_weights),
                   ("slice_flags", table.slice_flags)]
    return arrays


def _hotcold_scalars(table: HotColdFusedTable) -> Dict:
    return {"num_hot": int(table.num_hot),
            "num_cold": int(table.num_cold),
            "num_states": int(table.num_states),
            "symbol_width": int(table.symbol_width),
            "num_dfas": int(table.num_dfas),
            "start": int(table.start)}


def bundle_from_table(table, scalars: Optional[Dict] = None
                      ) -> SharedArrayBundle:
    """Place a kernel table in shared memory, picking the codec from
    the table's type.  ``scalars`` are merged into the manifest."""
    extra = dict(scalars or {})
    if isinstance(table, FusedTable):
        arrays = [("flat", table.flat), ("weights", table.weights),
                  ("cell_base", np.asarray(table.cell_base,
                                           dtype=np.int64)),
                  ("starts", np.asarray(table.starts, dtype=np.int64)),
                  ("num_states", np.asarray(table.num_states,
                                            dtype=np.int64))]
        meta = {"num_dfas": int(len(table.cell_base)),
                "symbol_width": int(table.symbol_width), **extra}
        return SharedArrayBundle("fused", arrays, meta)
    if isinstance(table, HotCold2Table):
        arrays = _hotcold_arrays(table.base) + [
            ("hot2_flat", table.hot2_flat), ("wflat", table.wflat),
            ("fflat", table.fflat), ("foldpair", table.foldpair),
            ("utr", table.utr), ("order", table.order),
            ("rank_of", table.rank_of), ("wstate", table.wstate),
            ("fstate", table.fstate)]
        meta = {**_hotcold_scalars(table.base),
                "pair_budget_bytes": int(table.pair_budget_bytes),
                "hot2_mass": (None if table.hot2_mass is None
                              else float(table.hot2_mass)),
                **extra}
        return SharedArrayBundle("hotcold2", arrays, meta)
    if isinstance(table, HotColdFusedTable):
        return SharedArrayBundle("hotcold", _hotcold_arrays(table),
                                 {**_hotcold_scalars(table), **extra})
    raise BundleError(f"no shared-memory codec for {type(table).__name__}")


def _hotcold_from(bundle: SharedArrayBundle) -> HotColdFusedTable:
    cold = ColdRowStore(bundle["keys"], bundle["vals"],
                        bundle["default_row"],
                        bundle.scalar("num_cold"))
    ndfa = bundle.scalar("num_dfas", 1)
    slice_maps = bundle.get("slice_maps")
    if slice_maps is not None:
        slice_maps = slice_maps.reshape(ndfa, -1)
    slice_weights = bundle.get("slice_weights")
    if slice_weights is not None:
        slice_weights = slice_weights.reshape(ndfa, -1)
    slice_flags = bundle.get("slice_flags")
    if slice_flags is not None:
        slice_flags = slice_flags.reshape(ndfa, -1)
    return HotColdFusedTable(
        hot_flat=bundle["hot_flat"], weights=bundle["weights"], cold=cold,
        fold_table=bundle["fold_table"], hot_states=bundle["hot_states"],
        cold_states=bundle["cold_states"],
        entry_cells=bundle["entry_cells"],
        start=bundle.scalar("start"),
        num_states=bundle.scalar("num_states"),
        symbol_width=bundle.scalar("symbol_width"),
        slice_maps=slice_maps, slice_weights=slice_weights,
        slice_flags=slice_flags)


def table_from_bundle(bundle: SharedArrayBundle):
    """Rebuild the kernel table object a bundle carries (zero-copy —
    the table's arrays are views into the shared segment)."""
    kind = bundle.kind
    if kind == "fused":
        return FusedTable(flat=bundle["flat"], weights=bundle["weights"],
                          cell_base=bundle["cell_base"],
                          starts=bundle["starts"],
                          num_states=bundle["num_states"],
                          symbol_width=bundle.scalar("symbol_width"))
    if kind == "hotcold":
        return _hotcold_from(bundle)
    if kind == "hotcold2":
        return HotCold2Table(
            base=_hotcold_from(bundle), hot2_flat=bundle["hot2_flat"],
            wflat=bundle["wflat"], fflat=bundle["fflat"],
            foldpair=bundle["foldpair"], utr=bundle["utr"],
            order=bundle["order"], rank_of=bundle["rank_of"],
            wstate=bundle["wstate"], fstate=bundle["fstate"],
            pair_budget_bytes=bundle.scalar("pair_budget_bytes"),
            hot2_mass=bundle.scalar("hot2_mass"))
    raise BundleError(f"no table codec for bundle kind {kind!r}")


def scanner_from_bundle(bundle: SharedArrayBundle):
    """Build a scanner of the bundle's kind on the shared views."""
    kind = bundle.kind
    if kind == "flat":
        return FlatScanner(bundle["flat"], bundle.scalar("symbol_width"),
                           bundle.scalar("start"),
                           bundle.scalar("num_states"))
    if kind == "fused":
        return FusedScanner(table_from_bundle(bundle))
    if kind == "hotcold":
        return HotColdFusedScanner(table_from_bundle(bundle))
    if kind == "hotcold2":
        return HotCold2Scanner(table_from_bundle(bundle))
    raise BundleError(f"no scanner codec for bundle kind {kind!r}")


# -- whole-dictionary codec ----------------------------------------------------------
#
# The service's worker pool needs the paper's PPE/SPE topology at the
# process level: the gateway compiles a dictionary ONCE, then every
# worker attaches to the compiled arrays read-only and reconstructs a
# CompiledDictionary value object with zero automaton builds (the same
# recipe ArtifactCache._load_file uses against the on-disk .npz, but
# against a shared-memory segment and without deserialization).

def bundle_from_compiled(compiled) -> SharedArrayBundle:
    """Place a whole ``CompiledDictionary`` in shared memory.

    Mirrors :meth:`repro.core.compiled.ArtifactCache.store` (the v5
    artifact recipe): patterns, fold, per-slice dense tables, the fused
    stack, the union automaton's CSR rows and the hot/cold layout all
    ride the segment, so :func:`compiled_from_bundle` re-seats every
    expensive derived structure instead of rebuilding it.
    """
    arrays = [("fold_table", compiled.fold.np_table)]
    blob = b"".join(compiled.patterns)
    arrays.append(("patterns_blob",
                   np.frombuffer(blob, dtype=np.uint8) if blob
                   else np.zeros(0, dtype=np.uint8)))
    arrays.append(("pattern_lens", np.asarray(
        [len(p) for p in compiled.patterns], dtype=np.int64)))
    arrays.append(("group_lens", np.asarray(
        [len(g) for g in compiled.groups], dtype=np.int64)))
    arrays.append(("groups_flat", np.asarray(
        [i for g in compiled.groups for i in g], dtype=np.int64)))
    arrays.append(("starts", np.asarray(
        [d.start for d in compiled.dfas], dtype=np.int64)))
    for i, dfa in enumerate(compiled.dfas):
        arrays.append((f"trans_{i}",
                       np.asarray(dfa.transitions, dtype=np.int32)))
        arrays.append((f"final_{i}", dfa.final_mask.astype(np.uint8)))
        pairs = [(s, p) for s, pats in sorted(dfa.outputs.items())
                 for p in pats]
        arrays.append((f"outputs_{i}", np.asarray(
            pairs, dtype=np.int64).reshape(len(pairs), 2)))
    if compiled.num_slices > 1:
        fused = compiled.fused_table()
        arrays += [("fused_flat", fused.flat),
                   ("fused_weights", fused.weights),
                   ("fused_cell_base", np.asarray(fused.cell_base,
                                                  dtype=np.int64))]
    union_rows = 0
    union_start = 0
    if not compiled.regex:
        order, maps = compiled.hot_cold_layout()
        arrays.append(("hotcold_order", np.asarray(order,
                                                   dtype=np.int64)))
        arrays.append(("hotcold_slice_maps", np.asarray(maps,
                                                        dtype=np.int64)))
        if compiled._union_mass is not None:
            arrays.append(("hotcold_mass", np.asarray(
                compiled._union_mass, dtype=np.float64)))
        arrays.append(("hotcold2_foldpair", compiled.foldpair_table()))
        if compiled.num_slices > 1:
            union = compiled.union_dfa()
            union_rows = int(union.num_states)
            union_start = int(union.start)
            store_csr = ColdRowStore.from_rows(
                np.asarray(union.transitions),
                np.asarray(union.transitions)[union.start])
            arrays += [("union_csr_keys", store_csr.keys),
                       ("union_csr_vals", store_csr.vals),
                       ("union_csr_default", store_csr.default_row),
                       ("union_final",
                        union.final_mask.astype(np.uint8))]
            upairs = [(s, p) for s, pats in sorted(union.outputs.items())
                      for p in pats]
            arrays.append(("union_outputs", np.asarray(
                upairs, dtype=np.int64).reshape(len(upairs), 2)))
    scalars = {
        "fingerprint": compiled.fingerprint,
        "regex": bool(compiled.regex),
        "max_states": int(compiled.max_states),
        "fold_width": int(compiled.fold.width),
        "num_slices": int(compiled.num_slices),
        "union_rows": union_rows,
        "union_start": union_start,
    }
    return SharedArrayBundle("compiled", arrays, scalars)


def compiled_from_bundle(bundle: SharedArrayBundle):
    """Reconstruct a ``CompiledDictionary`` from an attached bundle.

    Zero automaton builds (provable via
    ``repro.core.compiled.COUNTERS["automaton_builds"]``): the slice
    DFAs, the fused stack, the union automaton and the hot/cold layout
    are re-seated from the shared views exactly the way
    ``ArtifactCache._load_file`` re-seats them from disk.  The returned
    object's tables alias the segment — keep the bundle open for the
    dictionary's lifetime.
    """
    from ..compiled import CompiledDictionary
    from ...dfa.alphabet import FoldMap
    from ...dfa.automaton import DFA
    from ...dfa.partition import PartitionedDictionary

    if bundle.kind != "compiled":
        raise BundleError(
            f"expected a 'compiled' bundle, got {bundle.kind!r}")
    fold = FoldMap(tuple(int(b) for b in bundle["fold_table"]),
                   int(bundle.scalar("fold_width")))
    blob = bundle["patterns_blob"].tobytes()
    patterns = []
    pos = 0
    for n in bundle["pattern_lens"]:
        patterns.append(blob[pos:pos + int(n)])
        pos += int(n)
    groups = []
    flat = [int(i) for i in bundle["groups_flat"]]
    pos = 0
    for n in bundle["group_lens"]:
        groups.append(tuple(flat[pos:pos + int(n)]))
        pos += int(n)
    starts = bundle["starts"]
    num_slices = int(bundle.scalar("num_slices"))
    dfas = []
    for i in range(num_slices):
        pairs = bundle[f"outputs_{i}"].reshape(-1, 2)
        outputs = {}
        for s, p in pairs:
            outputs.setdefault(int(s), ())
            outputs[int(s)] += (int(p),)
        trans = bundle[f"trans_{i}"].reshape(-1, fold.width)
        dfas.append(DFA(trans,
                        finals=np.nonzero(bundle[f"final_{i}"])[0],
                        start=int(starts[i]), outputs=outputs))
    fused = None
    if "fused_flat" in bundle:
        fused = FusedTable(
            flat=bundle["fused_flat"], weights=bundle["fused_weights"],
            cell_base=bundle["fused_cell_base"],
            starts=np.asarray([d.start for d in dfas], dtype=np.int64),
            num_states=np.asarray([d.num_states for d in dfas],
                                  dtype=np.int64),
            symbol_width=256)
    union = None
    if "union_csr_keys" in bundle:
        union_rows = int(bundle.scalar("union_rows"))
        utrans = ColdRowStore(bundle["union_csr_keys"],
                              bundle["union_csr_vals"],
                              bundle["union_csr_default"],
                              union_rows).dense_rows()
        upairs = bundle["union_outputs"].reshape(-1, 2)
        uout = {}
        for s, p in upairs:
            uout.setdefault(int(s), ())
            uout[int(s)] += (int(p),)
        union = DFA(utrans,
                    finals=np.nonzero(bundle["union_final"])[0],
                    start=int(bundle.scalar("union_start")),
                    outputs=uout)
    union_order = None
    union_mass = None
    slice_maps = None
    if "hotcold_order" in bundle:
        union_order = bundle["hotcold_order"]
        if "hotcold_mass" in bundle:
            union_mass = bundle["hotcold_mass"]
        slice_maps = bundle["hotcold_slice_maps"].reshape(num_slices, -1)
    pair_foldpair = None
    if "hotcold2_foldpair" in bundle:
        pair_foldpair = bundle["hotcold2_foldpair"]
    regex = bool(bundle.scalar("regex"))
    max_states = int(bundle.scalar("max_states"))
    raw = tuple(patterns)
    partition = None
    if not regex:
        folded = tuple(fold.fold_bytes(p) for p in raw)
        partition = PartitionedDictionary(
            patterns=folded, groups=tuple(groups), dfas=tuple(dfas),
            max_states=max_states)
    return CompiledDictionary(
        patterns=raw, fold=fold, regex=regex, max_states=max_states,
        groups=tuple(groups), dfas=tuple(dfas),
        fingerprint=bundle.scalar("fingerprint"), partition=partition,
        _fused=fused, _union=union, _union_order=union_order,
        _union_mass=union_mass, _slice_maps=slice_maps,
        _pair_foldpair=pair_foldpair)
