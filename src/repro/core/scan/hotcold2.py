"""Pair-symbol (two-byte stride) extension of the hot/cold scan.

Squares the folded alphabet so the hot loop consumes an input *pair*
per gather; escapes replay bytes through the one-byte union table.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFA, DFAError
from .base import (HOT_BUDGET_BYTES, MIN_PIECE, SPECULATION_WARMUP,
                   _ragged_segments, hotcold_lanes_target,
                   hotcold_strip_elems)
from .driver import _chunked_scan, count_arr
from .hotcold import HotColdFusedScanner, HotColdFusedTable


@dataclass
class HotCold2Table:
    """Pair-symbol (two-byte stride) extension of a hot/cold table.

    The §4 inner loop pays one gather per input *byte*; squaring the
    folded alphabet on the hottest states halves that: the ``H2``
    hottest union states get one row of ``width²`` cells each, indexed
    by a *pair* of folded symbols, so the lockstep loop consumes two
    bytes per gather — the paper's unrolling discussion taken one level
    up, and the Hyperflex observation that a compacted hot set makes
    the squared table affordable.

    States are renumbered by *hotness rank* (the base table's
    hottest-first visit order), and a pair cell simply stores the
    destination's rank as an ``int16`` — so a full pair row costs
    ``2·width²`` bytes, a quarter of the flag-doubled ``int32``
    encoding, and whether a destination is pair-hot is one compare
    (``rank < H2``).  The gather index is ``rank·width² + psym``; a
    lane whose rank is not pair-hot overshoots the table and is clamped
    by the gather's clip mode onto the final *parking cell* (value
    ``num_states``), where it stays for the rest of the strip.

    Final flags and multiplicities live in two aux tables addressed by
    the *gather index* rather than the result — so they see the pair's
    source state and both symbols, and can account the *middle* state
    of the pair (the one crossed after the first byte) with no escape:

    * ``fflat``: bit 0 = destination is final, bit 1 = middle state is
      final;
    * ``wflat``: middle multiplicity + destination multiplicity.

    Both are zero on the parking cell, so parked lanes accumulate
    nothing and the strip replay owes exactly the post-escape bytes.
    """

    base: HotColdFusedTable
    hot2_flat: np.ndarray        # int16 (H2·W² + 1,): dest ranks + park
    wflat: np.ndarray            # uint8/uint16/int32, same indexing
    fflat: np.ndarray            # uint8, same indexing (2 bits)
    foldpair: np.ndarray         # uint16 (65536,): psym per LE byte pair
    utr: np.ndarray              # int16 (NS·W,): rank-space transitions
    order: np.ndarray            # int64 (NS,): rank → union state id
    rank_of: np.ndarray          # int64 (NS,): union state id → rank
    wstate: np.ndarray           # int32 (NS + 1,): multiplicity by rank
    fstate: np.ndarray           # int32 (NS + 1,): final flag by rank
    pair_budget_bytes: int
    hot2_mass: Optional[float] = None   # predicted pair-hot visit share

    @property
    def symbol_width(self) -> int:
        return self.base.symbol_width

    @property
    def num_hot2(self) -> int:
        w2 = self.symbol_width * self.symbol_width
        return (len(self.hot2_flat) - 1) // w2

    @property
    def hot2_states(self) -> np.ndarray:
        return self.order[:self.num_hot2]

    @property
    def num_states(self) -> int:
        return self.base.num_states

    @property
    def start(self) -> int:
        return self.base.start

    @property
    def num_dfas(self) -> int:
        return self.base.num_dfas

    @property
    def hot2_bytes(self) -> int:
        """Footprint of the pair transition rows (the budgeted part —
        aux flag/weight tables ride along, like the base table's
        weight layout)."""
        return int(self.hot2_flat.nbytes)

    @property
    def table_bytes(self) -> int:
        """Total footprint of everything a pair scan can touch."""
        return int(self.hot2_flat.nbytes + self.wflat.nbytes
                   + self.fflat.nbytes + self.foldpair.nbytes
                   + self.utr.nbytes + self.base.table_bytes)

    def scanner(self) -> "HotCold2Scanner":
        """A fresh interpreter over this table — the sanctioned route
        for call sites outside ``core/scan`` (scanner classes are
        import-banned there; see the ruff ``banned-api`` rule)."""
        return HotCold2Scanner(self)


def pair_symbol_table(fold_table: np.ndarray, width: int) -> np.ndarray:
    """``foldpair``: folded pair symbol per little-endian byte pair.

    The staged scan path reads input byte pairs through a native
    ``uint16`` view, so the *first* input byte is the low half on
    little-endian hosts (and the high half otherwise)."""
    fold = np.asarray(fold_table, dtype=np.int64)
    pair16 = np.arange(65536, dtype=np.int64)
    first, second = ((pair16 & 255, pair16 >> 8) if np.little_endian
                     else (pair16 >> 8, pair16 & 255))
    return (fold[first] * width + fold[second]).astype(np.uint16)


def build_hot_cold2_table(transitions: np.ndarray, final_mask: np.ndarray,
                          base: HotColdFusedTable,
                          budget_bytes: int = HOT_BUDGET_BYTES,
                          mass: Optional[np.ndarray] = None,
                          foldpair: Optional[np.ndarray] = None
                          ) -> HotCold2Table:
    """Square the folded alphabet on the hottest states of ``base``.

    ``transitions``/``final_mask`` are the same union-automaton arrays
    ``base`` was built from (over the folded alphabet).  The pair-hot
    set is the hottest prefix of the base table's visit order that fits
    ``budget_bytes`` at ``2·width²`` bytes per row — the same budget
    discipline as the base table, applied to the squared stride.
    """
    trans = np.asarray(transitions, dtype=np.int64)
    n, width = trans.shape
    if n != base.num_states or width != base.symbol_width:
        raise DFAError("pair table must be built from the same union "
                       "automaton as its base hot/cold table")
    if n + 1 > np.iinfo(np.int16).max:
        raise DFAError(
            f"pair STT stores int16 state ranks; {n} union states "
            f"exceed the {np.iinfo(np.int16).max - 1} limit")
    w2 = width * width
    order = np.concatenate([base.hot_states,
                            base.cold_states]).astype(np.int64)
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n, dtype=np.int64)
    num_hot2 = max(1, min(n, int(budget_bytes) // (w2 * 2)))

    # Rank-space transition matrix: row r is the hotness-rank image of
    # union state order[r]'s row.
    tr_rank = rank_of[trans[order]]                  # (NS, W)
    utr = tr_rank.astype(np.int16).ravel()
    final = (np.asarray(final_mask) != 0)
    f_rank = final[order].astype(np.int32)
    slots = (base.entry_cells.astype(np.int64) >> 1)
    w_rank = base.weights[slots[order]].astype(np.int64)

    mid = tr_rank[:num_hot2]                         # (H2, W)
    dest = tr_rank[mid]                              # (H2, W, W)
    hot2_flat = np.empty(num_hot2 * w2 + 1, dtype=np.int16)
    hot2_flat[:-1] = dest.reshape(num_hot2 * w2)
    hot2_flat[-1] = n                                # parking cell

    fpair = (f_rank[dest] | (f_rank[mid][:, :, None] << 1))
    fflat = np.zeros(num_hot2 * w2 + 1, dtype=np.uint8)
    fflat[:-1] = fpair.reshape(num_hot2 * w2)

    wpair = (w_rank[mid][:, :, None] + w_rank[dest]).reshape(num_hot2 * w2)
    wmax = int(wpair.max()) if wpair.size else 0
    wdtype = (np.uint8 if wmax <= np.iinfo(np.uint8).max else
              np.uint16 if wmax <= np.iinfo(np.uint16).max else np.int32)
    wflat = np.zeros(num_hot2 * w2 + 1, dtype=wdtype)
    wflat[:-1] = wpair

    if foldpair is None:
        foldpair = pair_symbol_table(base.fold_table, width)
    else:
        foldpair = np.ascontiguousarray(foldpair, dtype=np.uint16)
        if foldpair.shape != (65536,):
            raise DFAError("foldpair table must have 65536 entries")

    wstate = np.zeros(n + 1, dtype=np.int32)
    wstate[:n] = w_rank
    fstate = np.zeros(n + 1, dtype=np.int32)
    fstate[:n] = f_rank

    hot2_mass = None
    if mass is not None:
        mass = np.asarray(mass, dtype=np.float64)
        total = float(mass.sum())
        if total > 0:
            hot2_mass = float(mass[order[:num_hot2]].sum()) / total

    return HotCold2Table(
        base=base, hot2_flat=hot2_flat, wflat=wflat, fflat=fflat,
        foldpair=foldpair, utr=utr, order=order, rank_of=rank_of,
        wstate=wstate, fstate=fstate,
        pair_budget_bytes=int(budget_bytes), hot2_mass=hot2_mass)


class _StagedLanes:
    """Staging for a pair-stride scan: the lane-major raw byte matrix
    (kept for the byte-granular replay path) plus its pair-symbol
    matrix in *position-major* layout ``(pairs, lanes)`` — one
    ``foldpair`` gather per two bytes, transposed in cache-resident
    lane blocks on the way out so the lockstep loop reads contiguous
    rows with no per-strip copies."""

    __slots__ = ("mat", "psym", "lanes", "piece", "pairs")

    def __init__(self, mat: np.ndarray, psym: Optional[np.ndarray]):
        self.mat = mat
        self.psym = psym                  # (pairs, lanes) uint16
        self.lanes, self.piece = mat.shape
        self.pairs = self.piece // 2


class HotCold2Scanner:
    """Two-byte stride lockstep interpreter over a :class:`HotCold2Table`.

    Drop-in compatible with :class:`HotColdFusedScanner` (and hence
    :func:`count_arr` / the chunk fixpoint / ``run_streams``): pointer,
    state_of, scan_cols and step_scalar all speak union states, with
    ``rank·2 | is_final`` as the pointer representation.  The hot loop
    gathers once per input *pair*; destinations outside the pair-hot
    set park the lane (via the gather's clip mode) and the strip is
    replayed byte-by-byte through the rank-space transition matrix.
    Odd strip tails and odd-length inputs take single rank-space steps,
    so chunk pieces and ragged stream segments of any parity compose
    exactly.  Matches landing on the *middle* byte of a pair are
    counted by the gather-indexed flag/weight tables — no escape.

    ``weights`` arguments are a mode switch (matching the base
    scanner's convention): ``None`` counts final-state entries, any
    array selects the table's own multiplicity layout
    (:attr:`weights`, indexed by ``pointer >> 1``).

    For large scans, :func:`_chunked_scan` uses the
    :meth:`stage_lanes` / :meth:`scan_lanes` protocol instead of
    transposing the input to position-major byte columns: the pair
    symbols are staged lane-major in one contiguous gather and each
    strip transposes only a cache-resident slab.
    """

    def __init__(self, table: HotCold2Table) -> None:
        self.table = table
        self.base = HotColdFusedScanner(table.base)
        b = table.base
        self.symbol_width = int(b.symbol_width)
        self.alphabet_size = int(b.symbol_width)
        self.start = int(b.start)
        self.num_states = int(b.num_states)
        self.num_hot2 = int(table.num_hot2)
        self._w = self.symbol_width
        self._w2 = self._w * self._w
        self.flat2 = table.hot2_flat
        self.wflat = table.wflat
        self.fflat = table.fflat
        self.foldpair = table.foldpair
        self.utr = table.utr
        self.order = table.order
        self.rank_of = table.rank_of
        self.wstate = table.wstate
        self.fstate = table.fstate
        self.weights = table.wstate            # indexed by pointer >> 1
        self.foldv = np.asarray(b.fold_table, dtype=np.int32)
        self.foldw = (self.foldv * self._w).astype(np.int32)
        self._rows_rank: dict = {}
        self.reset_stats()

    @property
    def num_dfas(self) -> int:
        return self.table.num_dfas

    # -- instrumentation ---------------------------------------------------------

    def reset_stats(self) -> None:
        #: steps = raw-byte transitions covered by the scan; cold_steps
        #: = bytes replayed outside the pair table; escapes =
        #: lane×strip replay activations.
        self.stats = {"steps": 0, "cold_steps": 0, "escapes": 0}

    @property
    def hot_hit_rate(self) -> float:
        steps = self.stats["steps"]
        if steps <= 0:
            return 1.0
        return 1.0 - self.stats["cold_steps"] / steps

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        r = int(self.rank_of[int(state)])
        return r * 2 + int(self.fstate[r])

    def state_of(self, ptrs):
        p = np.asarray(ptrs, dtype=np.int64)
        out = self.order[p >> 1]
        if p.ndim == 0:
            return int(out)
        return out

    # -- scalar path -------------------------------------------------------------

    def step_scalar(self, ptr: int, symbol: int) -> int:
        r = int(ptr) >> 1
        nr = int(self.utr[r * self._w + int(self.foldv[int(symbol)])])
        return nr * 2 + int(self.fstate[nr])

    # -- rank-space slice projections --------------------------------------------

    def _slice_rows(self, flags: bool) -> np.ndarray:
        """Per-slice accumulation rows indexed by *rank* (park = 0)."""
        key = bool(flags)
        rows = self._rows_rank.get(key)
        if rows is None:
            t = self.table.base
            if t.slice_maps is None:
                raise DFAError(
                    "hot/cold table was built without slice maps")
            src = t.slice_flags if flags else t.slice_weights
            slots = (t.entry_cells.astype(np.int64) >> 1)[self.order]
            rows = np.zeros((len(src), self.num_states + 1),
                            dtype=np.int64)
            rows[:, :self.num_states] = src[:, slots]
            self._rows_rank[key] = rows
        return rows

    # -- staging -----------------------------------------------------------------

    def stage_lanes(self, mat: np.ndarray) -> _StagedLanes:
        """Stage a lane-major byte matrix for :meth:`scan_lanes`."""
        lanes, piece = mat.shape
        pairs = piece // 2
        psym = None
        if pairs:
            u16 = None
            if piece == 2 * pairs:
                try:
                    # One gather per byte pair on a uint16 view
                    # (little-endian: first byte low).  The view can
                    # fail for odd row strides; fall back below.
                    u16 = mat.view(np.uint16)
                except ValueError:
                    u16 = None
            psym = np.empty((pairs, lanes), dtype=np.uint16)
            step = 256
            if u16 is not None:
                # Fused gather+transpose per lane block: each block's
                # symbols are produced and flipped while still hot.
                for j in range(0, lanes, step):
                    psym[:, j:j + step] = self.foldpair.take(
                        u16[j:j + step]).T
            else:
                body = mat[:, :2 * pairs]
                for j in range(0, lanes, step):
                    lo = np.asarray(body[j:j + step, 0::2],
                                    dtype=np.int64)
                    hi = np.asarray(body[j:j + step, 1::2],
                                    dtype=np.int64)
                    psym[:, j:j + step] = (
                        self.foldw.take(lo)
                        + self.foldv.take(hi)).astype(np.uint16).T
        return _StagedLanes(mat, psym)

    def scan_lanes(self, staged: _StagedLanes, sel, t0: int, t1: int,
                   ptrs: np.ndarray, counts: np.ndarray,
                   weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Scan bytes ``[t0, t1)`` of the selected staged lanes.

        ``sel`` is ``None`` (all lanes), a slice, or an index array.
        Pair phase is anchored at byte 0 of the staged matrix, so any
        ``[t0, t1)`` window — including odd boundaries — scans exactly:
        unaligned edge bytes take single rank-space steps.
        """
        return self._scan_span(staged, sel, int(t0), int(t1), ptrs,
                               ((counts, weights),), None)

    def scan_lanes_slices(self, staged: _StagedLanes, sel, t0: int,
                          t1: int, ptrs: np.ndarray,
                          counts2d: np.ndarray,
                          weight_rows: np.ndarray) -> np.ndarray:
        """:meth:`scan_lanes` accumulating every slice at once,
        D-invariantly (sparse scatter at union-final hits).
        ``weight_rows`` are rank-indexed (see :meth:`_slice_rows`)."""
        return self._scan_span(staged, sel, int(t0), int(t1), ptrs, (),
                               (counts2d, weight_rows))

    # -- position-major compatibility --------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """:meth:`HotColdFusedScanner.scan_cols` at two bytes per
        gather; any input length (an odd tail takes one rank step)."""
        staged = self._stage_posmajor(cols)
        return self._scan_span(staged, None, 0, cols.shape[0], ptrs,
                               ((counts, weights),), None)

    def scan_cols_slices(self, cols: np.ndarray, ptrs: np.ndarray,
                         counts2d: np.ndarray,
                         weight_rows: np.ndarray) -> np.ndarray:
        """One pair-stride pass accumulating every slice's counts at
        once.  ``weight_rows`` must be rank-indexed."""
        staged = self._stage_posmajor(cols)
        return self._scan_span(staged, None, 0, cols.shape[0], ptrs, (),
                               (counts2d, weight_rows))

    def _stage_posmajor(self, cols: np.ndarray) -> _StagedLanes:
        """Stage position-major byte columns (transposes the small
        window; the big-block path goes through :meth:`stage_lanes`)."""
        mat = np.ascontiguousarray(cols.T)
        return self.stage_lanes(mat)

    # -- core --------------------------------------------------------------------

    def _scan_span(self, staged: _StagedLanes, sel, t0: int, t1: int,
                   ptrs: np.ndarray, accs, slice_accs) -> np.ndarray:
        if sel is None:
            sel = slice(0, staged.lanes)
        mat = staged.mat[sel]
        lanes = mat.shape[0]
        cur64 = np.asarray(ptrs, dtype=np.int64) >> 1
        cur = cur64.astype(np.int16)
        if t1 <= t0 or not lanes:
            return self._encode(cur)
        self.stats["steps"] += (t1 - t0) * lanes
        if t0 & 1:
            cur = self._single_steps(mat, cur, t0, t0 + 1, accs,
                                     slice_accs)
            t0 += 1
        p_lo, p_hi = t0 // 2, t1 // 2
        if p_hi > p_lo:
            psym = staged.psym[:, sel]   # slice sel: zero-copy view
            cur = self._scan_pairs(mat, psym, p_lo, p_hi, cur, accs,
                                   slice_accs)
        if t1 & 1 and t1 > t0:
            cur = self._single_steps(mat, cur, t1 - 1, t1, accs,
                                     slice_accs)
        return self._encode(cur)

    def _encode(self, cur: np.ndarray) -> np.ndarray:
        r = cur.astype(np.int64)
        return (r * 2 + self.fstate[r]).astype(np.int32)

    def _scan_pairs(self, mat: np.ndarray, psym: np.ndarray,
                    p_lo: int, p_hi: int, cur: np.ndarray,
                    accs, slice_accs) -> np.ndarray:
        lanes = mat.shape[0]
        w2 = self._w2
        h2 = self.num_hot2
        take = self.flat2.take
        mul = np.multiply
        add = np.add
        strip_len = min(p_hi - p_lo,
                        max(8, hotcold_strip_elems() // max(1, lanes)))
        idxs = np.empty((strip_len, lanes), dtype=np.int32)
        ids = np.empty((strip_len, lanes), dtype=np.int16)
        idx_rows = list(idxs)
        ids_rows = list(ids)
        cur = cur.copy()
        for p0 in range(p_lo, p_hi, strip_len):
            b = min(strip_len, p_hi - p0)
            pre = cur
            c = cur
            for i in range(b):
                row = idx_rows[i]
                mul(c, w2, out=row, dtype=np.int32, casting="unsafe")
                add(row, psym[p0 + i], out=row)
                c = ids_rows[i]
                take(row, mode="clip", out=c)
            cur = c.copy()
            self._accumulate(idxs, ids, b, lanes, accs, slice_accs)
            if int(cur.max()) >= h2:
                esc = np.nonzero(cur >= h2)[0]
                self._fix_lanes2(mat, ids, b, 2 * p0, pre, cur, esc,
                                 accs, slice_accs)
        return cur

    def _accumulate(self, idxs: np.ndarray, ids: np.ndarray, b: int,
                    lanes: int, accs, slice_accs) -> None:
        fl = None
        for acc, w in accs:
            if w is None:
                fl = self.fflat.take(idxs[:b], mode="clip")
                np.bitwise_and(fl, 1, out=fl)
                acc += fl.sum(axis=0, dtype=np.int64)
                fl = self.fflat.take(idxs[:b], mode="clip")
                np.right_shift(fl, 1, out=fl)
                acc += fl.sum(axis=0, dtype=np.int64)
            else:
                wv = self.wflat.take(idxs[:b], mode="clip")
                acc += wv.sum(axis=0, dtype=np.int64)
        if slice_accs is None:
            return
        counts2d, rows = slice_accs
        fl = self.fflat.take(idxs[:b], mode="clip")
        tt, ll = np.nonzero(fl)
        if not tt.size:
            return
        fv = fl[tt, ll]
        lanes_idx = []
        ranks = []
        dhit = (fv & 1) != 0
        if dhit.any():
            lanes_idx.append(ll[dhit])
            ranks.append(ids[tt[dhit], ll[dhit]].astype(np.int64))
        mhit = (fv & 2) != 0
        if mhit.any():
            iv = idxs[tt[mhit], ll[mhit]].astype(np.int64)
            lanes_idx.append(ll[mhit])
            ranks.append(self.utr[iv // self._w].astype(np.int64))
        ll_all = np.concatenate(lanes_idx)
        rk_all = np.concatenate(ranks)
        for d in range(len(rows)):
            counts2d[d] += np.bincount(
                ll_all, weights=rows[d, rk_all],
                minlength=lanes).astype(np.int64)

    def _fix_lanes2(self, mat: np.ndarray, ids: np.ndarray, b: int,
                    byte0: int, pre: np.ndarray, cur: np.ndarray,
                    esc: np.ndarray, accs, slice_accs) -> None:
        """Replay escaped lanes byte-by-byte in rank space.

        A lane escapes when a pair's destination leaves the pair-hot
        set (the stored cell is the destination's rank, ``>= H2``) or
        when it entered the strip already cold.  The escape pair itself
        was fully accounted by the gather-indexed aux tables, so the
        replay owes exactly the bytes after it.
        """
        m = int(esc.size)
        self.stats["escapes"] += m
        col = ids[:b, esc]
        h2 = self.num_hot2
        first = np.argmax(col >= h2, axis=0).astype(np.int64)
        ranks = col[first, np.arange(m)].astype(np.int64)
        t_start = 2 * (first + 1)
        precold = pre[esc].astype(np.int64) >= h2
        if precold.any():
            ranks[precold] = pre[esc[precold]].astype(np.int64)
            t_start[precold] = 0
        extra = [np.zeros(m, dtype=np.int64) for _ in accs]
        extra2d = None
        rows = None
        if slice_accs is not None:
            counts2d, rows = slice_accs
            extra2d = np.zeros((len(rows), m), dtype=np.int64)
        w = self._w
        utr = self.utr
        twob = 2 * b
        lo = int(t_start.min())
        for t in range(lo, twob):
            act = np.nonzero(t_start <= t)[0]
            raw = mat[esc[act], byte0 + t].astype(np.int64)
            nr = utr[ranks[act] * w + self.foldv[raw]].astype(np.int64)
            ranks[act] = nr
            for (_, wts), ex in zip(accs, extra):
                if wts is None:
                    ex[act] += self.fstate[nr]
                else:
                    ex[act] += self.wstate[nr]
            if extra2d is not None:
                extra2d[:, act] += rows[:, nr]
            self.stats["cold_steps"] += int(act.size)
        for (acc, _), ex in zip(accs, extra):
            acc[esc] += ex
        if extra2d is not None:
            counts2d[:, esc] += extra2d
        cur[esc] = ranks.astype(np.int16)

    def _single_steps(self, mat: np.ndarray, cur: np.ndarray,
                      t0: int, t1: int, accs,
                      slice_accs) -> np.ndarray:
        """One-byte rank-space steps (edge bytes of unaligned spans
        and odd tails), vectorized across lanes — exact at any rank,
        hot or cold."""
        rows = None
        if slice_accs is not None:
            counts2d, rows = slice_accs
        w = self._w
        r = cur.astype(np.int64)
        for t in range(t0, t1):
            syms = self.foldv[mat[:, t].astype(np.int64)]
            r = self.utr[r * w + syms].astype(np.int64)
            for acc, wts in accs:
                if wts is None:
                    acc += self.fstate[r]
                else:
                    acc += self.wstate[r]
            if rows is not None:
                counts2d += rows[:, r]
        return r.astype(np.int16)

    # -- block scanning ----------------------------------------------------------

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: int,
                          entry_states=None,
                          weights: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-slice ``(counts, exit_states)`` from one pair-
        stride union pass; same contract as the base scanner's.  The
        per-slice accumulation is D-invariant: one flag gather per
        strip plus a sparse scatter at union-final hits."""
        t = self.table.base
        if t.slice_maps is None:
            raise DFAError("hot/cold table was built without slice maps")
        ndfa = len(t.slice_maps)
        start_imgs = t.slice_maps[:, self.start].astype(np.int64)
        if entry_states is not None:
            states = np.asarray(entry_states, dtype=np.int64)
            if not np.array_equal(states, start_imgs):
                raise DFAError(
                    "hot/cold per-DFA scans enter at the union start "
                    "state; arbitrary per-DFA entry states are not "
                    "realizable in the union state space")
        if arr.size == 0:
            return np.zeros(ndfa, dtype=np.int64), start_imgs
        rows = self._slice_rows(flags=weights is None)
        totals, exit_state = self._chunked_multi(arr, chunks, rows)
        return totals, t.slice_maps[:, exit_state].astype(np.int64)

    def _chunked_multi(self, arr: np.ndarray, chunks: int,
                       rows: np.ndarray) -> Tuple[np.ndarray, int]:
        if chunks < 1:
            raise DFAError("chunks must be >= 1")
        n = int(arr.size)
        ndfa = len(rows)
        chunks = min(n, max(int(chunks),
                            min(hotcold_lanes_target(), n // MIN_PIECE)))
        piece_len = n // chunks
        remainder = n - piece_len * chunks
        head = np.zeros(ndfa, dtype=np.int64)
        ptr = self.pointer(self.start)
        for sym in arr[:remainder].tolist():
            ptr = self.step_scalar(ptr, sym)
            head += rows[:, ptr >> 1]
        staged = self.stage_lanes(
            arr[remainder:].reshape(chunks, piece_len))
        entry = np.full(chunks, self.pointer(self.start), dtype=np.int32)
        entry[0] = ptr
        if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
            sink = np.zeros(chunks - 1, dtype=np.int64)
            entry[1:] = self.scan_lanes(
                staged, slice(0, chunks - 1),
                piece_len - SPECULATION_WARMUP, piece_len,
                entry[1:].copy(), sink)
        exits = np.empty(chunks, dtype=np.int32)
        counts = np.zeros((ndfa, chunks), dtype=np.int64)
        todo = np.arange(chunks)
        for _ in range(chunks + 1):
            sel = None if todo.size == chunks else todo
            part = np.zeros((ndfa, todo.size), dtype=np.int64)
            fin = self.scan_lanes_slices(staged, sel, 0, piece_len,
                                         entry[todo], part, rows)
            counts[:, todo] = part
            exits[todo] = fin
            wrong = np.nonzero((exits[:-1] >> 1)
                               != (entry[1:] >> 1))[0] + 1
            if wrong.size == 0:
                break
            entry[wrong] = exits[wrong - 1]
            todo = wrong
        else:
            raise DFAError("pair chunk fixpoint failed to converge; "
                           "this indicates a bug, not an input property")
        return head + counts.sum(axis=1), int(self.state_of(exits[-1]))

    # -- multi-stream scanning ---------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`HotColdFusedScanner.run_streams` at pair stride.

        Ragged segment boundaries and zero/odd-length streams are
        exact: each lockstep segment re-aligns its own pair phase and
        takes single rank steps at unaligned edges, and resumed
        streams re-enter through canonical rank pointers.
        """
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0])
        if start_states is not None:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.num_states):
                raise DFAError("start state out of range")
            ranks = self.rank_of[states[order]]
            ptrs = (ranks * 2 + self.fstate[ranks]).astype(np.int32)
        else:
            ptrs = np.full(nstreams, self.pointer(self.start),
                           dtype=np.int32)
        counts = np.zeros(nstreams, dtype=np.int64)
        if maxlen:
            pad = maxlen + (maxlen & 1)
            mat = np.zeros((nstreams, pad), dtype=np.uint8)
            for k, oi in enumerate(order):
                s = streams[oi]
                if len(s):
                    mat[k, :len(s)] = np.frombuffer(s, dtype=np.uint8)
            staged = self.stage_lanes(mat)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = self.scan_lanes(staged, slice(0, active), lo, hi,
                                      ptrs[:active], counts[:active],
                                      weights=weights)
                ptrs[:active] = fin
        out_counts = np.empty_like(counts)
        out_ptrs = np.empty_like(ptrs)
        out_counts[order] = counts
        out_ptrs[order] = ptrs
        return out_counts, np.asarray(self.state_of(out_ptrs),
                                      dtype=np.int64)
