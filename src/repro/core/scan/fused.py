"""Stacked multi-DFA fused table and its lockstep grid scanner.

The paper's §6 "tiles in series": D distinct STTs over the same
input, one pass, with per-DFA base offsets rebased into one array.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFA, DFAError
from .base import (FUSED_LANES_TARGET, FUSED_STRIP_ELEMS, LANES_TARGET,
                   MIN_PIECE, SPECULATION_WARMUP, STRIP, _ragged_segments)
from .driver import ScanDetail, _chunked_scan, count_arr, repair_detail
from .flat import FlatScanner


@dataclass
class FusedTable:
    """D flag-encoded flat tables stacked into one contiguous array.

    The paper's §6 "tiles in series" runs D distinct STTs over the same
    input on D SPEs.  On the host the SIMD lane dimension can absorb the
    DFA dimension instead: every DFA's rows live in one ``int32`` array
    and each DFA's cells are *rebased* by that DFA's cell offset, so a
    tagged pointer is absolute in the stacked space and one gather per
    input position advances lanes of *different* DFAs at once.  Bases
    are even multiples of the (even) row stride, so bit 0 stays the
    final flag and the §4 no-masking trick survives fusion untouched.

    ``weights`` is the matching stacked multiplicity table: because a
    stacked pointer's high bits are ``cell_base/2 + state × width``, the
    per-DFA weight tables concatenate in the same order and absolute
    ``ptr >> 1`` indexing keeps working.
    """

    flat: np.ndarray          # int32, all tables, cells rebased
    weights: np.ndarray       # int32, stacked multiplicities (+1 slack)
    cell_base: np.ndarray     # int64 per DFA, first cell of its table
    starts: np.ndarray        # int64 per DFA, local start state
    num_states: np.ndarray    # int64 per DFA
    symbol_width: int         # columns per row (256 when fold-composed)

    @property
    def num_dfas(self) -> int:
        return len(self.cell_base)

    @property
    def stride(self) -> int:
        return 2 * self.symbol_width

    def scanner(self) -> "FusedScanner":
        """A fresh interpreter over this table — the sanctioned route
        for call sites outside ``core/scan`` (scanner classes are
        import-banned there; see the ruff ``banned-api`` rule)."""
        return FusedScanner(self)


def fuse_tables(tables: Sequence[Tuple[np.ndarray, np.ndarray]],
                starts: Sequence[int],
                num_states: Sequence[int],
                symbol_width: int) -> FusedTable:
    """Stack per-DFA ``(flat, weights)`` pairs into one :class:`FusedTable`.

    Each flat table's cells are shifted by the table's base offset in
    the stacked array (bases are even, so the flag bit is preserved);
    weight tables are concatenated minus their one-cell slack, with a
    single shared slack cell at the very end.
    """
    if not tables:
        raise DFAError("at least one table required")
    if not (len(tables) == len(starts) == len(num_states)):
        raise DFAError("tables/starts/num_states must align")
    stride = 2 * int(symbol_width)
    sizes = []
    for d, (flat, _) in enumerate(tables):
        if flat.size != int(num_states[d]) * stride:
            raise DFAError(
                f"table {d} has {flat.size} cells, expected "
                f"{int(num_states[d]) * stride} for {num_states[d]} "
                f"states × {symbol_width} symbols")
        sizes.append(int(flat.size))
    cell_base = np.zeros(len(tables), dtype=np.int64)
    cell_base[1:] = np.cumsum(sizes[:-1])
    total = int(cell_base[-1]) + sizes[-1]
    if total > np.iinfo(np.int32).max:
        raise DFAError(
            f"fused STT needs {total} cells, beyond int32; partition "
            f"the dictionary into fewer/smaller slices or scan per-DFA")
    if len(tables) == 1:
        flat0, weights0 = tables[0]
        fused_flat = np.ascontiguousarray(flat0, dtype=np.int32)
        fused_weights = np.ascontiguousarray(weights0, dtype=np.int32)
    else:
        fused_flat = np.empty(total, dtype=np.int32)
        for d, (flat, _) in enumerate(tables):
            lo = int(cell_base[d])
            np.add(flat, np.int32(lo), out=fused_flat[lo:lo + flat.size])
        fused_weights = np.concatenate(
            [np.asarray(w[:-1], dtype=np.int32) for _, w in tables]
            + [np.zeros(1, dtype=np.int32)])
    return FusedTable(
        flat=fused_flat, weights=fused_weights, cell_base=cell_base,
        starts=np.asarray(starts, dtype=np.int64),
        num_states=np.asarray(num_states, dtype=np.int64),
        symbol_width=int(symbol_width))


class _FusedSliceScanner(FlatScanner):
    """One DFA's view of a stacked table: the inherited hot loop runs on
    absolute pointers, only the state↔pointer conversions are rebased.
    This is what lets :func:`count_arr` / :func:`repair_detail` run
    per-DFA over the fused table with zero new scan code."""

    def __init__(self, flat: np.ndarray, symbol_width: int, start: int,
                 num_states: int, cell_base: int) -> None:
        super().__init__(flat, symbol_width, start, num_states)
        self.cell_base = int(cell_base)

    def pointer(self, state: int) -> int:
        return self.cell_base + int(state) * self.stride

    def state_of(self, ptrs):
        return ((ptrs - self.cell_base) >> 1) // self.alphabet_size


class FusedScanner:
    """Lockstep interpreter over a stacked multi-DFA table.

    Lanes form a ``D × L`` grid: axis 0 is the DFA dimension, axis 1
    the chunk/stream dimension.  One strip-mined gather per input
    position advances the whole grid, and the input symbols are read
    *once* and broadcast across the DFA axis — O(n) input traffic no
    matter how many DFAs the dictionary was partitioned into.
    """

    def __init__(self, table: FusedTable) -> None:
        self.table = table
        self.flat = table.flat
        self.weights = table.weights
        self.symbol_width = table.symbol_width
        self.stride = table.stride
        self.cell_base = np.asarray(table.cell_base, dtype=np.int64)
        self.starts = np.asarray(table.starts, dtype=np.int64)
        self.num_states = np.asarray(table.num_states, dtype=np.int64)
        #: Absolute tagged start pointer per DFA.
        self.start_ptrs = (self.cell_base
                           + self.starts * self.stride).astype(np.int32)

    @property
    def num_dfas(self) -> int:
        return len(self.cell_base)

    # -- views & conversions -----------------------------------------------------

    def slice_view(self, d: int) -> FlatScanner:
        """A per-DFA :class:`FlatScanner` over the stacked table (for
        scalar remainders, ledger repair and anything else that wants
        one DFA at a time)."""
        return _FusedSliceScanner(
            self.flat, self.symbol_width, int(self.starts[d]),
            int(self.num_states[d]), int(self.cell_base[d]))

    def entry_ptrs(self, states: Optional[Sequence[int]]) -> np.ndarray:
        """Per-DFA local entry states → absolute tagged pointers."""
        if states is None:
            return self.start_ptrs.copy()
        states = np.asarray(states, dtype=np.int64)
        if states.shape != (self.num_dfas,):
            raise DFAError(
                f"need one entry state per DFA ({self.num_dfas}), got "
                f"shape {states.shape}")
        if states.size and (states.min() < 0
                            or (states >= self.num_states).any()):
            raise DFAError("entry state out of range")
        return (self.cell_base + states * self.stride).astype(np.int32)

    def states_of(self, ptrs: np.ndarray) -> np.ndarray:
        """Absolute tagged pointers (first axis = DFA) → local states."""
        base = self.cell_base.reshape(
            (self.num_dfas,) + (1,) * (ptrs.ndim - 1))
        return ((ptrs - base) >> 1) // self.symbol_width

    # -- the fused hot loop --------------------------------------------------------

    def scan_grid(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Lockstep scan of a ``D × lanes`` pointer grid.

        ``cols`` has shape ``(length, lanes)`` and is shared by every
        DFA: each position's symbol row is doubled once and *broadcast*
        across the DFA axis, so the input is touched once regardless of
        ``D``.  ``ptrs`` has shape ``(D, lanes)``; ``counts`` is an
        ``int64`` ``(D, lanes)`` accumulator updated in place.  Returns
        the tagged exit pointers, shape ``(D, lanes)``.
        """
        length, lanes = cols.shape
        ndfa = ptrs.shape[0]
        if length == 0:
            return ptrs.astype(np.int32).copy()
        take = self.flat.take
        add = np.add
        strip_len = min(STRIP, length,
                        max(8, FUSED_STRIP_ELEMS // max(1, ndfa * lanes)))
        strip = np.empty((strip_len, ndfa, lanes), dtype=np.int32)
        doubled = np.empty((strip_len, 1, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, ndfa, lanes), dtype=np.int32)
        idx = np.empty((ndfa, lanes), dtype=np.int32)
        strip_rows = list(strip)
        doubled_rows = list(doubled)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            doubled[:b, 0, :] = cols[t0:t0 + b]
            np.left_shift(doubled[:b], 1, out=doubled[:b])
            for i in range(b):
                row = strip_rows[i]
                add(cur, doubled_rows[i], out=idx)
                take(idx, out=row)
                cur = row
            if weights is None:
                np.bitwise_and(strip[:b], 1, out=scratch[:b])
            else:
                np.right_shift(strip[:b], 1, out=scratch[:b])
                weights.take(scratch[:b], out=scratch[:b])
            counts += scratch[:b].sum(axis=0)
        return cur.copy()

    # -- fused block scanning ------------------------------------------------------

    def _fused_chunked_scan(self, arr: np.ndarray, chunks: int,
                            entry_states: Optional[Sequence[int]],
                            weights: Optional[np.ndarray]):
        """Shared core of the fused block scans.  Requires
        ``arr.size > 0``.  Returns ``(remainder, head_counts, head_ptrs,
        piece_counts, piece_exit_ptrs)`` — the multi-DFA analogue of
        :func:`_chunked_scan`, same speculation/repair semantics applied
        per DFA, one pass over the input for all of them."""
        if chunks < 1:
            raise DFAError("chunks must be >= 1")
        n = int(arr.size)
        ndfa = self.num_dfas
        lane_target = max(LANES_TARGET,
                          FUSED_LANES_TARGET // max(1, ndfa))
        chunks = min(n, max(int(chunks),
                            min(lane_target, n // MIN_PIECE)))
        piece_len = n // chunks
        remainder = n - piece_len * chunks

        entry_abs = self.entry_ptrs(entry_states)
        head_counts = np.zeros(ndfa, dtype=np.int64)
        head_ptrs = entry_abs.astype(np.int32)
        if remainder:
            # Scalar per-DFA walk: the remainder is bounded by the chunk
            # count, and D short Python loops beat per-byte numpy
            # dispatch on a D-vector.
            head_syms = arr[:remainder].tolist()
            flat = self.flat
            for d in range(ndfa):
                ptr = int(entry_abs[d])
                cnt = 0
                if weights is None:
                    for sym in head_syms:
                        ptr = int(flat[ptr + (sym << 1)])
                        cnt += ptr & 1
                else:
                    for sym in head_syms:
                        ptr = int(flat[ptr + (sym << 1)])
                        cnt += int(weights[ptr >> 1])
                head_counts[d] = cnt
                head_ptrs[d] = ptr

        cols = np.ascontiguousarray(
            arr[remainder:].reshape(chunks, piece_len).T)

        entry = np.empty((ndfa, chunks), dtype=np.int32)
        entry[:] = self.start_ptrs[:, None]
        entry[:, 0] = head_ptrs          # chunk 0's entries are exact
        if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
            # Warm-start the entry guesses from each predecessor's tail
            # (see SPECULATION_WARMUP); counts are discarded.
            sink = np.zeros((ndfa, chunks - 1), dtype=np.int64)
            entry[:, 1:] = self.scan_grid(
                np.ascontiguousarray(
                    cols[piece_len - SPECULATION_WARMUP:, :-1]),
                entry[:, 1:], sink)
        exits = np.empty((ndfa, chunks), dtype=np.int32)
        counts = np.zeros((ndfa, chunks), dtype=np.int64)
        todo = np.arange(chunks)
        for _ in range(chunks + 1):
            sub = cols if todo.size == chunks else cols[:, todo]
            part = np.zeros((ndfa, todo.size), dtype=np.int64)
            fin = self.scan_grid(sub, entry[:, todo], part,
                                 weights=weights)
            counts[:, todo] = part
            exits[:, todo] = fin
            # A chunk is rescanned when *any* DFA's entry guess proved
            # wrong; lanes whose guess was right recompute identical
            # counts (determinism), so the union repair stays exact.
            wrong_mask = (exits[:, :-1] >> 1) != (entry[:, 1:] >> 1)
            wrong = np.nonzero(wrong_mask.any(axis=0))[0] + 1
            if wrong.size == 0:
                break
            entry[:, wrong] = exits[:, wrong - 1]
            todo = wrong
        else:
            raise DFAError("fused chunk fixpoint failed to converge; "
                           "this indicates a bug, not an input property")
        return remainder, head_counts, head_ptrs, counts, exits

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: int,
                          entry_states: Optional[Sequence[int]] = None,
                          weights: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-DFA ``(counts, exit_states)`` over one symbol
        array, every DFA advanced in the same pass.  Bit-identical to
        running :func:`count_arr` once per DFA (exactness is invariant
        under chunking), but the input is traversed once and the chunk
        count is widened toward ``FUSED_LANES_TARGET`` total lanes so
        the grid keeps full gather width at any partition count."""
        if arr.size == 0:
            states = self.starts.copy() if entry_states is None else \
                np.asarray(entry_states, dtype=np.int64)
            return np.zeros(self.num_dfas, dtype=np.int64), states
        _, head, _, counts, exits = self._fused_chunked_scan(
            arr, chunks, entry_states, weights)
        totals = head + counts.sum(axis=1)
        return totals, self.states_of(exits[:, -1]).astype(np.int64)

    def count_arr_detail_per_dfa(self, arr: np.ndarray, chunks: int,
                                 entry_states: Optional[Sequence[int]]
                                 = None,
                                 weights: Optional[np.ndarray] = None
                                 ) -> List["ScanDetail"]:
        """Per-DFA :class:`ScanDetail` ledgers from one fused pass —
        what a pooled worker returns so the host can repair each DFA's
        chain independently."""
        states = self.starts if entry_states is None else \
            np.asarray(entry_states, dtype=np.int64)
        if arr.size == 0:
            return [ScanDetail(int(states[d]),
                               np.zeros(1, dtype=np.int64),
                               np.zeros(0, dtype=np.int64),
                               np.zeros(0, dtype=np.int32))
                    for d in range(self.num_dfas)]
        remainder, head, head_ptrs, counts, exits = \
            self._fused_chunked_scan(arr, chunks, entry_states, weights)
        pieces = counts.shape[1]
        piece_len = (int(arr.size) - remainder) // pieces
        bounds = np.empty(pieces + 2, dtype=np.int64)
        bounds[0] = 0
        bounds[1:] = remainder + piece_len * np.arange(pieces + 1,
                                                       dtype=np.int64)
        head_states = self.states_of(head_ptrs)
        exit_states = self.states_of(exits)
        details = []
        for d in range(self.num_dfas):
            seg_counts = np.concatenate(
                ([head[d]], counts[d])).astype(np.int64)
            seg_exits = np.concatenate(
                ([head_states[d]], exit_states[d])).astype(np.int32)
            details.append(ScanDetail(int(states[d]), bounds,
                                      seg_counts, seg_exits))
        return details

    # -- fused multi-stream scanning -----------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scan independent (possibly ragged) streams, all DFAs at once.

        Returns ``(counts, final_states)``, both shaped
        ``(num_dfas, num_streams)``.  Streams may have different
        lengths: lanes are sorted by length and retired as their
        streams end, so a zero-length stream simply keeps its entry
        state.  ``start_states`` is per-DFA (shape ``(D,)``) — every
        stream of DFA ``d`` enters at that DFA's state.  This is the
        paper's 16-interleaved-streams idea with the DFA dimension
        fused in — the service batch executor's engine.
        """
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0])
        ndfa = self.num_dfas

        entry = self.entry_ptrs(start_states)
        ptrs = np.empty((ndfa, nstreams), dtype=np.int32)
        ptrs[:] = entry[:, None]
        counts = np.zeros((ndfa, nstreams), dtype=np.int64)
        if maxlen:
            cols = np.zeros((maxlen, nstreams), dtype=np.uint8)
            for k, oi in enumerate(order):
                s = streams[oi]
                if len(s):
                    cols[:len(s), k] = np.frombuffer(s, dtype=np.uint8)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = self.scan_grid(cols[lo:hi, :active],
                                     ptrs[:, :active],
                                     counts[:, :active],
                                     weights=weights)
                ptrs[:, :active] = fin
        out_counts = np.empty_like(counts)
        out_ptrs = np.empty_like(ptrs)
        out_counts[:, order] = counts
        out_ptrs[:, order] = ptrs
        return out_counts, self.states_of(out_ptrs).astype(np.int32)


# ---------------------------------------------------------------------------
# Hot/cold split of the union automaton (cache-resident fused scanning)
# ---------------------------------------------------------------------------
