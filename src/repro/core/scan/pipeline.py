"""Explicit staged scan pipelines.

``execute`` used to be a chain of flag branches; it now *assembles* a
:class:`ScanPipeline` — an ordered list of stages, each of which either
produces the scan's final result or declines and passes control to the
next stage.  The assembled object is inspectable (``describe()`` names
the stages in order), so tests and ``repro info`` can state exactly
which path a request takes instead of re-deriving it from flags.

Two stage shapes exist today:

* :class:`PrefilterStage` — packed trigram screening
  (:mod:`.prefilter`).  On a clean or sparse block it verifies the
  candidate windows itself and short-circuits the pipeline; on a
  match-dense block it records its screening statistics and declines,
  letting the kernel stage scan the whole block.
* :class:`BackendStage` — the terminal stage: one registered backend /
  kernel doing the exact scan.  It never declines.

The stage protocol is one method, ``run(notes) -> result | None``:
return the final result to stop the pipeline, or ``None`` to pass.
``notes`` is a scratch dict shared along the pipeline; whatever lands
there is merged into the outcome's stats by the driver, so a declining
stage still gets its telemetry reported.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ...dfa.automaton import DFAError
from .prefilter import PackedPrefilter

__all__ = ["ScanPipeline", "PrefilterStage", "BackendStage"]


class ScanPipeline:
    """An ordered list of stages; the first stage to return a result
    wins.  The terminal stage must always return one."""

    def __init__(self, stages: List) -> None:
        if not stages:
            raise DFAError("a scan pipeline needs at least one stage")
        self.stages = stages
        #: Scratch space shared along the run; the driver merges it
        #: into the outcome's stats.
        self.notes: Dict[str, object] = {}

    def run(self):
        for stage in self.stages:
            result = stage.run(self.notes)
            if result is not None:
                return result
        raise DFAError(
            f"pipeline {self.describe()!r} ended without a result; the "
            f"terminal stage must always produce one")

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def describe(self) -> str:
        return " -> ".join(self.stage_names)

    def __repr__(self) -> str:
        return f"ScanPipeline({self.describe()})"


class PrefilterStage:
    """Screen one block; verify candidate windows or decline.

    ``run_segments(arr, segments, pstats)`` is supplied by the driver
    and must return the final outcome for the (possibly empty) disjoint
    candidate windows — counting through a kernel, or replaying the
    reference event walk per window.  On ``fall_through`` the stage
    records its stats in ``notes`` and declines, so the bare kernel
    stage scans the whole block.
    """

    name = "prefilter"

    def __init__(self, prefilter: PackedPrefilter, arr: np.ndarray,
                 run_segments: Callable) -> None:
        self.prefilter = prefilter
        self.arr = arr
        self.run_segments = run_segments

    def run(self, notes: Dict[str, object]):
        res = self.prefilter.screen(self.arr)
        pstats = {
            "mask_bytes": self.prefilter.mask_bytes,
            "stride": self.prefilter.stride,
            "positions": res.positions,
            "hits": res.hits,
            "segments": int(len(res.segments)),
            "candidate_bytes": res.candidate_bytes,
            "candidate_fraction": (res.candidate_bytes / self.arr.size
                                   if self.arr.size else 0.0),
            "fall_through": res.fall_through,
        }
        if res.fall_through:
            notes["prefilter"] = pstats
            return None
        return self.run_segments(self.arr, res.segments, pstats)


class BackendStage:
    """Terminal stage: one registered backend running the full scan."""

    def __init__(self, name: str, run: Callable) -> None:
        self.name = name
        self._run = run

    def run(self, notes: Dict[str, object]):
        return self._run()
