"""Flag-encoded flat STT and the single-DFA lockstep scanner.

The paper's §4 pointer trick on the host: two ``int32`` cells per
symbol, bit 0 of every cell is the destination's is-final flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFA, DFAError
from .base import STRIP


def build_flat_table(transitions: np.ndarray,
                     final_mask: np.ndarray,
                     fold_table: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, int]:
    """Flag-encoded flat STT (the paper's §4 tagged row pointers).

    Row stride is ``2 × alphabet_size`` cells and every transition is
    stored twice, at offsets ``2·symbol`` and ``2·symbol + 1`` of its row.
    A cell holds ``dest_row_offset | is_final(dest)``: the row offset is a
    multiple of the (even) stride, so bit 0 is free for the flag, and the
    duplication makes ``flat[tagged_ptr + 2·symbol]`` land on the right
    cell whether or not the flag bit is set — the hot loop never masks.

    With ``fold_table`` (a 256-entry byte→symbol map) the fold is
    *composed* into the table: each row is expanded to one column per raw
    byte value, so the scanner gathers on unfolded input directly and the
    per-block ``fold[raw]`` materialization disappears.  The cost is a
    wider row (stride ``512`` instead of ``2 × alphabet``), i.e. 2 KB per
    state — a host-memory trade the Cell's local store could never make.

    Returns ``(flat, stride)`` with ``flat`` a 1-D contiguous ``int32``
    array of ``num_states × stride`` cells.
    """
    table = np.asarray(transitions, dtype=np.int64)
    if fold_table is not None:
        fold = np.asarray(fold_table, dtype=np.int64)
        if fold.shape != (256,):
            raise DFAError("fold table must map all 256 byte values")
        if fold.size and int(fold.max()) >= table.shape[1]:
            raise DFAError("fold table maps outside the DFA alphabet")
        table = table[:, fold]
    num_states, alphabet = table.shape
    stride = 2 * alphabet
    top = (num_states - 1) * stride + 1
    if top > np.iinfo(np.int32).max:
        raise DFAError(
            f"flat STT needs offsets up to {top}, beyond int32; "
            f"{num_states} states × {alphabet} symbols is too large")
    cells = table * stride + np.asarray(final_mask)[table]
    flat = np.empty((num_states, stride), dtype=np.int32)
    flat[:, 0::2] = cells
    flat[:, 1::2] = cells
    return np.ascontiguousarray(flat.reshape(-1)), stride


def build_weight_table(dfa: DFA,
                       symbol_width: Optional[int] = None) -> np.ndarray:
    """Per-state match multiplicities, addressable by ``pointer >> 1``.

    ``weight[s]`` is the number of dictionary entries recognized on
    *entering* state ``s``: ``len(outputs[s])`` when outputs are attached,
    else 1 for final states (the paper's counting kernels) and 0 for the
    rest.  The table is expanded to ``num_states × symbol_width`` so that
    a tagged pointer's high bits (``ptr >> 1 == state × symbol_width``)
    index it directly — the "other frugal output values" the paper packs
    next to the flag, kept in a side table here because multiplicities
    exceed the one spare bit.  ``symbol_width`` defaults to the DFA's
    alphabet; pass 256 when pairing with a fold-composed flat table.
    """
    width = dfa.alphabet_size if symbol_width is None else int(symbol_width)
    weights = np.zeros(dfa.num_states * width + 1, dtype=np.int32)
    for s in range(dfa.num_states):
        if dfa.final_mask[s]:
            weights[s * width] = len(dfa.outputs.get(s, ())) or 1
    return weights


class FlatScanner:
    """Lockstep interpreter over a flag-encoded flat STT.

    Decoupled from :class:`DFA` so it can run over *borrowed* memory — in
    particular over tables living in ``multiprocessing.shared_memory``
    segments attached by :mod:`repro.parallel` workers.
    """

    def __init__(self, flat: np.ndarray, alphabet_size: int, start: int,
                 num_states: int) -> None:
        self.flat = flat
        self.alphabet_size = int(alphabet_size)
        self.start = int(start)
        self.num_states = int(num_states)
        self.stride = 2 * self.alphabet_size

    @classmethod
    def from_dfa(cls, dfa: DFA) -> "FlatScanner":
        flat, _ = build_flat_table(dfa.transitions, dfa.final_mask)
        return cls(flat, dfa.alphabet_size, dfa.start, dfa.num_states)

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        """Untagged row pointer of ``state``."""
        return int(state) * self.stride

    def state_of(self, ptrs):
        """Tagged pointer(s) → state id(s); works on scalars and arrays."""
        return (ptrs >> 1) // self.alphabet_size

    # -- hot loop ----------------------------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Lockstep scan of a position-major symbol matrix.

        ``cols`` has shape ``(length, lanes)`` (row ``t`` holds every
        lane's symbol at position ``t``), ``ptrs`` the tagged entry
        pointers, ``counts`` an ``int64`` per-lane accumulator updated in
        place.  With ``weights`` the accumulation is the per-state match
        multiplicity instead of the flag bit.  Returns the tagged exit
        pointers.
        """
        length, lanes = cols.shape
        if length == 0:
            return ptrs.astype(np.int32).copy()
        take = self.flat.take
        add = np.add
        strip_len = min(STRIP, length)
        strip = np.empty((strip_len, lanes), dtype=np.int32)
        doubled = np.empty((strip_len, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, lanes), dtype=np.int32)
        idx = np.empty(lanes, dtype=np.int32)
        # Row views made once, not per step: the inner loop is dispatch-
        # bound, so even view creation shows up.
        strip_rows = list(strip)
        doubled_rows = list(doubled)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            # Cast first, shift second: a fused uint8 multiply would wrap
            # at 256 before the widening to int32.
            doubled[:b] = cols[t0:t0 + b]
            np.left_shift(doubled[:b], 1, out=doubled[:b])
            for i in range(b):
                row = strip_rows[i]
                add(cur, doubled_rows[i], out=idx)
                take(idx, out=row)
                cur = row
            if weights is None:
                np.bitwise_and(strip[:b], 1, out=scratch[:b])
            else:
                np.right_shift(strip[:b], 1, out=scratch[:b])
                weights.take(scratch[:b], out=scratch[:b])
            counts += scratch[:b].sum(axis=0)
        return cur.copy()

    def step_scalar(self, ptr: int, symbol: int) -> int:
        """One scalar transition on tagged pointers (remainder handling)."""
        return int(self.flat[ptr + (int(symbol) << 1)])
