"""The ScanKernel protocol: every inner loop behind one interface.

A *kernel* adapts one scanner family (flat, fused, hotcold, hotcold2)
to a uniform surface so the backends, the sharded pool, the service
batcher and the differential tests stop branching on scanner types:

``table``
    The kernel's table object(s) — introspection and size accounting.
``count_arr_per_dfa(arr, chunks)``
    Exact per-slice ``(counts, exit_states)`` over one block, exit
    states in *slice-local* state space for every kernel (union
    kernels project through their slice maps), so results are
    directly comparable across kernels.
``count_total(arr, chunks)``
    Exact whole-dictionary total over one block — the headline scan.
``count_arr_detail(arr, chunks)``
    Per-slice speculation ledgers (:class:`ScanDetail`) for the
    sharded pool's incremental repair.
``run_streams(streams)``
    Ragged multi-stream totals: ``(totals, finals)`` with ``totals``
    shaped ``(num_streams,)`` (whole-dictionary, weighted) and
    ``finals`` shaped ``(num_slices, num_streams)`` in slice-local
    states — the service batcher's and the prefilter verifier's
    engine.
``stats()`` / ``reset_stats()``
    Scanner-side counters (hot-hit rate, escapes, ...); empty for
    kernels without accounting.
``shared_export()``
    The kernel's whole artifact as one
    :class:`~repro.core.scan.bundle.SharedArrayBundle`; the matching
    classmethod ``from_bundle`` rebuilds the kernel worker-side.

Kernels register by name in :data:`KERNELS`; planners and pools refer
to kernels by these names.  A future inner loop (3-byte chaining,
speculative SIMD variants) is one new kernel class here — not a new
scanner plumbed through five layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ...dfa.automaton import DFAError
from .base import _ragged_segments, hotcold_lanes_target
from .bundle import SharedArrayBundle, bundle_from_table, \
    scanner_from_bundle
from .driver import ScanDetail, count_arr, count_arr_detail
from .flat import FlatScanner

__all__ = ["ScanKernel", "FlatKernel", "FusedKernel", "HotColdKernel",
           "HotCold2Kernel", "KERNELS", "register_kernel", "get_kernel",
           "kernel_names"]


KERNELS: Dict[str, Type["ScanKernel"]] = {}


def register_kernel(cls: Type["ScanKernel"]) -> Type["ScanKernel"]:
    """Class decorator: add one kernel to the registry."""
    if not cls.name:
        raise DFAError("kernel must declare a name")
    if cls.name in KERNELS:
        raise DFAError(f"kernel {cls.name!r} already registered")
    KERNELS[cls.name] = cls
    return cls


def get_kernel(name: str) -> Type["ScanKernel"]:
    try:
        return KERNELS[name]
    except KeyError:
        raise DFAError(
            f"unknown kernel {name!r}; registered: "
            f"{', '.join(KERNELS)}") from None


def kernel_names() -> List[str]:
    return list(KERNELS)


class ScanKernel:
    """Base class / protocol for one inner-loop family."""

    #: Registry key.
    name: str = ""
    #: Speculation-granularity floor for block scans.
    chunks: int = 256

    @classmethod
    def supports(cls, compiled) -> bool:
        """Whether this kernel can serve the compiled dictionary."""
        return True

    @classmethod
    def from_compiled(cls, compiled) -> "ScanKernel":
        raise NotImplementedError

    @classmethod
    def from_bundle(cls, bundle: SharedArrayBundle) -> "ScanKernel":
        raise NotImplementedError

    # -- protocol ----------------------------------------------------------------

    @property
    def table(self):
        raise NotImplementedError

    @property
    def num_slices(self) -> int:
        raise NotImplementedError

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: Optional[int]
                          = None) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def count_total(self, arr: np.ndarray,
                    chunks: Optional[int] = None) -> int:
        """Whole-dictionary weighted total over one block."""
        counts, _ = self.count_arr_per_dfa(arr, chunks)
        return int(counts.sum())

    def count_arr_detail(self, arr: np.ndarray, chunks: Optional[int]
                         = None) -> List[ScanDetail]:
        raise NotImplementedError

    def run_streams(self, streams: Sequence[bytes]
                    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def stats(self) -> Dict:
        return {}

    def reset_stats(self) -> None:
        pass

    def shared_export(self) -> SharedArrayBundle:
        raise NotImplementedError


@register_kernel
class FlatKernel(ScanKernel):
    """One flag-encoded flat table per dictionary slice (§4 reference).

    The only kernel with no cross-slice sharing: D slices cost D passes
    over the input.  Kept as the baseline every other kernel must match
    bit-for-bit.
    """

    name = "flat"

    def __init__(self, scanners: List[FlatScanner],
                 weights: List[np.ndarray]) -> None:
        self.scanners = scanners
        self.weights = weights

    @classmethod
    def from_compiled(cls, compiled) -> "FlatKernel":
        return cls(compiled.scanners(),
                   [w for _, w in compiled.tables()])

    @classmethod
    def from_bundle(cls, bundle: SharedArrayBundle) -> "FlatKernel":
        ndfa = bundle.scalar("num_dfas")
        starts = bundle.scalar("starts")
        nstates = bundle.scalar("num_states")
        width = bundle.scalar("symbol_width")
        scanners = [FlatScanner(bundle[f"flat{d}"], width, starts[d],
                                nstates[d]) for d in range(ndfa)]
        return cls(scanners, [bundle[f"weights{d}"] for d in range(ndfa)])

    @property
    def table(self) -> List[np.ndarray]:
        return [sc.flat for sc in self.scanners]

    @property
    def num_slices(self) -> int:
        return len(self.scanners)

    def count_arr_per_dfa(self, arr, chunks=None):
        chunks = chunks or self.chunks
        counts = np.zeros(self.num_slices, dtype=np.int64)
        exits = np.empty(self.num_slices, dtype=np.int64)
        for d, sc in enumerate(self.scanners):
            if arr.size:
                cnt, exit_state = count_arr(sc, arr, chunks, sc.start,
                                            weights=self.weights[d])
            else:
                cnt, exit_state = 0, sc.start
            counts[d] = cnt
            exits[d] = exit_state
        return counts, exits

    def count_arr_detail(self, arr, chunks=None):
        chunks = chunks or self.chunks
        return [count_arr_detail(sc, arr, chunks, sc.start,
                                 weights=self.weights[d])
                for d, sc in enumerate(self.scanners)]

    def run_streams(self, streams):
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0]) if nstreams else 0
        cols = np.zeros((maxlen, nstreams), dtype=np.uint8)
        for k, oi in enumerate(order):
            s = streams[oi]
            if len(s):
                cols[:len(s), k] = np.frombuffer(s, dtype=np.uint8)
        totals = np.zeros(nstreams, dtype=np.int64)
        finals = np.empty((self.num_slices, nstreams), dtype=np.int64)
        for d, sc in enumerate(self.scanners):
            ptrs = np.full(nstreams, sc.pointer(sc.start), dtype=np.int32)
            counts = np.zeros(nstreams, dtype=np.int64)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = sc.scan_cols(cols[lo:hi, :active], ptrs[:active],
                                   counts[:active],
                                   weights=self.weights[d])
                ptrs[:active] = fin
            out_counts = np.empty_like(counts)
            out_ptrs = np.empty_like(ptrs)
            out_counts[order] = counts
            out_ptrs[order] = ptrs
            totals += out_counts
            finals[d] = sc.state_of(out_ptrs)
        return totals, finals

    def shared_export(self) -> SharedArrayBundle:
        arrays = []
        for d, sc in enumerate(self.scanners):
            arrays.append((f"flat{d}", sc.flat))
            arrays.append((f"weights{d}", self.weights[d]))
        return SharedArrayBundle("flat_set", arrays, {
            "num_dfas": self.num_slices,
            "starts": [sc.start for sc in self.scanners],
            "num_states": [sc.num_states for sc in self.scanners],
            "symbol_width": self.scanners[0].alphabet_size,
        })


class _ScannerKernel(ScanKernel):
    """Shared adapter body for the single-scanner kernels."""

    def __init__(self, scanner) -> None:
        self.scanner = scanner

    @classmethod
    def from_bundle(cls, bundle: SharedArrayBundle):
        if bundle.kind != cls.name:
            raise DFAError(
                f"kernel {cls.name!r} cannot attach a {bundle.kind!r} "
                f"bundle")
        return cls(scanner_from_bundle(bundle))

    @property
    def table(self):
        return self.scanner.table

    def shared_export(self) -> SharedArrayBundle:
        return bundle_from_table(self.table)

    def stats(self) -> Dict:
        stats = dict(getattr(self.scanner, "stats", None) or {})
        if hasattr(self.scanner, "hot_hit_rate"):
            stats["hot_hit_rate"] = self.scanner.hot_hit_rate
        return stats

    def reset_stats(self) -> None:
        if hasattr(self.scanner, "reset_stats"):
            self.scanner.reset_stats()


@register_kernel
class FusedKernel(_ScannerKernel):
    """Stacked multi-slice table, lanes = slices × chunks (§6)."""

    name = "fused"

    @classmethod
    def from_compiled(cls, compiled) -> "FusedKernel":
        return cls(compiled.fused_scanner())

    @property
    def num_slices(self) -> int:
        return self.scanner.num_dfas

    def count_arr_per_dfa(self, arr, chunks=None):
        fs = self.scanner
        counts, exits = fs.count_arr_per_dfa(arr, chunks or self.chunks,
                                             weights=fs.weights)
        return counts, np.asarray(exits, dtype=np.int64)

    def count_arr_detail(self, arr, chunks=None):
        fs = self.scanner
        return fs.count_arr_detail_per_dfa(arr, chunks or self.chunks,
                                           weights=fs.weights)

    def run_streams(self, streams):
        fs = self.scanner
        counts, finals = fs.run_streams(streams, weights=fs.weights)
        return counts.sum(axis=0), np.asarray(finals, dtype=np.int64)


class _UnionKernel(_ScannerKernel):
    """Shared body for the hot/cold union kernels: whole-dictionary
    scans over one union automaton, per-slice results projected through
    the table's slice maps."""

    @classmethod
    def supports(cls, compiled) -> bool:
        return compiled.supports_hot_cold

    @property
    def _slice_maps(self) -> np.ndarray:
        maps = self._base_table.slice_maps
        if maps is None:
            raise DFAError(
                "hot/cold table was built without slice maps")
        return maps

    @property
    def _base_table(self):
        return self.table

    @property
    def num_slices(self) -> int:
        maps = self._base_table.slice_maps
        return 1 if maps is None else len(maps)

    def count_arr_per_dfa(self, arr, chunks=None):
        sc = self.scanner
        counts, exits = sc.count_arr_per_dfa(arr, chunks or self.chunks,
                                             weights=sc.weights)
        return counts, np.asarray(exits, dtype=np.int64)

    def count_total(self, arr, chunks=None):
        sc = self.scanner
        if not arr.size:
            return 0
        cnt, _ = count_arr(sc, arr, chunks or self.chunks, sc.start,
                           weights=sc.weights,
                           lanes_target=hotcold_lanes_target())
        return int(cnt)

    def count_arr_detail(self, arr, chunks=None):
        sc = self.scanner
        return [count_arr_detail(sc, arr, chunks or self.chunks,
                                 sc.start, weights=sc.weights)]

    def run_streams(self, streams):
        sc = self.scanner
        counts, finals = sc.run_streams(streams, weights=sc.weights)
        finals = np.asarray(finals, dtype=np.int64)
        return counts, self._slice_maps[:, finals].astype(np.int64)


@register_kernel
class HotColdKernel(_UnionKernel):
    """Cache-resident hot/cold union table, one gather per byte (§4)."""

    name = "hotcold"

    @classmethod
    def from_compiled(cls, compiled) -> "HotColdKernel":
        return cls(compiled.hot_cold_scanner())


@register_kernel
class HotCold2Kernel(_UnionKernel):
    """Pair-symbol hot table, one gather per two input bytes (§4)."""

    name = "hotcold2"

    @classmethod
    def supports(cls, compiled) -> bool:
        return compiled.supports_hot_cold

    @classmethod
    def from_compiled(cls, compiled) -> "HotCold2Kernel":
        return cls(compiled.hot_cold2_scanner())

    @property
    def _base_table(self):
        return self.table.base
