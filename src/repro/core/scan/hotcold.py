"""Hot/cold split of the union automaton (cache-resident scanning).

One union AC automaton advances every dictionary slice at once; the
frequently-visited rows are packed into a cache-resident hot table and
the rest spill to a :class:`~repro.core.compressed.ColdRowStore`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...dfa.automaton import DFA, DFAError
from ..compressed import ColdRowStore
from .base import (HOT_BUDGET_BYTES, MIN_PIECE, SPECULATION_WARMUP, STRIP,
                   _ragged_segments, hotcold_lanes_target,
                   hotcold_strip_elems)
from .driver import ScanDetail, _chunked_scan, count_arr, count_arr_detail, \
    repair_detail
from .flat import FlatScanner


def visit_order(transitions: np.ndarray, start: int,
                fold_table: Optional[np.ndarray] = None,
                iters: int = 12, damping: float = 0.15
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic hotness ranking of DFA states.

    Runs a damped power iteration of the DFA's transition graph under
    the per-symbol probabilities implied by the fold (a symbol's weight
    is the number of byte values folding to it, i.e. the stationary
    distribution of a uniformly random *byte* stream).  Inputs are not
    uniform, but what the ranking must get right is only the split into
    "visited constantly" (the failure-closed neighborhood of the start
    state) versus "visited while matching" — and that split is a
    structural property of security DFAs, not of the corpus.  Being
    input-free keeps the ranking a pure function of the compiled
    dictionary, so it can be persisted in the artifact cache.

    Returns ``(order, mass)``: states sorted hottest-first with
    ``start`` forced to the front, and the stationary mass per state.
    """
    trans = np.asarray(transitions, dtype=np.int64)
    n, width = trans.shape
    if fold_table is not None:
        probs = np.bincount(np.asarray(fold_table, dtype=np.int64),
                            minlength=width).astype(np.float64)
        probs /= max(probs.sum(), 1.0)
    else:
        probs = np.full(width, 1.0 / width)
    restart = np.zeros(n, dtype=np.float64)
    restart[int(start)] = 1.0
    v = restart.copy()
    targets = trans.reshape(-1)
    for _ in range(int(iters)):
        contrib = (v[:, None] * probs[None, :]).reshape(-1)
        v = np.bincount(targets, weights=contrib, minlength=n)
        v = (1.0 - damping) * v + damping * restart
    order = np.argsort(-v, kind="stable").astype(np.int64)
    order = np.concatenate(([int(start)], order[order != int(start)]))
    return order, v


def project_states(union_trans: np.ndarray, union_start: int,
                   slice_trans: np.ndarray, slice_start: int) -> np.ndarray:
    """Map every union-automaton state to its image in one slice DFA.

    For Aho–Corasick automata the state reached by a string is its
    longest suffix that is a pattern prefix.  A suffix of a union
    state's canonical string that is a *slice* prefix is also a union
    prefix, hence itself a suffix of the union state's canonical string
    — so the slice state reached by *any* string arriving at union
    state ``s`` is the same, and the map ``img`` is well defined.  It
    satisfies ``img[union_trans[s, c]] == slice_trans[img[s], c]``,
    which is exactly the BFS recurrence used here.
    """
    union_trans = np.asarray(union_trans, dtype=np.int64)
    slice_trans = np.asarray(slice_trans, dtype=np.int64)
    n = union_trans.shape[0]
    img = np.full(n, -1, dtype=np.int64)
    img[int(union_start)] = int(slice_start)
    frontier = np.asarray([int(union_start)], dtype=np.int64)
    while frontier.size:
        targets = union_trans[frontier].reshape(-1)
        cand = slice_trans[img[frontier]].reshape(-1)
        fresh = np.nonzero(img[targets] < 0)[0]
        if fresh.size == 0:
            break
        t, first = np.unique(targets[fresh], return_index=True)
        img[t] = cand[fresh][first]
        frontier = t
    # Unreachable union states have no canonical string; any image is
    # consistent (they never occur in a scan).
    img[img < 0] = int(slice_start)
    return img


@dataclass
class HotColdFusedTable:
    """Hot/cold split of the union automaton's flag-encoded table.

    The paper's §4 answer to "the STT must fit local store" is to refuse
    dictionaries whose table does not.  The hot/cold split keeps the
    discipline but only demands residency of the *frequently visited*
    states: the hottest ``H`` states (by :func:`visit_order`) are
    renumbered onto one compact contiguous table of ``H`` rows over the
    **folded** alphabet — typically ~8× narrower than the fold-composed
    fused rows — and every other state collapses to a two-cell *escape
    encoding* resolved by a :class:`~repro.core.compressed.ColdRowStore`
    (default-transition compressed against the start state's row).

    Cell encodings (``stride = 2 × symbol_width``, bit 0 = is-final):

    * hot state ``h``:   ``h·stride | flag`` — the §4 tagged pointer,
      gathered with the usual no-masking trick;
    * cold state ``j``:  ``escape_base + 2 + 2·j | flag`` where
      ``escape_base = H·stride``.  These point into a *parking zone*
      appended to the hot table whose every cell holds ``escape_base``,
      so a lane that goes cold parks itself (self-loop, flag 0,
      weight 0) for the rest of the strip and the scanner replays its
      true trajectory through the cold store afterwards.

    The weight table is addressed by ``cell >> 1`` like the fused one:
    hot states land on ``h·symbol_width``, the parking cell on a
    dedicated zero slot, cold states on compact trailing slots.

    One union automaton replaces the D stacked slice tables, so the
    per-byte transition work is one gather regardless of the partition
    count; per-slice counts are recovered through ``slice_maps`` (see
    :func:`project_states`) and per-slice weight layouts.
    """

    hot_flat: np.ndarray            # int32, hot rows + parking zone
    weights: np.ndarray             # int32, indexed by cell >> 1
    cold: ColdRowStore              # cold rows, shared-default compressed
    fold_table: np.ndarray          # 256-entry byte → symbol map
    hot_states: np.ndarray          # int64 (H,): hot id → union state
    cold_states: np.ndarray         # int64 (n-H,): cold id → union state
    entry_cells: np.ndarray         # int32 (n,): state → untagged cell
    start: int
    num_states: int
    symbol_width: int
    slice_maps: Optional[np.ndarray] = None      # int32 (D, n)
    slice_weights: Optional[np.ndarray] = None   # int32 (D, len(weights))
    slice_flags: Optional[np.ndarray] = None     # int32 (D, len(weights))
    hot_mass: Optional[float] = None             # predicted hot-visit share

    @property
    def num_hot(self) -> int:
        return len(self.hot_states)

    @property
    def num_cold(self) -> int:
        return len(self.cold_states)

    @property
    def stride(self) -> int:
        return 2 * self.symbol_width

    @property
    def escape_base(self) -> int:
        return self.num_hot * self.stride

    @property
    def num_dfas(self) -> int:
        return 1 if self.slice_maps is None else len(self.slice_maps)

    @property
    def hot_bytes(self) -> int:
        """Footprint of the always-resident part (hot rows + weights)."""
        return int(self.hot_flat.nbytes + self.weights.nbytes)

    @property
    def table_bytes(self) -> int:
        """Total footprint of everything a scan can touch."""
        return int(self.hot_flat.nbytes + self.weights.nbytes
                   + self.cold.nbytes + self.entry_cells.nbytes
                   + 4 * 256)

    def scanner(self) -> "HotColdFusedScanner":
        """A fresh interpreter over this table — the sanctioned route
        for call sites outside ``core/scan`` (scanner classes are
        import-banned there; see the ruff ``banned-api`` rule)."""
        return HotColdFusedScanner(self)


def build_hot_cold_table(transitions: np.ndarray, final_mask: np.ndarray,
                         start: int, fold_table: np.ndarray,
                         state_weights: Optional[np.ndarray] = None,
                         budget_bytes: int = HOT_BUDGET_BYTES,
                         order: Optional[np.ndarray] = None,
                         mass: Optional[np.ndarray] = None,
                         slice_maps: Optional[np.ndarray] = None,
                         slice_state_weights: Optional[np.ndarray] = None,
                         slice_state_flags: Optional[np.ndarray] = None
                         ) -> HotColdFusedTable:
    """Build a :class:`HotColdFusedTable` from a (union) DFA.

    ``transitions`` is over the *folded* alphabet; ``fold_table`` maps
    raw bytes to it at scan time (the fold is **not** composed into the
    rows — narrow rows are the point).  ``budget_bytes`` caps the hot
    partition: ``H = budget // (stride × 4)`` rows, at least 1 and at
    most all states; ``order`` (from :func:`visit_order`, possibly
    loaded from an artifact) overrides the profiling pass.  The
    optional ``slice_*`` arrays are per-slice per-*union-state* weight
    and final-flag vectors plus the :func:`project_states` maps, laid
    out into per-slice weight tables for exact per-DFA counting.
    """
    trans = np.asarray(transitions, dtype=np.int64)
    n, width = trans.shape
    final = np.asarray(final_mask, dtype=np.int64)
    fold = np.asarray(fold_table, dtype=np.int64)
    if fold.shape != (256,):
        raise DFAError("fold table must map all 256 byte values")
    if fold.size and int(fold.max()) >= width:
        raise DFAError("fold table maps outside the DFA alphabet")
    stride = 2 * width
    if order is None:
        order, mass = visit_order(trans, start, fold)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.shape != (n,):
            raise DFAError("visit order must rank every state")
        if int(order[0]) != int(start):
            order = np.concatenate(([int(start)],
                                    order[order != int(start)]))
    num_hot = max(1, min(n, int(budget_bytes) // (stride * 4)))
    num_cold = n - num_hot
    hot_states = order[:num_hot]
    cold_states = order[num_hot:]
    escape_base = num_hot * stride
    park = 2 * num_cold + stride + 2
    if escape_base + park > np.iinfo(np.int32).max:
        raise DFAError(
            f"hot/cold STT needs offsets up to {escape_base + park}, "
            f"beyond int32; {n} states × {width} symbols is too large")

    code = np.empty(n, dtype=np.int64)
    code[hot_states] = np.arange(num_hot, dtype=np.int64) * stride
    code[cold_states] = escape_base + 2 \
        + 2 * np.arange(num_cold, dtype=np.int64)
    enc = code[trans] + final[trans]

    hot_flat = np.full(escape_base + park, escape_base, dtype=np.int32)
    hot_rows = hot_flat[:escape_base].reshape(num_hot, stride)
    hot_rows[:, 0::2] = enc[hot_states]
    hot_rows[:, 1::2] = enc[hot_states]
    cold = ColdRowStore.from_rows(enc[cold_states], enc[int(start)])

    wsize = num_hot * width + num_cold + 1

    def layout(per_state: np.ndarray) -> np.ndarray:
        w = np.zeros(wsize, dtype=np.int32)
        w[np.arange(num_hot) * width] = per_state[hot_states]
        w[num_hot * width + 1 + np.arange(num_cold)] = \
            per_state[cold_states]
        return w

    if state_weights is None:
        state_weights = final
    weights = layout(np.asarray(state_weights))

    sw = sf = None
    if slice_maps is not None:
        slice_maps = np.ascontiguousarray(slice_maps, dtype=np.int32)
        if slice_state_weights is None or slice_state_flags is None:
            raise DFAError("slice maps need per-slice weights and flags")
        sw = np.stack([layout(np.asarray(row))
                       for row in slice_state_weights])
        sf = np.stack([layout(np.asarray(row))
                       for row in slice_state_flags])

    hot_mass = None
    if mass is not None:
        total = float(mass.sum())
        if total > 0:
            hot_mass = float(mass[hot_states].sum()) / total

    return HotColdFusedTable(
        hot_flat=hot_flat, weights=weights, cold=cold,
        fold_table=np.ascontiguousarray(fold, dtype=np.int64),
        hot_states=np.ascontiguousarray(hot_states),
        cold_states=np.ascontiguousarray(cold_states),
        entry_cells=code.astype(np.int32), start=int(start),
        num_states=n, symbol_width=width, slice_maps=slice_maps,
        slice_weights=sw, slice_flags=sf, hot_mass=hot_mass)


class HotColdFusedScanner:
    """Lockstep interpreter over a :class:`HotColdFusedTable`.

    Drop-in compatible with :class:`FlatScanner` for :func:`count_arr` /
    :func:`count_arr_detail` / :func:`repair_detail` (pointer, state_of,
    scan_cols, step_scalar all speak union states), so every chunking,
    ledger and pool mechanism runs unchanged on top of it.  The hot loop
    is the §4 one-gather step on the compact hot table; lanes that leave
    the hot set park themselves in the parking zone and are *replayed*
    through the compressed cold store at strip granularity — the
    explicit slow-path escape.  Scans read **raw bytes**: the byte→
    symbol fold is a 256-entry pre-doubled gather folded into the strip
    staging step, not into the table rows.
    """

    def __init__(self, table: HotColdFusedTable) -> None:
        self.table = table
        self.flat = table.hot_flat
        self.weights = table.weights
        self.cold = table.cold
        self.symbol_width = table.symbol_width
        self.alphabet_size = table.symbol_width
        self.stride = table.stride
        self.start = int(table.start)
        self.num_states = int(table.num_states)
        self.escape_base = int(table.escape_base)
        self.fold2 = np.ascontiguousarray(
            np.asarray(table.fold_table, dtype=np.int32) * 2)
        self.reset_stats()

    @property
    def num_dfas(self) -> int:
        return self.table.num_dfas

    # -- instrumentation ---------------------------------------------------------

    def reset_stats(self) -> None:
        #: steps = lockstep transitions taken; cold_steps = transitions
        #: replayed through the slow path; escapes = lane×strip slow-path
        #: activations.  hot_hit_rate derives from these.
        self.stats = {"steps": 0, "cold_steps": 0, "escapes": 0}

    @property
    def hot_hit_rate(self) -> float:
        steps = self.stats["steps"]
        if steps <= 0:
            return 1.0
        return 1.0 - self.stats["cold_steps"] / steps

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        return int(self.table.entry_cells[int(state)])

    def state_of(self, ptrs):
        p = np.asarray(ptrs, dtype=np.int64)
        base = (p >> 1) << 1
        t = self.table
        out = t.hot_states[np.minimum(base // self.stride,
                                      t.num_hot - 1)]
        if t.num_cold:
            j = np.clip((base - self.escape_base - 2) >> 1, 0,
                        t.num_cold - 1)
            out = np.where(base < self.escape_base, out,
                           t.cold_states[j])
        if p.ndim == 0:
            return int(out)
        return out

    # -- scalar path -------------------------------------------------------------

    def step_scalar(self, ptr: int, symbol: int) -> int:
        sym2 = int(self.fold2[int(symbol)])
        ptr = int(ptr)
        if ((ptr >> 1) << 1) < self.escape_base:
            return int(self.flat[ptr + sym2])
        j = (((ptr >> 1) << 1) - self.escape_base - 2) >> 1
        return self.cold.lookup_one(j, sym2 >> 1)

    def _advance(self, cells: np.ndarray, syms2: np.ndarray) -> np.ndarray:
        """Vectorized mixed hot/cold transition on encoded cells."""
        eb = self.escape_base
        base = (cells >> 1) << 1
        hot = base < eb
        out = np.empty_like(cells)
        if hot.any():
            out[hot] = self.flat[cells[hot] + syms2[hot]]
        cold = ~hot
        if cold.any():
            j = (base[cold] - eb - 2) >> 1
            out[cold] = self.cold.lookup(j, syms2[cold] >> 1)
        return out

    # -- hot loop ----------------------------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """:meth:`FlatScanner.scan_cols` over raw bytes and union
        states: flag accumulation without ``weights``, multiplicity
        accumulation with (pass :attr:`weights`)."""
        return self._scan_core(cols, ptrs, ((counts, weights),))

    def scan_cols_slices(self, cols: np.ndarray, ptrs: np.ndarray,
                         counts2d: np.ndarray,
                         weight_rows: np.ndarray) -> np.ndarray:
        """One lockstep pass accumulating every slice's counts at once
        (``counts2d`` is ``(D, lanes)``, ``weight_rows`` ``(D, wsize)``).

        D-invariant: instead of D dense accumulation passes per strip,
        one flag pass finds the union-final positions (a slice match
        implies a union match, since the union automaton contains every
        pattern) and the per-slice weights are scattered only at those
        sparse hits, projected through the per-slice weight layouts.
        The per-strip cost is one dense pass plus O(matches · D), not
        O(strip · D)."""
        return self._scan_core(cols, ptrs, (),
                               slice_accs=(counts2d, weight_rows))

    def _scan_core(self, cols: np.ndarray, ptrs: np.ndarray,
                   accs, slice_accs=None) -> np.ndarray:
        length, lanes = cols.shape
        if length == 0:
            return np.asarray(ptrs, dtype=np.int32).copy()
        take = self.flat.take
        fold2_take = self.fold2.take
        add = np.add
        eb = self.escape_base
        pure_hot = self.table.num_cold == 0
        weighted = any(w is not None for _, w in accs)
        strip_len = min(STRIP, length,
                        max(8, hotcold_strip_elems() // max(1, lanes)))
        strip = np.empty((strip_len, lanes), dtype=np.int32)
        syms2 = np.empty((strip_len, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, lanes), dtype=np.int32)
        shifted = np.empty((strip_len, lanes), dtype=np.int32)
        idx = np.empty(lanes, dtype=np.int32)
        strip_rows = list(strip)
        syms_rows = list(syms2)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        self.stats["steps"] += int(length) * int(lanes)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            fold2_take(cols[t0:t0 + b], out=syms2[:b])
            pre = None if pure_hot else cur.copy()
            c = cur
            for i in range(b):
                row = strip_rows[i]
                add(c, syms_rows[i], out=idx)
                take(idx, out=row)
                c = row
            cur = c
            # Hot accumulation is exact for every lane: a lane that
            # escapes contributes its true flags/weights up to and
            # including the escape step (the escape cell carries the
            # cold destination's flag and weight slot), then parks on
            # zero-weight cells.
            if weighted:
                np.right_shift(strip[:b], 1, out=shifted[:b])
            for acc, w in accs:
                if w is None:
                    np.bitwise_and(strip[:b], 1, out=scratch[:b])
                else:
                    w.take(shifted[:b], out=scratch[:b])
                acc += scratch[:b].sum(axis=0)
            if slice_accs is not None:
                self._accumulate_slices_sparse(strip, b, lanes,
                                               scratch, slice_accs)
            if not pure_hot:
                esc = np.nonzero(cur >= eb)[0]
                if esc.size:
                    cur = cur.copy()
                    self._fix_lanes(strip, syms2, b, pre, cur, esc,
                                    accs, slice_accs)
        return cur.copy()

    @staticmethod
    def _accumulate_slices_sparse(strip: np.ndarray, b: int, lanes: int,
                                  scratch: np.ndarray, slice_accs) -> None:
        """Scatter per-slice weights at the strip's union-final hits.

        Escape cells carry the cold destination's flag and weight slot,
        so hot-loop hits are exact for escaping lanes too; parked cells
        have flag 0 and contribute nothing (their lanes are replayed)."""
        counts2d, rows = slice_accs
        np.bitwise_and(strip[:b], 1, out=scratch[:b])
        tt, ll = np.nonzero(scratch[:b])
        if not tt.size:
            return
        slots = strip[tt, ll].astype(np.int64) >> 1
        for d in range(len(rows)):
            counts2d[d] += np.bincount(
                ll, weights=rows[d, slots],
                minlength=lanes).astype(np.int64)

    def _fix_lanes(self, strip: np.ndarray, syms2: np.ndarray, b: int,
                   pre: np.ndarray, cur: np.ndarray, esc: np.ndarray,
                   accs, slice_accs=None) -> None:
        """Replay escaped lanes through the cold store.

        ``esc`` lists lanes whose strip-exit cell is in the escape
        range.  Two cases: a lane *entered* the strip cold (its parked
        gathers contributed nothing — replay all ``b`` steps from its
        true cold encoding), or it escaped mid-strip at position ``t``
        (everything through ``t`` was counted exactly — replay from
        ``t + 1``).  The replay itself is vectorized across lanes per
        position; its per-step cost is bounded (one sorted probe), so
        the slow path degrades linearly, never pathologically.
        """
        eb = self.escape_base
        m = int(esc.size)
        self.stats["escapes"] += m
        col = strip[:b, esc]
        pre_esc = pre[esc].astype(np.int64)
        first = np.argmax(col >= eb, axis=0)
        cells = col[first, np.arange(m)].astype(np.int64)
        t_start = first.astype(np.int64) + 1
        precold = pre_esc >= eb
        if precold.any():
            cells[precold] = pre_esc[precold]
            t_start[precold] = 0
        extra = [np.zeros(m, dtype=np.int64) for _ in accs]
        extra2d = None
        if slice_accs is not None:
            counts2d, rows = slice_accs
            extra2d = np.zeros((len(rows), m), dtype=np.int64)
        for t in range(int(t_start.min()), b):
            act = np.nonzero(t_start <= t)[0]
            nxt = self._advance(cells[act], syms2[t, esc[act]].astype(np.int64))
            cells[act] = nxt
            for (_, w), ex in zip(accs, extra):
                if w is None:
                    ex[act] += nxt & 1
                else:
                    ex[act] += w[nxt >> 1]
            if extra2d is not None:
                extra2d[:, act] += rows[:, nxt >> 1]
            self.stats["cold_steps"] += int(act.size)
        for (acc, _), ex in zip(accs, extra):
            acc[esc] += ex
        if extra2d is not None:
            counts2d[:, esc] += extra2d
        cur[esc] = cells.astype(np.int32)

    # -- block scanning ----------------------------------------------------------

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: int,
                          entry_states=None,
                          weights: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-slice ``(counts, exit_states)`` from one union
        pass.  ``weights`` is a mode switch matching the fused scanner's
        convention: ``None`` counts final-state entries per slice, any
        array selects the per-slice multiplicity layouts (only the
        table's own layouts are meaningful — per-slice counts are always
        taken through ``slice_weights``/``slice_flags``)."""
        t = self.table
        if t.slice_maps is None:
            raise DFAError("hot/cold table was built without slice maps")
        ndfa = len(t.slice_maps)
        start_imgs = t.slice_maps[:, self.start].astype(np.int64)
        if entry_states is not None:
            states = np.asarray(entry_states, dtype=np.int64)
            if not np.array_equal(states, start_imgs):
                raise DFAError(
                    "hot/cold per-DFA scans enter at the union start "
                    "state; arbitrary per-DFA entry states are not "
                    "realizable in the union state space")
        if arr.size == 0:
            return np.zeros(ndfa, dtype=np.int64), start_imgs
        rows = t.slice_flags if weights is None else t.slice_weights
        totals, exit_state = self._chunked_multi(arr, chunks, rows)
        return totals, t.slice_maps[:, exit_state].astype(np.int64)

    def _chunked_multi(self, arr: np.ndarray, chunks: int,
                       rows: np.ndarray) -> Tuple[np.ndarray, int]:
        """Chunk fixpoint accumulating all D slices per pass; same
        speculation/warm-up/repair semantics as :func:`_chunked_scan`."""
        if chunks < 1:
            raise DFAError("chunks must be >= 1")
        n = int(arr.size)
        ndfa = len(rows)
        chunks = min(n, max(int(chunks),
                            min(hotcold_lanes_target(), n // MIN_PIECE)))
        piece_len = n // chunks
        remainder = n - piece_len * chunks
        head = np.zeros(ndfa, dtype=np.int64)
        ptr = self.pointer(self.start)
        for sym in arr[:remainder].tolist():
            ptr = self.step_scalar(ptr, sym)
            head += rows[:, ptr >> 1]
        cols = np.ascontiguousarray(
            arr[remainder:].reshape(chunks, piece_len).T)
        entry = np.full(chunks, self.pointer(self.start), dtype=np.int32)
        entry[0] = ptr
        if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
            sink = np.zeros(chunks - 1, dtype=np.int64)
            entry[1:] = self.scan_cols(
                np.ascontiguousarray(
                    cols[piece_len - SPECULATION_WARMUP:, :-1]),
                entry[1:].copy(), sink)
        exits = np.empty(chunks, dtype=np.int32)
        counts = np.zeros((ndfa, chunks), dtype=np.int64)
        todo = np.arange(chunks)
        for _ in range(chunks + 1):
            sub = cols if todo.size == chunks else cols[:, todo]
            part = np.zeros((ndfa, todo.size), dtype=np.int64)
            fin = self.scan_cols_slices(sub, entry[todo], part, rows)
            counts[:, todo] = part
            exits[todo] = fin
            wrong = np.nonzero((exits[:-1] >> 1)
                               != (entry[1:] >> 1))[0] + 1
            if wrong.size == 0:
                break
            entry[wrong] = exits[wrong - 1]
            todo = wrong
        else:
            raise DFAError("hot/cold chunk fixpoint failed to converge; "
                           "this indicates a bug, not an input property")
        return head + counts.sum(axis=1), int(self.state_of(exits[-1]))

    # -- multi-stream scanning ---------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scan independent ragged streams over the union automaton.

        Returns ``(counts, final_states)``, both shaped
        ``(num_streams,)`` — the whole dictionary's totals per stream
        in one pass, where the plain fused scanner returns a
        ``(D, streams)`` grid it then has to reduce.  States are union
        states; streams are raw bytes.
        """
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0])
        if start_states is not None:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.num_states):
                raise DFAError("start state out of range")
            ptrs = self.table.entry_cells[states[order]].astype(np.int32)
        else:
            ptrs = np.full(nstreams, self.pointer(self.start),
                           dtype=np.int32)
        counts = np.zeros(nstreams, dtype=np.int64)
        if maxlen:
            cols = np.zeros((maxlen, nstreams), dtype=np.uint8)
            for k, oi in enumerate(order):
                s = streams[oi]
                if len(s):
                    cols[:len(s), k] = np.frombuffer(s, dtype=np.uint8)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = self.scan_cols(cols[lo:hi, :active], ptrs[:active],
                                     counts[:active], weights=weights)
                ptrs[:active] = fin
        out_counts = np.empty_like(counts)
        out_ptrs = np.empty_like(ptrs)
        out_counts[order] = counts
        out_ptrs[order] = ptrs
        return out_counts, np.asarray(self.state_of(out_ptrs),
                                      dtype=np.int64)
