"""The DFA tile: one DFA acceptor mapped onto one SPE (paper §3–§4).

A tile bundles a local-store layout (:class:`~repro.core.planner.TilePlan`),
an encoded state-transition table, and the matching kernels.  Its job:
consume input streams at peak speed and count dictionary matches.

Two execution paths share the tile:

* :meth:`DFATile.run_streams` / :meth:`DFATile.run_block` execute the real
  SPU instruction streams on the cycle-accounting simulator — this is what
  the Table 1 and throughput benchmarks measure, and the match counts are
  (optionally) verified against the reference DFA on every run;
* :meth:`DFATile.reference_counts` is the pure-Python ground truth.

Inputs are *folded* symbol streams (byte values < alphabet width); fold raw
bytes first with a :class:`~repro.dfa.alphabet.FoldMap` (on the PPE, as the
paper prescribes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cell.local_store import LocalStore
from ..cell.spu import CLOCK_HZ, SPU, SPUStats
from ..dfa.automaton import DFA
from .interleave import block_to_streams, interleave_streams
from .kernels import BuiltKernel, KernelBuilder, KernelError, KERNEL_SPECS, \
    SIMD_LANES
from .planner import TilePlan, plan_tile
from .stt import STTImage

__all__ = ["DFATile", "TileRunResult", "TileError", "merge_stats"]


class TileError(Exception):
    """Raised for tile configuration or verification failures."""


def merge_stats(parts: Sequence[SPUStats]) -> SPUStats:
    """Sum cycle-accounting statistics across several kernel runs."""
    total = SPUStats()
    for p in parts:
        total.cycles += p.cycles
        total.instructions += p.instructions
        total.dual_issue_cycles += p.dual_issue_cycles
        total.single_issue_cycles += p.single_issue_cycles
        total.stall_cycles += p.stall_cycles
        total.branch_penalty_cycles += p.branch_penalty_cycles
        total.branches_taken += p.branches_taken
        total.registers_used = max(total.registers_used, p.registers_used)
    return total


@dataclass
class TileRunResult:
    """Outcome of matching one batch of input on a tile."""

    counts: List[int]            # matches per stream
    transitions: int             # DFA transitions executed
    stats: SPUStats              # merged cycle accounting
    version: int

    @property
    def total_matches(self) -> int:
        return sum(self.counts)

    @property
    def cycles_per_transition(self) -> float:
        return self.stats.cycles_per(self.transitions)

    def throughput_transitions_per_s(self, clock_hz: float = CLOCK_HZ) -> float:
        return self.stats.actions_per_second(self.transitions, clock_hz)

    def throughput_gbps(self, clock_hz: float = CLOCK_HZ) -> float:
        """Filtered bits per second: one byte consumed per transition."""
        return self.throughput_transitions_per_s(clock_hz) * 8 / 1e9


class DFATile:
    """A DFA acceptor installed on one SPE-equivalent local store."""

    def __init__(self, dfa: DFA, plan: Optional[TilePlan] = None,
                 version: int = 4,
                 local_store: Optional[LocalStore] = None) -> None:
        if plan is None:
            plan = plan_tile(alphabet_size=dfa.alphabet_size)
        if dfa.alphabet_size != plan.alphabet_size:
            raise TileError(
                f"DFA alphabet {dfa.alphabet_size} != plan alphabet "
                f"{plan.alphabet_size}")
        if dfa.num_states > plan.max_states:
            raise TileError(
                f"DFA has {dfa.num_states} states; this layout holds at "
                f"most {plan.max_states} (partition the dictionary, compose "
                f"tiles in series, or use dynamic STT replacement)")
        if version not in KERNEL_SPECS:
            raise TileError(f"unknown kernel version {version}")
        self.dfa = dfa
        self.plan = plan
        self.version = version
        self.local_store = local_store if local_store is not None \
            else LocalStore()
        plan.apply(self.local_store)
        self.stt = STTImage.from_dfa(dfa, plan.stt_base)
        self.local_store.write(plan.stt_base, self.stt.payload)
        self.spu = SPU(self.local_store)
        self._builder = KernelBuilder(
            self.stt,
            input_base=plan.buffer_bases[0],
            counters_base=plan.counters_base,
            states_base=plan.states_base,
            input_capacity=plan.buffer_bytes,
        )
        self._kernel_cache: Dict[Tuple[int, int], BuiltKernel] = {}

    # -- kernel management -------------------------------------------------------

    def kernel_for(self, transitions: int,
                   version: Optional[int] = None) -> BuiltKernel:
        """Build (or fetch) the kernel for a block of ``transitions``."""
        v = self.version if version is None else version
        key = (v, transitions)
        kernel = self._kernel_cache.get(key)
        if kernel is None:
            kernel = self._builder.build(v, transitions)
            self._kernel_cache[key] = kernel
        return kernel

    # -- execution ----------------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    version: Optional[int] = None,
                    verify: bool = True) -> TileRunResult:
        """Match ``SIMD_LANES`` equal-length folded streams (versions 2–5)
        or a single stream (version 1)."""
        v = self.version if version is None else version
        spec = KERNEL_SPECS[v]
        if len(streams) != spec.streams:
            raise TileError(
                f"version {v} expects {spec.streams} stream(s), "
                f"got {len(streams)}")
        length = len(streams[0])
        if any(len(s) != length for s in streams):
            raise TileError("streams must have equal length")
        if length == 0:
            raise TileError("streams must be non-empty")
        self._check_symbols(streams)

        if spec.simd:
            per_iter = spec.transitions_per_iteration
            if (length * spec.streams) % per_iter:
                pad = -length % (per_iter // SIMD_LANES)
                raise TileError(
                    f"stream length {length} is not a multiple of the "
                    f"version-{v} unroll granularity; pad by {pad} bytes")
            payload = interleave_streams(streams)
        else:
            payload = bytes(streams[0])

        counts = [0] * spec.streams
        stats_parts: List[SPUStats] = []
        transitions_total = 0
        chunk_bytes = self.plan.buffer_bytes
        # Keep chunks aligned to whole iterations.
        iter_bytes = spec.transitions_per_iteration
        chunk_bytes -= chunk_bytes % iter_bytes

        # Reset the persistent per-stream DFA states once per batch;
        # subsequent chunks resume from the saved states, so matches
        # spanning buffer boundaries are preserved.
        self.kernel_for(min(len(payload), chunk_bytes),
                        v).write_start_states(self.local_store)

        for off in range(0, len(payload), chunk_bytes):
            chunk = payload[off:off + chunk_bytes]
            kernel = self.kernel_for(len(chunk), v)
            if kernel.transitions != len(chunk):
                raise TileError(
                    f"internal: kernel padded {len(chunk)} to "
                    f"{kernel.transitions} transitions")
            self.local_store.write(kernel.input_base, chunk)
            self.spu.reset()
            stats_parts.append(self.spu.run(kernel.program))
            chunk_counts = kernel.read_counts(self.local_store)
            for i, c in enumerate(chunk_counts):
                counts[i] += c
            transitions_total += kernel.transitions

        result = TileRunResult(counts, transitions_total,
                               merge_stats(stats_parts), v)
        if verify:
            expected = self.reference_counts(streams)
            if expected != result.counts:
                raise TileError(
                    f"kernel/DFA mismatch: kernel counted {result.counts}, "
                    f"reference says {expected}")
        return result

    def run_block(self, block: bytes, version: Optional[int] = None,
                  verify: bool = True) -> TileRunResult:
        """Match one contiguous folded block.

        For SIMD versions the block is split into 16 chunk-streams (padded
        with symbol 0); matches crossing chunk boundaries are not seen —
        compose tiles with overlap (§5) when that matters.
        """
        v = self.version if version is None else version
        spec = KERNEL_SPECS[v]
        if spec.simd:
            per_stream_multiple = spec.unroll * 16
            streams = block_to_streams(block, SIMD_LANES)
            # Pad stream length up to the unroll granularity.
            length = len(streams[0])
            target = -(-length // per_stream_multiple) * per_stream_multiple
            if target != length:
                streams = [s + bytes(target - length) for s in streams]
        else:
            streams = [block]
        return self.run_streams(streams, v, verify)

    # -- reference ---------------------------------------------------------------

    def reference_counts(self, streams: Sequence[bytes]) -> List[int]:
        """Ground-truth per-stream match counts from the reference DFA."""
        return [self.dfa.count_matches(s) for s in streams]

    def _check_symbols(self, streams: Sequence[bytes]) -> None:
        width = self.dfa.alphabet_size
        for i, s in enumerate(streams):
            arr = memoryview(s)
            for b in arr:
                if b >= width:
                    raise TileError(
                        f"stream {i} contains symbol {b} outside the "
                        f"{width}-symbol alphabet; fold inputs first")

    # -- reporting ----------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return self.dfa.num_states

    @property
    def stt_bytes(self) -> int:
        return self.stt.size_bytes

    def __repr__(self) -> str:
        return (f"DFATile(states={self.num_states}, "
                f"version={self.version}, "
                f"buffer={self.plan.buffer_bytes // 1024}KB)")
