"""State-transition-table layout (paper §4).

The paper's optimized DFA representation:

* the STT is a **complete table of words**: one row per state, one 4-byte
  cell per input symbol;
* the **current state is a pointer to its row**, so a transition is a
  single indexed load: ``next = *(state + (symbol << 2))``;
* the table base is aligned and the row stride is a power of two, so the
  low bits of every row pointer are zero — **bit 0 is reused to flag final
  states** ("plus other frugal output values if needed").

:class:`STTImage` builds the byte image of a DFA for a given local-store
base address and provides the encode/decode helpers the kernels, tests and
the numpy engine share.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError

__all__ = ["STTImage", "CELL_BYTES", "row_stride", "STTError"]

#: Bytes per STT cell (a 32-bit next-state pointer with flag bits).
CELL_BYTES = 4

#: Bit 0 of a state pointer encodes "destination state is final".
FINAL_FLAG = 0x1


class STTError(Exception):
    """Raised for layouts violating the pointer-tag preconditions."""


def row_stride(alphabet_size: int) -> int:
    """Bytes per STT row; the alphabet width must be a power of two so the
    stride is one (paper §4: 'choose an input set width which is a power
    of two')."""
    if alphabet_size <= 0 or alphabet_size & (alphabet_size - 1):
        raise STTError(
            f"alphabet size must be a power of two, got {alphabet_size}")
    return alphabet_size * CELL_BYTES


@dataclass(frozen=True)
class STTImage:
    """A DFA rendered as an in-memory state-transition table.

    Attributes
    ----------
    base:
        Address the table is (to be) loaded at.  Must be aligned to the row
        stride so row pointers have zero low bits.
    payload:
        The raw table bytes (``num_states × stride``).
    """

    base: int
    num_states: int
    alphabet_size: int
    start_state: int
    payload: bytes

    @classmethod
    def from_dfa(cls, dfa: DFA, base: int) -> "STTImage":
        """Encode ``dfa`` for loading at local-store address ``base``."""
        stride = row_stride(dfa.alphabet_size)
        if base % stride:
            raise STTError(
                f"STT base {base:#x} not aligned to the {stride}-byte row "
                f"stride; pointer low bits would not be free for flags")
        # Vectorized encode: cell = base + dest*stride | final(dest).
        dest = dfa.transitions.astype(np.uint32)
        cells = base + dest * np.uint32(stride)
        cells |= dfa.final_mask[dest].astype(np.uint32)
        payload = cells.astype(">u4").tobytes()
        return cls(base=base, num_states=dfa.num_states,
                   alphabet_size=dfa.alphabet_size,
                   start_state=dfa.start, payload=payload)

    # -- geometry -------------------------------------------------------------

    @property
    def stride(self) -> int:
        return row_stride(self.alphabet_size)

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    @property
    def start_pointer(self) -> int:
        """Row pointer of the start state (flag-free by construction)."""
        return self.state_to_pointer(self.start_state)

    def state_to_pointer(self, state: int) -> int:
        if not 0 <= state < self.num_states:
            raise STTError(f"state {state} out of range")
        return self.base + state * self.stride

    def pointer_to_state(self, pointer: int) -> Tuple[int, bool]:
        """Decode a (possibly flag-tagged) cell value → (state, is_final)."""
        final = bool(pointer & FINAL_FLAG)
        clean = pointer & ~FINAL_FLAG
        offset = clean - self.base
        if offset < 0 or offset % self.stride:
            raise STTError(f"pointer {pointer:#x} does not address a row "
                           f"of this table")
        state = offset // self.stride
        if state >= self.num_states:
            raise STTError(f"pointer {pointer:#x} beyond the last state")
        return state, final

    def cell(self, state: int, symbol: int) -> int:
        """Raw cell value (tagged pointer) at (state, symbol)."""
        if not 0 <= symbol < self.alphabet_size:
            raise STTError(f"symbol {symbol} outside alphabet")
        off = state * self.stride + symbol * CELL_BYTES
        return struct.unpack_from(">I", self.payload, off)[0]

    def lookup(self, state: int, symbol: int) -> Tuple[int, bool]:
        """Decoded transition: (next_state, next_is_final)."""
        return self.pointer_to_state(self.cell(state, symbol))
