"""Full-system pipeline: PPE + MFC + DFA tiles, end to end.

The paper's component studies (Table 1, Figures 2–5) compose into a
system: the PPE folds raw traffic onto the 32-symbol alphabet and
interleaves 16 streams; the MFC streams 16 KB blocks into the double
buffers while the SPU matches; multiple tiles split the input "in
parallel".  :class:`CellMatchingSystem` runs that whole flow on the
simulator substrate:

* **functionally** — raw bytes in, verified match counts out, staged
  through real main memory, real DMA copies and real kernel execution;
* **temporally** — a per-SPE double-buffering schedule built from the
  *measured* kernel time of each block and the bandwidth model's transfer
  times, yielding end-to-end throughput *including* transfers, PPE cost,
  and the overlap invariants of Figure 5.

This is the closest thing in the repository to "running the paper's
appliance": every layer below it is the real simulated mechanism, not an
analytic formula.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cell.memory import BandwidthModel
from ..cell.processor import CellProcessor, NUM_SPES
from ..dfa.alphabet import FoldMap, case_fold_32
from ..dfa.automaton import DFA
from .interleave import block_to_streams, interleave_streams
from .kernels import KERNEL_SPECS, SIMD_LANES
from .planner import TilePlan, plan_tile
from .schedule import Interval, Schedule
from .tile import DFATile, TileError, TileRunResult, merge_stats

__all__ = ["CellMatchingSystem", "SystemRunResult", "SystemError"]


class SystemError(Exception):
    """Raised for infeasible system configurations."""


#: Main-memory staging area for inbound traffic.
_STAGING_EA = 1 << 20


@dataclass
class SystemRunResult:
    """Outcome of filtering one traffic batch through the system."""

    total_matches: int
    bytes_scanned: int            # raw input bytes
    transitions: int              # DFA transitions executed (all tiles)
    num_tiles: int
    schedules: List[Schedule]     # one double-buffer timeline per tile
    kernel_seconds: float         # pure compute time (slowest tile)
    ppe_seconds: float            # fold + interleave cost
    makespan_seconds: float       # end-to-end (max over tiles, incl. DMA)
    host_seconds: float = 0.0     # measured wall-clock of the real run

    @property
    def end_to_end_gbps(self) -> float:
        """Filtered bitrate including transfers and pipeline fill."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.bytes_scanned * 8 / self.makespan_seconds / 1e9

    @property
    def host_gbps(self) -> float:
        """Measured bitrate of the host actually executing this run."""
        if self.host_seconds <= 0:
            return 0.0
        return self.bytes_scanned * 8 / self.host_seconds / 1e9

    def side_by_side(self) -> str:
        """Modelled-Cell vs measured-host throughput, one line."""
        return (f"{self.bytes_scanned} B, {self.total_matches} matches | "
                f"modelled Cell: {self.end_to_end_gbps:.2f} Gbps "
                f"end-to-end on {self.num_tiles} tile(s) "
                f"({self.compute_gbps:.2f} Gbps compute) | "
                f"host: {self.host_gbps:.4f} Gbps measured")

    @property
    def compute_gbps(self) -> float:
        """Kernel-only bitrate (the Table-1 quantity, per slowest tile)."""
        if self.kernel_seconds <= 0:
            return 0.0
        return (self.bytes_scanned / self.num_tiles) * 8 \
            / self.kernel_seconds / 1e9

    def transfer_hidden_fraction(self) -> float:
        """Fraction of DMA time overlapped by computation (Figure 5's
        promise: everything but the first transfer per tile)."""
        total = sum(s.busy_time("dma") for s in self.schedules)
        if total == 0:
            return 1.0
        exposed = sum(s.exposed_transfer_time() for s in self.schedules)
        return 1.0 - exposed / total


class CellMatchingSystem:
    """A complete filtering appliance on the simulated Cell BE.

    Parameters
    ----------
    dfa:
        The dictionary automaton (alphabet must match ``fold.width``).
    num_tiles:
        Parallel tiles (Figure 6a); input splits across them with the
        boundary overlap the longest pattern needs.
    fold:
        Byte→symbol reduction applied by the PPE.
    plan / version:
        Tile layout and kernel version (default: the paper's peak, v4).
    """

    def __init__(self, dfa: DFA, num_tiles: int = 1,
                 fold: Optional[FoldMap] = None,
                 plan: Optional[TilePlan] = None,
                 version: int = 4,
                 overlap: Optional[int] = None) -> None:
        if not 1 <= num_tiles <= NUM_SPES:
            raise SystemError(f"num_tiles must be 1..{NUM_SPES}")
        if version not in KERNEL_SPECS:
            raise SystemError(f"unknown kernel version {version}")
        self.fold = fold if fold is not None else case_fold_32()
        if dfa.alphabet_size != self.fold.width:
            raise SystemError(
                f"DFA alphabet {dfa.alphabet_size} != fold width "
                f"{self.fold.width}")
        self.dfa = dfa
        self.plan = plan if plan is not None \
            else plan_tile(alphabet_size=self.fold.width)
        self.version = version
        self.chip = CellProcessor()
        self.ppe = self.chip.ppe
        self.tiles = [
            DFATile(dfa, plan=self.plan, version=version,
                    local_store=self.chip.spe(i).local_store)
            for i in range(num_tiles)
        ]
        self.bandwidth = BandwidthModel()
        if overlap is None:
            overlap = self._overlap_from_dfa()
        if overlap < 0:
            raise SystemError("overlap must be non-negative")
        self.overlap = overlap

    @classmethod
    def from_compiled(cls, compiled, num_tiles: int = 1,
                      **kwargs) -> "CellMatchingSystem":
        """An appliance over a single-slice
        :class:`~repro.core.compiled.CompiledDictionary` (the simulated
        local store holds exactly one STT)."""
        if compiled.num_slices != 1:
            raise SystemError(
                f"CellMatchingSystem runs one STT per tile; dictionary "
                f"compiled to {compiled.num_slices} slices")
        kwargs.setdefault("fold", compiled.fold)
        return cls(compiled.dfas[0], num_tiles=num_tiles, **kwargs)

    def _overlap_from_dfa(self) -> int:
        from .composition import _max_final_depth
        return max(0, _max_final_depth(self.dfa) - 1)

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    # -- end-to-end run -----------------------------------------------------------

    def filter_block(self, raw: bytes,
                     verify: bool = True) -> SystemRunResult:
        """Fold, slice, interleave, stream and match one traffic block.

        Parallel slices overlap by ``self.overlap`` bytes and matches are
        counted per tile without cross-tile deduplication — matches that
        fall entirely inside an overlap region are seen twice, exactly as
        in the paper's "minor overlapping" deployment.  Likewise, carving
        a tile's slice into 16 lane-streams drops matches that straddle a
        lane boundary (the paper's lanes are genuinely independent flows).
        Use :class:`~repro.core.composition.TileComposition` when exact
        global counts matter; the verification here is against the same
        lane decomposition the kernels see.
        """
        if not raw:
            raise SystemError("empty input block")
        wall_start = time.perf_counter()
        folded = self.ppe.fold(raw, self.fold.table)
        slices = self.ppe.slice_input(folded, self.num_tiles, self.overlap)

        total = 0
        transitions = 0
        schedules: List[Schedule] = []
        kernel_s = 0.0
        for index, (tile, piece) in enumerate(zip(self.tiles, slices)):
            if not piece:
                continue
            result, schedule = self._run_tile(index, tile, piece, verify)
            total += result.total_matches
            transitions += result.transitions
            schedules.append(schedule)
            kernel_s = max(kernel_s, result.stats.seconds())

        ppe_s = self.ppe.seconds_for(len(raw))
        makespan = max((s.makespan for s in schedules), default=0.0)
        return SystemRunResult(
            total_matches=total,
            bytes_scanned=len(raw),
            transitions=transitions,
            num_tiles=self.num_tiles,
            schedules=schedules,
            kernel_seconds=kernel_s,
            ppe_seconds=ppe_s,
            makespan_seconds=max(makespan, ppe_s),
            host_seconds=time.perf_counter() - wall_start,
        )

    # -- per-tile mechanics ---------------------------------------------------------

    def _prepare_payload(self, piece: bytes) -> Tuple[bytes, List[bytes]]:
        """Interleave a tile's input slice; returns (payload, streams)."""
        if self.version == 1:
            return piece, [piece]
        unroll = KERNEL_SPECS[self.version].unroll
        streams = block_to_streams(piece, SIMD_LANES)
        length = len(streams[0])
        target = -(-length // unroll) * unroll
        if target != length:
            streams = [s + bytes(target - length) for s in streams]
        return interleave_streams(streams), streams

    def _run_tile(self, index: int, tile: DFATile, piece: bytes,
                  verify: bool) -> Tuple[TileRunResult, Schedule]:
        """One tile's share: stage through main memory, DMA block by
        block into the double buffers, run the kernel per block, build
        the measured compute/transfer timeline."""
        payload, streams = self._prepare_payload(piece)
        mem = self.chip.memory
        ea = _STAGING_EA + index * (mem.size - _STAGING_EA) \
            // max(1, self.num_tiles)
        ea = (ea + 15) & ~15
        if ea + len(payload) > mem.size:
            raise SystemError("payload exceeds the staging area")
        mem.write(ea, payload)
        mfc = self.chip.spe(index).mfc

        spec = KERNEL_SPECS[self.version]
        chunk_bytes = self.plan.buffer_bytes
        chunk_bytes -= chunk_bytes % spec.transitions_per_iteration

        first_kernel = tile.kernel_for(min(len(payload), chunk_bytes),
                                       self.version)
        first_kernel.write_start_states(tile.local_store)

        schedule = Schedule()
        dma_free = 0.0
        compute_free = 0.0
        buffer_free = [0.0, 0.0]
        counts = [0] * spec.streams
        stats_parts = []
        transitions = 0
        offset = 0
        block_index = 0

        while offset < len(payload):
            block = payload[offset:offset + chunk_bytes]
            buf = block_index % 2
            ls_addr = self.plan.buffer_bases[buf]

            # Inbound DMA (functional copy now, interval on the timeline).
            start = max(dma_free, buffer_free[buf])
            cmds = mfc.get_list(ls_addr, ea + offset, len(block), tag=buf,
                                start_s=start)
            duration = sum(c.duration_s for c in cmds)
            schedule.add(Interval("dma", start, start + duration,
                                  f"load block {block_index}", buf))
            dma_free = start + duration
            mfc.wait_tag(buf)

            # Kernel execution, timed by the SPU model.  The kernel reads
            # a fixed input address; hardware would flip base pointers, so
            # we mirror the block there at zero modelled cost.
            kernel = tile.kernel_for(len(block), self.version)
            tile.local_store.write(kernel.input_base, block)
            tile.spu.reset()
            stats = tile.spu.run(kernel.program)
            stats_parts.append(stats)
            for j, c in enumerate(kernel.read_counts(tile.local_store)):
                counts[j] += c
            transitions += kernel.transitions

            cstart = max(compute_free, start + duration)
            cend = cstart + stats.seconds()
            schedule.add(Interval("compute", cstart, cend,
                                  f"match block {block_index}", buf))
            compute_free = cend
            buffer_free[buf] = cend

            offset += len(block)
            block_index += 1

        schedule.verify()
        if verify:
            expected = [self.dfa.count_matches(s) for s in streams]
            if counts != expected:
                raise TileError(
                    f"system/DFA mismatch on tile {index}: counted "
                    f"{counts}, reference says {expected}")
        return TileRunResult(counts, transitions,
                             merge_stats(stats_parts), self.version), \
            schedule
