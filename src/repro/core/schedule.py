"""Compute/transfer overlap schedules (paper Figures 5 and 8).

The SPU keeps running while its MFC moves data, so a tile hides transfer
latency with double buffering: while the kernel chews on buffer 0, the DMA
engine fills buffer 1.  With a 16 KB block the paper's numbers are 25.64 µs
of compute against 5.94 µs of transfer — every transfer except the very
first is completely hidden.

This module is a small discrete-event scheduler over two resources (the SPU
and the MFC) plus buffer-occupancy constraints.  It produces explicit
interval timelines that the tests check for the paper's invariants (no
buffer is simultaneously computed on and written by DMA; transfers after
the first are hidden whenever compute time ≥ transfer time) and that the
benchmarks render as ASCII Gantt charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Interval", "Schedule", "double_buffer_schedule", "ScheduleError"]


class ScheduleError(Exception):
    """Raised for infeasible schedule requests."""


@dataclass(frozen=True)
class Interval:
    """One busy interval on one resource."""

    resource: str          # "compute" or "dma"
    start: float
    end: float
    label: str
    buffer: Optional[int] = None   # input-buffer index touched, if any

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class Schedule:
    """A timeline of compute and DMA intervals."""

    intervals: List[Interval] = field(default_factory=list)

    def add(self, interval: Interval) -> None:
        if interval.start < 0 or interval.end < interval.start:
            raise ScheduleError(f"malformed interval {interval}")
        self.intervals.append(interval)

    # -- queries --------------------------------------------------------------

    def on(self, resource: str) -> List[Interval]:
        return sorted((iv for iv in self.intervals
                       if iv.resource == resource),
                      key=lambda iv: iv.start)

    @property
    def makespan(self) -> float:
        return max((iv.end for iv in self.intervals), default=0.0)

    def busy_time(self, resource: str) -> float:
        return sum(iv.duration for iv in self.on(resource))

    def utilization(self, resource: str) -> float:
        span = self.makespan
        return self.busy_time(resource) / span if span else 0.0

    def exposed_transfer_time(self) -> float:
        """Transfer time *not* overlapped by computation — the cost double
        buffering is supposed to eliminate."""
        compute = self.on("compute")
        exposed = 0.0
        for t in self.on("dma"):
            covered = 0.0
            for c in compute:
                lo = max(t.start, c.start)
                hi = min(t.end, c.end)
                if hi > lo:
                    covered += hi - lo
            exposed += t.duration - covered
        return exposed

    # -- invariants -------------------------------------------------------------

    def verify(self) -> None:
        """Check structural sanity: no resource double-booked; no buffer
        simultaneously computed on and DMA-written."""
        for resource in ("compute", "dma"):
            ivs = self.on(resource)
            for a, b in zip(ivs, ivs[1:]):
                if a.end > b.start + 1e-12:
                    raise ScheduleError(
                        f"{resource} double-booked: {a.label!r} overlaps "
                        f"{b.label!r}")
        for c in self.on("compute"):
            if c.buffer is None:
                continue
            for t in self.on("dma"):
                if t.buffer == c.buffer and c.overlaps(t):
                    raise ScheduleError(
                        f"buffer {c.buffer} written by {t.label!r} while "
                        f"computed on by {c.label!r}")

    # -- rendering --------------------------------------------------------------

    def render(self, width: int = 72) -> str:
        """ASCII Gantt chart in the spirit of Figures 5 and 8."""
        span = self.makespan
        if span <= 0:
            return "(empty schedule)"
        lines = [f"makespan {span * 1e6:.2f} us   "
                 f"(compute {self.utilization('compute') * 100:.0f}% busy, "
                 f"dma {self.utilization('dma') * 100:.0f}% busy)"]
        for resource in ("compute", "dma"):
            row = [" "] * width
            for iv in self.on(resource):
                lo = int(iv.start / span * (width - 1))
                hi = max(lo + 1, int(iv.end / span * (width - 1)))
                ch = "#" if resource == "compute" else "="
                for x in range(lo, min(hi, width)):
                    row[x] = ch
            lines.append(f"{resource:>8s} |{''.join(row)}|")
        for resource in ("compute", "dma"):
            for iv in self.on(resource):
                buf = f" buf{iv.buffer}" if iv.buffer is not None else ""
                lines.append(
                    f"  {resource:>8s} {iv.start * 1e6:9.2f}-"
                    f"{iv.end * 1e6:9.2f} us{buf}  {iv.label}")
        return "\n".join(lines)


def double_buffer_schedule(num_blocks: int, compute_s: float,
                           transfer_s: float) -> Schedule:
    """Figure 5's schedule: block *i+1* streams into one buffer while the
    kernel processes block *i* from the other.

    Returns the full timeline; when ``compute_s >= transfer_s`` every
    transfer except the first is hidden and the steady-state period equals
    ``compute_s`` (the paper's 25.64 µs for a 16 KB block at 5.11 Gbps).
    """
    if num_blocks <= 0:
        raise ScheduleError("need at least one block")
    if compute_s <= 0 or transfer_s <= 0:
        raise ScheduleError("durations must be positive")

    sched = Schedule()
    dma_free = 0.0
    compute_free = 0.0
    buffer_free = [0.0, 0.0]
    loaded_at = [0.0, 0.0]

    for i in range(num_blocks):
        buf = i % 2
        start = max(dma_free, buffer_free[buf])
        end = start + transfer_s
        sched.add(Interval("dma", start, end, f"load block {i}", buf))
        dma_free = end
        loaded_at[buf] = end

        cstart = max(compute_free, loaded_at[buf])
        cend = cstart + compute_s
        sched.add(Interval("compute", cstart, cend,
                           f"process block {i}", buf))
        compute_free = cend
        buffer_free[buf] = cend

    sched.verify()
    return sched
