"""Core library: the paper's contribution — DFA tiles on the Cell BE.

STT layout, stream interleaving, the five Table-1 kernels, tile execution
on the SPU simulator, local-store planning, double-buffering schedules,
tile composition, dynamic STT replacement, the vectorized numpy engine,
and the high-level :class:`CellStringMatcher` API.
"""

from .artifact import ArtifactError, pack_filter, unpack_filter
from .backends import (BackendError, ScanBackend, ScanContext, ScanOutcome,
                       ScanRequest, backend_names, backend_specs, execute,
                       get_backend, register_backend)
from .bloom_tile import BloomTile, BloomTileError, bloom_capacity
from .compiled import (TABLE_FORMAT_VERSION, ArtifactCache, CompiledDictionary,
                       CompileError, compile_dictionary,
                       fingerprint_dictionary)
from .composition import (CompositionError, CompositionReport,
                          TileComposition, mixed, parallel, series)
from .compressed import CompressedSTT, CompressionStats
from .engine import StreamResult, VectorDFAEngine
from .flows import FlowError, FlowMatcher
from .interleave import (InterleaveError, block_to_streams, deinterleave,
                         interleave_block, interleave_streams)
from .kernels import (KERNEL_SPECS, SIMD_LANES, BuiltKernel, KernelBuilder,
                      KernelError, KernelSpec)
from .matcher import (PAPER_TILE_GBPS, CellStringMatcher, MatcherError,
                      ScanReport)
from .planner import (CODE_STACK_BYTES, FIGURE3_CASES, ExecutionPlan,
                      PlanError, TilePlan, plan_backend, plan_tile)
from .replacement import (HALF_TILE_STATES, HALF_TILE_STT_BYTES,
                          ReplacementError, ReplacementMatcher, TopologyPlan,
                          chain_gbps, effective_gbps, plan_topology,
                          replacement_schedule)
from .schedule import Interval, Schedule, ScheduleError, \
    double_buffer_schedule
from .system import CellMatchingSystem, SystemError, SystemRunResult
from .stt import CELL_BYTES, STTError, STTImage, row_stride
from .tile import DFATile, TileError, TileRunResult, merge_stats

__all__ = [
    "ArtifactError",
    "pack_filter",
    "unpack_filter",
    "BackendError",
    "ScanBackend",
    "ScanContext",
    "ScanOutcome",
    "ScanRequest",
    "backend_names",
    "backend_specs",
    "execute",
    "get_backend",
    "register_backend",
    "TABLE_FORMAT_VERSION",
    "ArtifactCache",
    "CompiledDictionary",
    "CompileError",
    "compile_dictionary",
    "fingerprint_dictionary",
    "BloomTile",
    "BloomTileError",
    "bloom_capacity",
    "CompressedSTT",
    "CompressionStats",
    "CompositionError",
    "CompositionReport",
    "TileComposition",
    "mixed",
    "parallel",
    "series",
    "StreamResult",
    "VectorDFAEngine",
    "FlowError",
    "FlowMatcher",
    "InterleaveError",
    "block_to_streams",
    "deinterleave",
    "interleave_block",
    "interleave_streams",
    "KERNEL_SPECS",
    "SIMD_LANES",
    "BuiltKernel",
    "KernelBuilder",
    "KernelError",
    "KernelSpec",
    "PAPER_TILE_GBPS",
    "CellStringMatcher",
    "MatcherError",
    "ScanReport",
    "CODE_STACK_BYTES",
    "FIGURE3_CASES",
    "ExecutionPlan",
    "PlanError",
    "TilePlan",
    "plan_backend",
    "plan_tile",
    "HALF_TILE_STATES",
    "HALF_TILE_STT_BYTES",
    "ReplacementError",
    "ReplacementMatcher",
    "TopologyPlan",
    "chain_gbps",
    "effective_gbps",
    "plan_topology",
    "replacement_schedule",
    "Interval",
    "Schedule",
    "ScheduleError",
    "double_buffer_schedule",
    "CellMatchingSystem",
    "SystemError",
    "SystemRunResult",
    "CELL_BYTES",
    "STTError",
    "STTImage",
    "row_stride",
    "DFATile",
    "TileError",
    "TileRunResult",
    "merge_stats",
]
