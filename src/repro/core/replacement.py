"""Dynamic STT replacement: arbitrarily large dictionaries (paper §6).

When even eight series tiles cannot hold the dictionary, each SPE keeps
**two half-size STT slots** (~800 states / ~100 KB each) managed as a
double buffer: while the resident table filters input, the next dictionary
slice streams in from main memory.  The paper's schedule (Figure 8) loads a
95 KB table in two chunks riding the DMA slack of two 25.64 µs compute
periods, and §6 derives the effective per-SPE throughput

    T(n) = 5.11 / (2 (n - 1))  Gbps     for n dictionary slices (n ≥ 2),

plotted in Figure 9 for 1/2/4/8 SPEs.

This module provides all three levels:

* :func:`effective_gbps` — the paper's analytic law (Figure 9);
* :func:`replacement_schedule` — a discrete-event reconstruction of
  Figure 8's timeline (periods, input loads, chunked STT loads) with the
  overlap invariants checked;
* :class:`ReplacementMatcher` — a *functional* engine that actually matches
  input against every slice cyclically and must agree with a monolithic
  scan of the whole dictionary (tested).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from ..cell.memory import BandwidthModel
from ..dfa.automaton import DFA
from ..dfa.partition import PartitionedDictionary, partition_patterns
from .engine import VectorDFAEngine
from .schedule import Interval, Schedule, ScheduleError

__all__ = [
    "effective_gbps",
    "replacement_schedule",
    "DoubleBuffer",
    "ReplacementMatcher",
    "ReplacementError",
    "HALF_TILE_STATES",
    "HALF_TILE_STT_BYTES",
    "TopologyPlan",
    "chain_gbps",
    "plan_topology",
]


class ReplacementError(Exception):
    """Raised for infeasible replacement configurations."""


#: States per half-size STT slot (paper §6: "approximately 800 states").
HALF_TILE_STATES = 800

#: Bytes per half-size slot: ~100 KB; the paper's worked example uses 95 KB.
HALF_TILE_STT_BYTES = 95 * 1024


def effective_gbps(num_slices: int, per_tile_gbps: float = 5.11,
                   num_spes: int = 1) -> float:
    """The paper's §6 law: each SPE cycling through *n* dictionary slices
    delivers ``per_tile/(2(n-1))``; parallel SPEs multiply (Figure 9)."""
    if num_slices < 1:
        raise ReplacementError("need at least one dictionary slice")
    if num_spes < 1:
        raise ReplacementError("need at least one SPE")
    if per_tile_gbps <= 0:
        raise ReplacementError("per-tile throughput must be positive")
    if num_slices == 1:
        return num_spes * per_tile_gbps
    return num_spes * per_tile_gbps / (2.0 * (num_slices - 1))


def replacement_schedule(num_slices: int,
                         periods: int = 8,
                         block_bytes: int = 16 * 1024,
                         stt_bytes: int = HALF_TILE_STT_BYTES,
                         per_tile_gbps: float = 5.11,
                         bandwidth: BandwidthModel = BandwidthModel()
                         ) -> Schedule:
    """Reconstruct Figure 8's timeline.

    Each *period* processes one input buffer against the resident STT slot
    (25.64 µs for 16 KB at 5.11 Gbps).  Per period the MFC first refills
    the just-consumed input buffer (5.94 µs) and then moves one chunk
    (half) of the next STT slice into the shadow slot — a full slice load
    spans two periods.  The schedule fails verification if the DMA work
    does not fit the period, which is exactly the feasibility condition
    the paper's chunking is designed to meet.
    """
    if num_slices < 2:
        raise ReplacementError("replacement needs at least two slices; "
                               "a single slice is a plain resident tile")
    if periods < 2:
        raise ReplacementError("need at least two periods")
    if block_bytes <= 0:
        raise ReplacementError("input block size must be positive")
    if stt_bytes <= 16:
        raise ReplacementError("STT slice size must exceed 16 bytes")
    compute_s = block_bytes * 8 / (per_tile_gbps * 1e9)
    input_s = bandwidth.transfer_seconds(block_bytes)
    # The paper splits a 95 KB slice as 48 + 47 KB (Figure 8).
    chunk = min(48 * 1024, stt_bytes - 16)
    chunk_s = [bandwidth.transfer_seconds(chunk),
               bandwidth.transfer_seconds(stt_bytes - chunk)]
    if input_s + max(chunk_s) > compute_s:
        raise ScheduleError(
            f"period infeasible: input load {input_s * 1e6:.2f} us + STT "
            f"chunk {max(chunk_s) * 1e6:.2f} us exceed the "
            f"{compute_s * 1e6:.2f} us compute period; use smaller chunks")

    sched = Schedule()
    t = 0.0
    slice_idx = 0        # slice resident in the active slot
    next_slice = 1
    for p in range(periods):
        buf = p % 2
        slot = (p // 2) % 2
        sched.add(Interval("compute", t, t + compute_s,
                           f"process buffer {buf} against slice "
                           f"{slice_idx} (slot {slot})", buf))
        # DMA inside the period: refill the other input buffer, then move
        # one chunk of the incoming slice into the shadow slot.
        dt = t
        other = 1 - buf
        sched.add(Interval("dma", dt, dt + input_s,
                           f"load input into buffer {other}", other))
        dt += input_s
        half = p % 2
        sched.add(Interval("dma", dt, dt + chunk_s[half],
                           f"load slice {next_slice} chunk {half + 1}/2 "
                           f"into slot {1 - slot}"))
        if half == 1:
            slice_idx = next_slice
            next_slice = (next_slice + 1) % num_slices
        t += compute_s
    sched.verify()
    return sched


@dataclass(frozen=True)
class TopologyPlan:
    """A deployment of *n* dictionary slices on *P* SPEs.

    ``slices_per_spe`` (k) is the knob: each series chain holds
    ``ceil(n/k)`` SPEs, each cycling k slices; the remaining SPEs
    replicate the chain in parallel.  k = n with chain length 1 is the
    paper's §6 strategy; k ≤ 2 keeps every slice resident (no DMA cycling
    at all).
    """

    num_slices: int
    num_spes: int
    slices_per_spe: int
    chain_length: int
    parallel_chains: int
    gbps: float

    @property
    def is_paper_strategy(self) -> bool:
        return self.slices_per_spe == self.num_slices

    def describe(self) -> str:
        kind = "paper (each SPE cycles all slices)" \
            if self.is_paper_strategy else \
            ("fully resident series" if self.slices_per_spe <= 2
             else "series-distributed cycling")
        return (f"{self.parallel_chains} chain(s) x {self.chain_length} "
                f"SPE(s), {self.slices_per_spe} slice(s)/SPE "
                f"[{kind}]: {self.gbps:.2f} Gbps")


def chain_gbps(slices_per_spe: int,
               per_tile_gbps: float = 5.11) -> float:
    """Throughput of one series chain whose SPEs each hold ``k`` slices.

    * k = 1 — one resident table: full tile speed;
    * k = 2 — both tables resident (two slots), every block matched
      twice: compute-bound at half speed;
    * k ≥ 3 — the shadow slot cycles: DMA-bound at the paper's
      1/(2(k−1)) law.
    """
    k = slices_per_spe
    if k < 1:
        raise ReplacementError("slices per SPE must be >= 1")
    if k == 1:
        return per_tile_gbps
    if k == 2:
        return per_tile_gbps / 2.0
    return per_tile_gbps / (2.0 * (k - 1))


def plan_topology(num_slices: int, num_spes: int,
                  per_tile_gbps: float = 5.11) -> TopologyPlan:
    """Best slices-per-SPE for a dictionary of ``num_slices`` slices.

    Enumerates k = 1..n, keeps plans whose chain fits the SPE budget, and
    maximizes aggregate throughput.  For large dictionaries on many SPEs
    the series-distributed strategies beat the paper's parallel-cycling
    formula — the ablation DESIGN.md §5.3 calls out.
    """
    if num_slices < 1:
        raise ReplacementError("need at least one slice")
    if num_spes < 1:
        raise ReplacementError("need at least one SPE")
    best: Optional[TopologyPlan] = None
    for k in range(1, num_slices + 1):
        chain_len = -(-num_slices // k)
        if chain_len > num_spes:
            continue
        chains = num_spes // chain_len
        gbps = chains * chain_gbps(k, per_tile_gbps)
        plan = TopologyPlan(num_slices, num_spes, k, chain_len, chains,
                            gbps)
        if best is None or plan.gbps > best.gbps:
            best = plan
    if best is None:
        raise ReplacementError(
            f"{num_slices} slices cannot fit {num_spes} SPE(s) even with "
            f"full cycling")
    return best


T = TypeVar("T")


class DoubleBuffer(Generic[T]):
    """The paper's two half-tile STT slots as a reusable primitive.

    One slot is *active* (it serves scans); the other is *standby* (the
    shadow slot the next table streams into).  ``stage`` fills the
    standby slot while the active one keeps working; ``promote``
    atomically flips the roles and bumps the generation counter,
    returning the retired value so the caller can release its resources
    once any in-flight users drain.  This is the promotion path both
    :meth:`ReplacementMatcher.swap_slice` and the scan service's
    :class:`~repro.service.registry.DictionaryRegistry` run on.
    """

    def __init__(self, initial: T) -> None:
        self._lock = threading.Lock()
        self._slots: List[Optional[T]] = [initial, None]
        self._active = 0
        self._staged = False
        #: Monotonic promotion count; the initial value is generation 1.
        self.generation = 1

    @property
    def active(self) -> T:
        return self._slots[self._active]

    @property
    def standby(self) -> Optional[T]:
        return self._slots[1 - self._active]

    @property
    def has_staged(self) -> bool:
        return self._staged

    def stage(self, value: T) -> None:
        """Place ``value`` in the standby slot (the shadow-slot DMA)."""
        with self._lock:
            self._slots[1 - self._active] = value
            self._staged = True

    def promote(self) -> T:
        """Atomically make the staged value active; returns the retired
        one.  Scans that already grabbed ``active`` finish on the value
        they started with — nothing is mutated in place."""
        with self._lock:
            if not self._staged:
                raise ReplacementError(
                    "nothing staged in the standby slot; call stage() "
                    "first")
            retired = self._slots[self._active]
            self._active = 1 - self._active
            self._staged = False
            self.generation += 1
            return retired

    def __repr__(self) -> str:
        return (f"DoubleBuffer(generation={self.generation}, "
                f"staged={self._staged})")


class ReplacementMatcher:
    """Functional dynamic-STT-replacement matcher.

    Holds a partitioned dictionary; every scan runs the input through each
    slice's engine in turn (the time-multiplexed equivalent of the series
    composition) and models the throughput with the §6 law.  Each slice
    sits in a :class:`DoubleBuffer`, so :meth:`swap_slice` can replace
    one slice's table without rebuilding the partition — the service-era
    equivalent of streaming a new STT into the shadow slot.
    """

    def __init__(self, partition: PartitionedDictionary) -> None:
        if partition.num_slices < 1:
            raise ReplacementError("empty partition")
        self.partition = partition
        self._buffers: List[DoubleBuffer[VectorDFAEngine]] = [
            DoubleBuffer(VectorDFAEngine(d)) for d in partition.dfas]

    @property
    def _engines(self) -> List[VectorDFAEngine]:
        return [buf.active for buf in self._buffers]

    @classmethod
    def from_patterns(cls, patterns: Sequence[bytes],
                      states_per_slice: int = HALF_TILE_STATES,
                      alphabet_size: int = 32) -> "ReplacementMatcher":
        return cls(partition_patterns(patterns, states_per_slice,
                                      alphabet_size))

    @property
    def num_slices(self) -> int:
        return self.partition.num_slices

    def slice_dfa(self, index: int) -> DFA:
        """The DFA currently resident in slice ``index`` (reflects
        swaps, unlike ``partition.dfas``)."""
        return self._buffers[index].active.dfa

    def slice_generation(self, index: int) -> int:
        """How many tables slice ``index`` has held (1 = original)."""
        return self._buffers[index].generation

    def swap_slice(self, index: int, dfa: DFA) -> int:
        """Replace one slice's resident table via double-buffer
        promotion — no repartitioning, no disturbance to the other
        slices.  The new automaton is staged in the slice's shadow slot
        and promoted atomically; returns the slot's new generation."""
        if not 0 <= index < self.num_slices:
            raise ReplacementError(
                f"slice index {index} out of range "
                f"(0..{self.num_slices - 1})")
        if dfa.alphabet_size != self.partition.dfas[index].alphabet_size:
            raise ReplacementError(
                f"replacement slice alphabet {dfa.alphabet_size} != "
                f"partition alphabet "
                f"{self.partition.dfas[index].alphabet_size}")
        buf = self._buffers[index]
        buf.stage(VectorDFAEngine(dfa))
        buf.promote()
        return buf.generation

    def aggregate_stt_bytes(self, cell_bytes: int = 4) -> int:
        return sum(buf.active.dfa.memory_bytes(cell_bytes)
                   for buf in self._buffers)

    def scan_block(self, block: bytes) -> Tuple[int, List[int]]:
        """Total matches and per-slice counts for one input block."""
        per_slice = [engine.count_block(block) if block else 0
                     for engine in self._engines]
        return sum(per_slice), per_slice

    def scan_streams(self, streams: Sequence[bytes]) -> Tuple[int, List[int]]:
        per_slice = [engine.run_streams(streams).total
                     for engine in self._engines]
        return sum(per_slice), per_slice

    def modelled_gbps(self, per_tile_gbps: float = 5.11,
                      num_spes: int = 1) -> float:
        return effective_gbps(self.num_slices, per_tile_gbps, num_spes)
