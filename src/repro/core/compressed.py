"""Compressed state-transition tables — an ablation of the paper's §4
choice of a *complete* table.

The paper deliberately spends local store on a dense row per state because
a transition must cost exactly one load.  The classic alternative
(default-transition compression, the idea behind D2FA and the original
Aho–Corasick failure function) stores, per state, only the transitions
that *differ* from a default state's row and falls back otherwise:

* memory shrinks dramatically (security DFAs are failure-closed, so most
  rows differ from their failure state in a handful of symbols);
* but one input symbol may now take several fallback hops — the per-byte
  cost becomes input-dependent, surrendering exactly the overload-attack
  immunity the paper's §1 demands.

:class:`CompressedSTT` implements the representation functionally (counts
must equal the dense DFA's), reports the compression ratio, and measures
the fallback-hop distribution so the ablation bench can show both sides of
the trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError
from .stt import CELL_BYTES

__all__ = ["CompressedSTT", "CompressionStats"]


@dataclass(frozen=True)
class CompressionStats:
    """Footprint and run-time characteristics of one compressed table."""

    num_states: int
    dense_bytes: int
    compressed_bytes: int
    stored_transitions: int
    max_chain_length: int

    @property
    def ratio(self) -> float:
        """compressed / dense — smaller is better."""
        return self.compressed_bytes / self.dense_bytes


class CompressedSTT:
    """Default-transition-compressed transition table.

    Each state stores a sparse exception list plus a default state; a
    lookup follows defaults until an exception (or the root, which is
    stored densely) answers.  Defaults are the Aho–Corasick failure links
    when provided, else state 0 — both guarantee acyclic default chains
    ending at the root.
    """

    def __init__(self, dfa: DFA,
                 defaults: Optional[Sequence[int]] = None) -> None:
        self.dfa = dfa
        n = dfa.num_states
        W = dfa.alphabet_size
        if defaults is None:
            # Without structural knowledge the start state is the only
            # universally sound default; build via
            # :meth:`from_aho_corasick` for failure-link defaults.
            defaults = [dfa.start] * n
        defaults = list(defaults)
        if len(defaults) != n:
            raise DFAError("one default per state required")
        self._check_acyclic(defaults, dfa.start)
        self.defaults = defaults

        # Root row stays dense (every chain terminates there with an
        # answer); other states keep exceptions only.
        self.root_row = dfa.transitions[dfa.start].copy()
        self.exceptions: List[Dict[int, int]] = []
        stored = 0
        for s in range(n):
            if s == dfa.start:
                self.exceptions.append({})
                continue
            d = defaults[s]
            exc = {
                c: int(dfa.transitions[s, c])
                for c in range(W)
                if dfa.transitions[s, c] != dfa.transitions[d, c]
            }
            self.exceptions.append(exc)
            stored += len(exc)

        # Footprint model: dense = n*W cells; compressed = root row +
        # per-state (default pointer + count) + per-exception
        # (symbol, target) packed in one cell.
        dense = n * W * CELL_BYTES
        compressed = W * CELL_BYTES + n * 2 * CELL_BYTES \
            + stored * CELL_BYTES
        self.stats = CompressionStats(
            num_states=n,
            dense_bytes=dense,
            compressed_bytes=compressed,
            stored_transitions=stored,
            max_chain_length=self._max_chain(defaults, dfa.start),
        )

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_aho_corasick(cls, ac) -> "CompressedSTT":
        """Build with the AC failure links as defaults — the classic
        result: state s's dense row differs from fail(s)'s row exactly at
        s's goto edges, so the exception count collapses to the number of
        trie edges (n − 1)."""
        dfa = ac.to_dfa()
        return cls(dfa, defaults=[int(f) for f in ac.fail])

    @staticmethod
    def _check_acyclic(defaults: Sequence[int], root: int) -> None:
        for s in range(len(defaults)):
            seen = set()
            cur = s
            while cur != root:
                if cur in seen:
                    raise DFAError("default chain contains a cycle")
                seen.add(cur)
                cur = defaults[cur]

    @staticmethod
    def _max_chain(defaults: Sequence[int], root: int) -> int:
        longest = 0
        for s in range(len(defaults)):
            hops = 0
            cur = s
            while cur != root:
                cur = defaults[cur]
                hops += 1
            longest = max(longest, hops)
        return longest

    # -- lookup -------------------------------------------------------------------

    def step(self, state: int, symbol: int) -> Tuple[int, int]:
        """One transition; returns (next_state, fallback_hops)."""
        if not 0 <= symbol < self.dfa.alphabet_size:
            raise DFAError(f"symbol {symbol} outside alphabet")
        hops = 0
        cur = state
        while cur != self.dfa.start:
            nxt = self.exceptions[cur].get(symbol)
            if nxt is not None:
                return nxt, hops
            cur = self.defaults[cur]
            hops += 1
        return int(self.root_row[symbol]), hops

    def count_matches(self, symbols: bytes) -> Tuple[int, int]:
        """Counting scan; returns (matches, total_fallback_hops)."""
        state = self.dfa.start
        final = self.dfa.final_mask
        count = 0
        hops_total = 0
        for sym in symbols:
            state, hops = self.step(state, sym)
            hops_total += hops
            if final[state]:
                count += 1
        return count, hops_total

    def average_hops(self, symbols: bytes) -> float:
        """Fallback hops per input byte — the input-dependence metric."""
        if not symbols:
            return 0.0
        _, hops = self.count_matches(symbols)
        return hops / len(symbols)
