"""Compressed state-transition tables — default-transition encodings of
the paper's §4 *complete* table.

The paper deliberately spends local store on a dense row per state because
a transition must cost exactly one load.  The classic alternative
(default-transition compression, the idea behind D2FA and the original
Aho–Corasick failure function) stores, per state, only the transitions
that *differ* from a default state's row and falls back otherwise:

* memory shrinks dramatically (security DFAs are failure-closed, so most
  rows differ from their failure state in a handful of symbols);
* but one input symbol may now take several fallback hops — the per-byte
  cost becomes input-dependent, surrendering exactly the overload-attack
  immunity the paper's §1 demands.

Two representations share the sparse (CSR-style) machinery here:

* :class:`CompressedSTT` — per-state default *chains* (AC failure links),
  the faithful D2FA-style ablation with input-dependent hop counts;
* :class:`ColdRowStore` — the depth-1 variant that actually ships inside
  the hot/cold fused scanner (:class:`repro.core.engine.HotColdFusedTable`):
  every cold row compresses against one shared default row, so a cold
  lookup is exactly one sorted probe, never a chain walk.  That bounds
  the slow path's per-byte cost and keeps the §1 immunity argument —
  the escape costs more than a hot gather, but a constant amount more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError
from .stt import CELL_BYTES

__all__ = ["ColdRowStore", "CompressedSTT", "CompressionStats", "csr_encode"]


def csr_encode(rows: np.ndarray,
               default_rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse ``(keys, vals)`` of the cells where ``rows`` differs from
    ``default_rows`` (same shape, or one shared row broadcast over the
    row axis).  Keys are ``row * width + column`` emitted in row-major
    order — strictly increasing, ready for ``searchsorted``."""
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise DFAError("row matrix must be 2-D")
    mask = rows != np.asarray(default_rows)
    r, c = np.nonzero(mask)
    keys = r.astype(np.int64) * rows.shape[1] + c
    return keys, rows[r, c]


class ColdRowStore:
    """Shared-default compressed rows with one-probe vectorized lookup.

    Row ``j`` is stored as its exceptions against a single shared
    ``default_row``; a miss in the sorted key array answers from the
    default.  Built from (and serialized as) three flat numpy arrays so
    it can live in an artifact file or a shared-memory segment verbatim.
    """

    def __init__(self, keys: np.ndarray, vals: np.ndarray,
                 default_row: np.ndarray, num_rows: int) -> None:
        self.keys = np.ascontiguousarray(keys, dtype=np.int64)
        self.vals = np.ascontiguousarray(vals, dtype=np.int32)
        self.default_row = np.ascontiguousarray(default_row,
                                                dtype=np.int32)
        self.num_rows = int(num_rows)
        self.width = int(self.default_row.size)
        if self.keys.shape != self.vals.shape or self.keys.ndim != 1:
            raise DFAError("cold-row keys/vals must be parallel 1-D arrays")
        if self.keys.size and bool((np.diff(self.keys) <= 0).any()):
            raise DFAError("cold-row keys must be strictly increasing")

    @classmethod
    def from_rows(cls, rows: np.ndarray,
                  default_row: np.ndarray) -> "ColdRowStore":
        rows = np.asarray(rows)
        keys, vals = csr_encode(rows, default_row)
        return cls(keys, vals, default_row, rows.shape[0])

    def lookup(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized ``(row, column) → cell`` with default fallback."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        out = self.default_row[cols]
        if self.keys.size:
            q = rows * self.width + cols
            pos = np.minimum(np.searchsorted(self.keys, q),
                             self.keys.size - 1)
            np.copyto(out, self.vals[pos], where=self.keys[pos] == q)
        return out

    def lookup_one(self, row: int, col: int) -> int:
        return int(self.lookup(np.asarray([row]), np.asarray([col]))[0])

    def dense_rows(self) -> np.ndarray:
        """Reconstruct the full ``(num_rows, width)`` matrix — the
        inverse of :meth:`from_rows`.  One broadcast plus one scatter,
        so artifact loaders can persist the shared-default encoding and
        still hand dense rows to table builders."""
        out = np.broadcast_to(
            self.default_row, (self.num_rows, self.width)).copy()
        if self.keys.size:
            out[self.keys // self.width,
                self.keys % self.width] = self.vals
        return out

    @property
    def stored_transitions(self) -> int:
        return int(self.keys.size)

    @property
    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.vals.nbytes
                   + self.default_row.nbytes)


@dataclass(frozen=True)
class CompressionStats:
    """Footprint and run-time characteristics of one compressed table."""

    num_states: int
    dense_bytes: int
    compressed_bytes: int
    stored_transitions: int
    max_chain_length: int

    @property
    def ratio(self) -> float:
        """compressed / dense — smaller is better."""
        return self.compressed_bytes / self.dense_bytes


class CompressedSTT:
    """Default-transition-compressed transition table.

    Each state stores a sparse exception set plus a default state; a
    lookup follows defaults until an exception (or the root, which is
    stored densely) answers.  Defaults are the Aho–Corasick failure links
    when provided, else state 0 — both guarantee acyclic default chains
    ending at the root.  Exceptions live in one sorted key/value pair of
    arrays (the same :func:`csr_encode` layout :class:`ColdRowStore`
    uses), not per-state containers.
    """

    def __init__(self, dfa: DFA,
                 defaults: Optional[Sequence[int]] = None) -> None:
        self.dfa = dfa
        n = dfa.num_states
        W = dfa.alphabet_size
        if defaults is None:
            # Without structural knowledge the start state is the only
            # universally sound default; build via
            # :meth:`from_aho_corasick` for failure-link defaults.
            defaults = [dfa.start] * n
        defaults = list(defaults)
        if len(defaults) != n:
            raise DFAError("one default per state required")
        self._check_acyclic(defaults, dfa.start)
        self.defaults = defaults

        # Root row stays dense (every chain terminates there with an
        # answer); other states keep exceptions only.
        trans = np.asarray(dfa.transitions, dtype=np.int64)
        self.root_row = dfa.transitions[dfa.start].copy()
        diff = trans != trans[np.asarray(defaults, dtype=np.int64)]
        diff[dfa.start, :] = False
        r, c = np.nonzero(diff)
        self._keys = r.astype(np.int64) * W + c
        self._vals = trans[r, c]
        stored = int(self._keys.size)

        # Footprint model: dense = n*W cells; compressed = root row +
        # per-state (default pointer + count) + per-exception
        # (symbol, target) packed in one cell.
        dense = n * W * CELL_BYTES
        compressed = W * CELL_BYTES + n * 2 * CELL_BYTES \
            + stored * CELL_BYTES
        self.stats = CompressionStats(
            num_states=n,
            dense_bytes=dense,
            compressed_bytes=compressed,
            stored_transitions=stored,
            max_chain_length=self._max_chain(defaults, dfa.start),
        )

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_aho_corasick(cls, ac) -> "CompressedSTT":
        """Build with the AC failure links as defaults — the classic
        result: state s's dense row differs from fail(s)'s row exactly at
        s's goto edges, so the exception count collapses to the number of
        trie edges (n − 1)."""
        dfa = ac.to_dfa()
        return cls(dfa, defaults=[int(f) for f in ac.fail])

    @staticmethod
    def _check_acyclic(defaults: Sequence[int], root: int) -> None:
        for s in range(len(defaults)):
            seen = set()
            cur = s
            while cur != root:
                if cur in seen:
                    raise DFAError("default chain contains a cycle")
                seen.add(cur)
                cur = defaults[cur]

    @staticmethod
    def _max_chain(defaults: Sequence[int], root: int) -> int:
        longest = 0
        for s in range(len(defaults)):
            hops = 0
            cur = s
            while cur != root:
                cur = defaults[cur]
                hops += 1
            longest = max(longest, hops)
        return longest

    # -- lookup -------------------------------------------------------------------

    def step(self, state: int, symbol: int) -> Tuple[int, int]:
        """One transition; returns (next_state, fallback_hops)."""
        if not 0 <= symbol < self.dfa.alphabet_size:
            raise DFAError(f"symbol {symbol} outside alphabet")
        W = self.dfa.alphabet_size
        keys = self._keys
        size = keys.size
        hops = 0
        cur = state
        while cur != self.dfa.start:
            q = cur * W + symbol
            pos = int(np.searchsorted(keys, q))
            if pos < size and int(keys[pos]) == q:
                return int(self._vals[pos]), hops
            cur = self.defaults[cur]
            hops += 1
        return int(self.root_row[symbol]), hops

    def count_matches(self, symbols: bytes) -> Tuple[int, int]:
        """Counting scan; returns (matches, total_fallback_hops)."""
        state = self.dfa.start
        final = self.dfa.final_mask
        count = 0
        hops_total = 0
        for sym in symbols:
            state, hops = self.step(state, sym)
            hops_total += hops
            if final[state]:
                count += 1
        return count, hops_total

    def average_hops(self, symbols: bytes) -> float:
        """Fallback hops per input byte — the input-dependence metric."""
        if not symbols:
            return 0.0
        _, hops = self.count_matches(symbols)
        return hops / len(symbols)
