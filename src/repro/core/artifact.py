"""Filter packs: serialize compiled dictionaries for deployment.

A NIDS appliance does not rebuild its automata on every boot — rule sets
are compiled once and shipped to the data plane.  A *filter pack* is this
repository's deployable artifact: the fold table, the dense transition
table, final markings and per-state outputs, in a versioned, checksummed
binary format.

Format (all integers big-endian, like the STT cells):

====== ======================= =====================================
offset field                   notes
====== ======================= =====================================
0      magic ``RPRO``          4 bytes
4      format version (u16)    currently 1
6      alphabet width (u16)
8      num states (u32)
12     start state (u32)
16     num outputs (u32)       total (state, pattern) pairs
20     fold table              256 bytes
276    transitions             num_states × width × u32
...    final bitmap            ceil(num_states / 8) bytes
...    outputs                 num_outputs × (state u32, pattern u32)
...    CRC32 (u32)             over everything before it
====== ======================= =====================================
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

import numpy as np

from ..dfa.alphabet import FoldMap
from ..dfa.automaton import DFA, DFAError

__all__ = ["pack_filter", "unpack_filter", "ArtifactError",
           "FORMAT_VERSION", "MAGIC"]

MAGIC = b"RPRO"
FORMAT_VERSION = 1


class ArtifactError(Exception):
    """Raised for malformed or corrupted filter packs."""


def pack_filter(dfa: DFA, fold: FoldMap) -> bytes:
    """Serialize a compiled dictionary into a filter pack."""
    if fold.width != dfa.alphabet_size:
        raise ArtifactError(
            f"fold width {fold.width} != DFA alphabet "
            f"{dfa.alphabet_size}")
    out = bytearray()
    outputs = [(s, p) for s, pats in sorted(dfa.outputs.items())
               for p in pats]
    out += MAGIC
    out += struct.pack(">HHIII", FORMAT_VERSION, dfa.alphabet_size,
                       dfa.num_states, dfa.start, len(outputs))
    out += bytes(fold.table)
    out += dfa.transitions.astype(">u4").tobytes()
    final_bitmap = bytearray((dfa.num_states + 7) // 8)
    for s in dfa.finals:
        final_bitmap[s >> 3] |= 1 << (s & 7)
    out += bytes(final_bitmap)
    for s, p in outputs:
        out += struct.pack(">II", s, p)
    out += struct.pack(">I", zlib.crc32(bytes(out)))
    return bytes(out)


def unpack_filter(blob: bytes) -> Tuple[DFA, FoldMap]:
    """Deserialize a filter pack; verifies magic, version and checksum."""
    if len(blob) < 24:
        raise ArtifactError("blob too short to be a filter pack")
    if blob[:4] != MAGIC:
        raise ArtifactError("bad magic: not a filter pack")
    stored_crc = struct.unpack(">I", blob[-4:])[0]
    if zlib.crc32(blob[:-4]) != stored_crc:
        raise ArtifactError("checksum mismatch: corrupted filter pack")
    version, width, num_states, start, num_outputs = struct.unpack(
        ">HHIII", blob[4:20])
    if version != FORMAT_VERSION:
        raise ArtifactError(f"unsupported format version {version}")
    pos = 20
    fold_table = tuple(blob[pos:pos + 256])
    pos += 256
    table_bytes = num_states * width * 4
    expected = pos + table_bytes + (num_states + 7) // 8 \
        + num_outputs * 8 + 4
    if len(blob) != expected:
        raise ArtifactError(
            f"size mismatch: {len(blob)} bytes, header implies {expected}")
    transitions = np.frombuffer(
        blob, dtype=">u4", count=num_states * width,
        offset=pos).reshape(num_states, width).astype(np.int32)
    pos += table_bytes
    bitmap = blob[pos:pos + (num_states + 7) // 8]
    pos += len(bitmap)
    finals = [s for s in range(num_states) if bitmap[s >> 3] & (1 << (s & 7))]
    outputs: dict = {}
    for _ in range(num_outputs):
        s, p = struct.unpack(">II", blob[pos:pos + 8])
        outputs.setdefault(s, []).append(p)
        pos += 8
    outputs = {s: tuple(pats) for s, pats in outputs.items()}
    try:
        fold = FoldMap(fold_table, width)
        dfa = DFA(transitions, finals, start=start, outputs=outputs)
    except (ValueError, DFAError) as exc:
        raise ArtifactError(f"pack contents invalid: {exc}") from exc
    return dfa, fold
