"""Bloom-filter scanning on an SPE — the paper's §7 future work.

The conclusions announce "exploring the potentials of the Cell BE when
implementing probabilistic string matching algorithms like Bloom filters"
(the FPGA literature the paper cites [7, 13, 14] screens traffic this
way).  This module builds that system at the same level of fidelity as the
DFA tile's analytic models:

* **capacity** — the local-store space a DFA tile spends on the STT is
  spent on bit arrays instead; with k ≈ m/n·ln2 hash functions the same
  190 KB holds *hundreds of thousands* of signatures at a 1 % false-
  positive rate, versus ~1500 DFA states;
* **throughput model** — per input byte the scanner updates one rolling
  hash and probes k bits *per distinct pattern length*; probe cost is
  dominated by dependent local-store loads, so the cycle model mirrors
  the DFA kernel's load-bound structure.  Hits (true or false) pay an
  exact verification;
* **functional scanning** — backed by :class:`repro.baselines.BloomMatcher`
  (no false negatives; false positives filtered by verification), so
  counts agree exactly with the DFA engines.

The resulting trade-off — huge dictionaries, length-set-sensitive and
input-sensitive throughput, versus the DFA's flat cost — is quantified in
``benchmarks/bench_future_bloom.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.bloom import BloomFilter, BloomMatcher
from ..cell.spu import CLOCK_HZ
from ..dfa.automaton import MatchEvent
from .planner import TilePlan, plan_tile

__all__ = ["BloomTile", "BloomTileError", "bloom_capacity"]


class BloomTileError(Exception):
    """Raised when the filter does not fit the local store."""


#: Modelled cycles per rolling-hash update (two multiplies-by-constant
#: folded into shifts/adds, per the SPU's fixed-point unit).
HASH_UPDATE_CYCLES = 6

#: Modelled cycles per Bloom probe: dependent LS load (6) + rotate (4) +
#: mask/test (2).
PROBE_CYCLES = 12

#: Modelled cycles to exactly verify one candidate window (byte compare
#: loop over the window, amortized).
VERIFY_CYCLES = 64


def bloom_capacity(bits: int, fp_rate: float) -> int:
    """Signatures a ``bits``-bit filter holds at ``fp_rate``:
    n = -m (ln 2)^2 / ln p."""
    if bits <= 0:
        raise BloomTileError("bit budget must be positive")
    if not 0 < fp_rate < 1:
        raise BloomTileError("fp_rate must be in (0, 1)")
    return int(-bits * (math.log(2) ** 2) / math.log(fp_rate))


@dataclass
class BloomScanResult:
    """Outcome of one Bloom-tile scan."""

    events: List[MatchEvent]
    verifications: int
    false_positives: int
    modelled_gbps: float

    @property
    def total_matches(self) -> int:
        return len(self.events)


class BloomTile:
    """A Bloom-filter scanner sized for one SPE local store."""

    def __init__(self, patterns: Sequence[bytes],
                 plan: Optional[TilePlan] = None,
                 fp_rate: float = 0.01) -> None:
        if not patterns:
            raise BloomTileError("at least one pattern required")
        self.plan = plan if plan is not None else plan_tile()
        self.fp_rate = fp_rate
        self.matcher = BloomMatcher(patterns, fp_rate)
        bits_needed = sum(f.num_bits for f in self.matcher.filters.values())
        budget_bits = self.plan.stt_capacity * 8
        if bits_needed > budget_bits:
            raise BloomTileError(
                f"filters need {bits_needed} bits; the layout offers "
                f"{budget_bits} (lower fp_rate or shrink the dictionary)")
        self.bits_used = bits_needed
        self.patterns = [bytes(p) for p in patterns]

    # -- capacity ---------------------------------------------------------------

    @property
    def num_length_groups(self) -> int:
        return len(self.matcher.filters)

    @property
    def capacity_signatures(self) -> int:
        """How many signatures this layout could hold at the same rate."""
        return bloom_capacity(self.plan.stt_capacity * 8, self.fp_rate)

    # -- throughput model -----------------------------------------------------------

    def cycles_per_byte(self, hit_rate: float = 0.0) -> float:
        """Modelled scan cost per input byte.

        ``hit_rate`` is the fraction of windows whose filter probe comes
        back positive (true matches + false positives) and must be
        verified.  The per-byte cost scales with the number of *distinct
        pattern lengths* — the known weakness of Bloom scanning versus
        the DFA's single transition per byte.
        """
        if not 0 <= hit_rate <= 1:
            raise BloomTileError("hit_rate must be in [0, 1]")
        cycles = 0.0
        for length, bf in self.matcher.filters.items():
            cycles += HASH_UPDATE_CYCLES
            cycles += bf.num_hashes * PROBE_CYCLES
        cycles += hit_rate * VERIFY_CYCLES
        return cycles

    def modelled_gbps(self, hit_rate: float = 0.0,
                      clock_hz: float = CLOCK_HZ) -> float:
        return 8.0 * clock_hz / self.cycles_per_byte(hit_rate) / 1e9

    # -- functional scan --------------------------------------------------------------

    def scan(self, block: bytes) -> BloomScanResult:
        """Exact scan (Bloom screen + verification) with cost modelling."""
        before_v = self.matcher.verifications
        before_fp = self.matcher.false_positives
        events = self.matcher.find_all(block)
        verifications = self.matcher.verifications - before_v
        false_positives = self.matcher.false_positives - before_fp
        windows = max(1, len(block))
        hit_rate = verifications / windows
        return BloomScanResult(
            events=events,
            verifications=verifications,
            false_positives=false_positives,
            modelled_gbps=self.modelled_gbps(hit_rate),
        )

    def __repr__(self) -> str:
        return (f"BloomTile(patterns={len(self.patterns)}, "
                f"length_groups={self.num_length_groups}, "
                f"bits={self.bits_used}, fp={self.fp_rate})")
