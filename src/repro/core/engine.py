"""Vectorized DFA matching engine (numpy).

The paper's SIMD insight — run many independent DFAs in lockstep, one input
byte per lane — maps directly onto numpy: keep a vector of current states,
gather next states with one fancy-indexing step per input position, and
accumulate final-state entries.  This module is the *native-speed* engine of
the library (the :mod:`repro.cell` path is the cycle-accounted simulation);
it is used by the composition layer, the baselines comparison and any
caller who just wants fast multi-pattern matching.

Two scan modes:

* :meth:`VectorDFAEngine.run_streams` — N independent streams in lockstep,
  exactly the tile's 16-lane semantics for arbitrary N;
* :meth:`VectorDFAEngine.count_block` — *exact* counting over one
  contiguous stream, parallelized by splitting it into chunks and running a
  fixpoint: every chunk is scanned speculatively from a guessed entry
  state, then chunks whose guess proved wrong are rescanned from the
  corrected state.  DFAs for security dictionaries converge to the correct
  state within a few symbols, so almost all chunks survive the first pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError

__all__ = ["VectorDFAEngine", "StreamResult"]


@dataclass
class StreamResult:
    """Outcome of a lockstep multi-stream scan."""

    counts: np.ndarray         # matches per stream
    final_states: np.ndarray   # DFA state per stream after the scan

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class VectorDFAEngine:
    """Lockstep vectorized interpreter for a dense DFA."""

    def __init__(self, dfa: DFA) -> None:
        self.dfa = dfa
        # Contiguous copies: the gather in the hot loop should hit linear
        # memory (guide: views/contiguity matter more than cleverness).
        self.table = np.ascontiguousarray(dfa.transitions, dtype=np.int32)
        self.final = np.ascontiguousarray(dfa.final_mask)
        self.start = dfa.start

    # -- lockstep streams ---------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None
                    ) -> StreamResult:
        """Scan equal-length streams in lockstep (one gather per position)."""
        if not streams:
            raise DFAError("at least one stream required")
        length = len(streams[0])
        if any(len(s) != length for s in streams):
            raise DFAError("streams must have equal length")
        n = len(streams)
        if length == 0:
            states = np.full(n, self.start, dtype=np.int32) \
                if start_states is None else start_states.astype(np.int32)
            return StreamResult(np.zeros(n, dtype=np.int64), states)

        data = np.empty((n, length), dtype=np.uint8)
        for i, s in enumerate(streams):
            arr = np.frombuffer(s, dtype=np.uint8)
            if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
                raise DFAError(
                    f"stream {i} contains symbols outside the "
                    f"{self.dfa.alphabet_size}-symbol alphabet; fold first")
            data[i] = arr
        return self._scan(data, start_states)

    def _scan(self, data: np.ndarray,
              start_states: Optional[np.ndarray] = None) -> StreamResult:
        n, length = data.shape
        if start_states is None:
            states = np.full(n, self.start, dtype=np.int32)
        else:
            states = start_states.astype(np.int32).copy()
        counts = np.zeros(n, dtype=np.int64)
        table = self.table
        final = self.final
        # Column-major access: position-t slices must be contiguous.
        cols = np.ascontiguousarray(data.T)
        for t in range(length):
            states = table[states, cols[t]]
            counts += final[states]
        return StreamResult(counts, states)

    # -- exact single-stream scan ------------------------------------------------

    def count_block(self, block: bytes, chunks: int = 64,
                    max_passes: int = 64) -> int:
        """Exact match count over one contiguous stream.

        Splits the stream into ``chunks`` pieces scanned in lockstep; entry
        states are guessed (start state), then corrected iteratively: after
        each pass, any chunk whose actual entry state (the exit state of
        its predecessor) differs from its guess is rescanned.  Guaranteed
        to terminate in at most ``chunks`` passes; security-style DFAs
        almost always converge in two.
        """
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        n = len(block)
        if n == 0:
            return 0
        arr = np.frombuffer(block, dtype=np.uint8)
        if int(arr.max()) >= self.dfa.alphabet_size:
            raise DFAError("block contains symbols outside the alphabet; "
                           "fold first")
        chunks = min(chunks, n)
        bounds = np.linspace(0, n, chunks + 1).astype(np.int64)
        pieces = [arr[bounds[i]:bounds[i + 1]] for i in range(chunks)]

        entry = np.full(chunks, self.start, dtype=np.int32)
        exit_states = np.empty(chunks, dtype=np.int32)
        counts = np.zeros(chunks, dtype=np.int64)
        todo = list(range(chunks))

        for _ in range(max_passes):
            # Rescan the chunks whose entry guess changed.  Unequal chunk
            # lengths: group by length so each group scans in lockstep.
            by_len: dict = {}
            for ci in todo:
                by_len.setdefault(len(pieces[ci]), []).append(ci)
            for length, group in by_len.items():
                if length == 0:
                    for ci in group:
                        exit_states[ci] = entry[ci]
                        counts[ci] = 0
                    continue
                data = np.vstack([pieces[ci] for ci in group])
                res = self._scan(data, entry[np.asarray(group)])
                for j, ci in enumerate(group):
                    counts[ci] = res.counts[j]
                    exit_states[ci] = res.final_states[j]
            # Propagate corrected entry states.
            todo = []
            for ci in range(1, chunks):
                actual = exit_states[ci - 1]
                if actual != entry[ci]:
                    entry[ci] = actual
                    todo.append(ci)
            if not todo:
                break
        else:
            raise DFAError("chunk fixpoint failed to converge; this "
                           "indicates a bug, not an input property")
        return int(counts.sum())

    def count_block_reference(self, block: bytes) -> int:
        """Unchunked scan (for cross-validation in tests)."""
        return self.dfa.count_matches(block)
