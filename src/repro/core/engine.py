"""Vectorized DFA matching engine (numpy).

The paper's SIMD insight — run many independent DFAs in lockstep, one input
byte per lane — maps directly onto numpy: keep a vector of current states,
gather next states with one fancy-indexing step per input position, and
accumulate final-state entries.  This module is the *native-speed* engine of
the library (the :mod:`repro.cell` path is the cycle-accounted simulation);
it is used by the composition layer, the host-parallel layer
(:mod:`repro.parallel`), the baselines comparison and any caller who just
wants fast multi-pattern matching.

The inner loop mirrors the paper's §4 pointer trick on the host:

* the STT is flattened into one ``int32`` array with **two cells per
  symbol** per row, so a state is a *pre-scaled row offset* and a
  transition is a single gather — no per-step ``state × alphabet``
  multiply;
* **bit 0 of every cell is the is-final flag** of the destination state
  (each transition is duplicated at even/odd offsets, so a tagged pointer
  indexes the table correctly *without stripping the flag first*);
* the time loop is **strip-mined**: states for a block of positions are
  written into a strip matrix and the final-flag accumulation happens once
  per strip instead of once per step, amortizing numpy dispatch overhead.

Two scan modes:

* :meth:`VectorDFAEngine.run_streams` — N independent streams in lockstep,
  exactly the tile's 16-lane semantics for arbitrary N;
* :meth:`VectorDFAEngine.count_block` — *exact* counting over one
  contiguous stream, parallelized by splitting it into chunks and running a
  fixpoint: every chunk is scanned speculatively from a guessed entry
  state, then chunks whose guess proved wrong are rescanned from the
  corrected state.  DFAs for security dictionaries converge to the correct
  state within a few symbols, so almost all chunks survive the first pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError

__all__ = [
    "VectorDFAEngine",
    "StreamResult",
    "FlatScanner",
    "ScanDetail",
    "build_flat_table",
    "build_weight_table",
    "count_arr",
    "count_arr_detail",
    "repair_detail",
]

#: Positions per strip of the strip-mined time loop.  Large enough to
#: amortize the per-strip flag reduction, small enough that the strip
#: matrices stay cache-resident for typical lane counts.
STRIP = 128

#: Lane floor for the chunked block scan.  ``chunks`` controls the
#: speculation granularity *requested* by the caller, but it also sets
#: the lockstep lane count, and few lanes means more numpy dispatches
#: per byte.  When the input is large enough, the effective chunk count
#: is raised to ``LANES_TARGET`` (never lowered): exactness is invariant
#: under chunking, so callers asking for coarse speculation still get
#: full-width gathers.  Inputs shorter than ``LANES_TARGET × MIN_PIECE``
#: keep the requested count — tiny pieces would waste the strip loop.
LANES_TARGET = 256
MIN_PIECE = 1024


def build_flat_table(transitions: np.ndarray,
                     final_mask: np.ndarray,
                     fold_table: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, int]:
    """Flag-encoded flat STT (the paper's §4 tagged row pointers).

    Row stride is ``2 × alphabet_size`` cells and every transition is
    stored twice, at offsets ``2·symbol`` and ``2·symbol + 1`` of its row.
    A cell holds ``dest_row_offset | is_final(dest)``: the row offset is a
    multiple of the (even) stride, so bit 0 is free for the flag, and the
    duplication makes ``flat[tagged_ptr + 2·symbol]`` land on the right
    cell whether or not the flag bit is set — the hot loop never masks.

    With ``fold_table`` (a 256-entry byte→symbol map) the fold is
    *composed* into the table: each row is expanded to one column per raw
    byte value, so the scanner gathers on unfolded input directly and the
    per-block ``fold[raw]`` materialization disappears.  The cost is a
    wider row (stride ``512`` instead of ``2 × alphabet``), i.e. 2 KB per
    state — a host-memory trade the Cell's local store could never make.

    Returns ``(flat, stride)`` with ``flat`` a 1-D contiguous ``int32``
    array of ``num_states × stride`` cells.
    """
    table = np.asarray(transitions, dtype=np.int64)
    if fold_table is not None:
        fold = np.asarray(fold_table, dtype=np.int64)
        if fold.shape != (256,):
            raise DFAError("fold table must map all 256 byte values")
        if fold.size and int(fold.max()) >= table.shape[1]:
            raise DFAError("fold table maps outside the DFA alphabet")
        table = table[:, fold]
    num_states, alphabet = table.shape
    stride = 2 * alphabet
    top = (num_states - 1) * stride + 1
    if top > np.iinfo(np.int32).max:
        raise DFAError(
            f"flat STT needs offsets up to {top}, beyond int32; "
            f"{num_states} states × {alphabet} symbols is too large")
    cells = table * stride + np.asarray(final_mask)[table]
    flat = np.empty((num_states, stride), dtype=np.int32)
    flat[:, 0::2] = cells
    flat[:, 1::2] = cells
    return np.ascontiguousarray(flat.reshape(-1)), stride


def build_weight_table(dfa: DFA,
                       symbol_width: Optional[int] = None) -> np.ndarray:
    """Per-state match multiplicities, addressable by ``pointer >> 1``.

    ``weight[s]`` is the number of dictionary entries recognized on
    *entering* state ``s``: ``len(outputs[s])`` when outputs are attached,
    else 1 for final states (the paper's counting kernels) and 0 for the
    rest.  The table is expanded to ``num_states × symbol_width`` so that
    a tagged pointer's high bits (``ptr >> 1 == state × symbol_width``)
    index it directly — the "other frugal output values" the paper packs
    next to the flag, kept in a side table here because multiplicities
    exceed the one spare bit.  ``symbol_width`` defaults to the DFA's
    alphabet; pass 256 when pairing with a fold-composed flat table.
    """
    width = dfa.alphabet_size if symbol_width is None else int(symbol_width)
    weights = np.zeros(dfa.num_states * width + 1, dtype=np.int32)
    for s in range(dfa.num_states):
        if dfa.final_mask[s]:
            weights[s * width] = len(dfa.outputs.get(s, ())) or 1
    return weights


class FlatScanner:
    """Lockstep interpreter over a flag-encoded flat STT.

    Decoupled from :class:`DFA` so it can run over *borrowed* memory — in
    particular over tables living in ``multiprocessing.shared_memory``
    segments attached by :mod:`repro.parallel` workers.
    """

    def __init__(self, flat: np.ndarray, alphabet_size: int, start: int,
                 num_states: int) -> None:
        self.flat = flat
        self.alphabet_size = int(alphabet_size)
        self.start = int(start)
        self.num_states = int(num_states)
        self.stride = 2 * self.alphabet_size

    @classmethod
    def from_dfa(cls, dfa: DFA) -> "FlatScanner":
        flat, _ = build_flat_table(dfa.transitions, dfa.final_mask)
        return cls(flat, dfa.alphabet_size, dfa.start, dfa.num_states)

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        """Untagged row pointer of ``state``."""
        return int(state) * self.stride

    def state_of(self, ptrs):
        """Tagged pointer(s) → state id(s); works on scalars and arrays."""
        return (ptrs >> 1) // self.alphabet_size

    # -- hot loop ----------------------------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Lockstep scan of a position-major symbol matrix.

        ``cols`` has shape ``(length, lanes)`` (row ``t`` holds every
        lane's symbol at position ``t``), ``ptrs`` the tagged entry
        pointers, ``counts`` an ``int64`` per-lane accumulator updated in
        place.  With ``weights`` the accumulation is the per-state match
        multiplicity instead of the flag bit.  Returns the tagged exit
        pointers.
        """
        length, lanes = cols.shape
        if length == 0:
            return ptrs.astype(np.int32).copy()
        take = self.flat.take
        add = np.add
        strip_len = min(STRIP, length)
        strip = np.empty((strip_len, lanes), dtype=np.int32)
        doubled = np.empty((strip_len, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, lanes), dtype=np.int32)
        idx = np.empty(lanes, dtype=np.int32)
        # Row views made once, not per step: the inner loop is dispatch-
        # bound, so even view creation shows up.
        strip_rows = list(strip)
        doubled_rows = list(doubled)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            # Cast first, shift second: a fused uint8 multiply would wrap
            # at 256 before the widening to int32.
            doubled[:b] = cols[t0:t0 + b]
            np.left_shift(doubled[:b], 1, out=doubled[:b])
            for i in range(b):
                row = strip_rows[i]
                add(cur, doubled_rows[i], out=idx)
                take(idx, out=row)
                cur = row
            if weights is None:
                np.bitwise_and(strip[:b], 1, out=scratch[:b])
            else:
                np.right_shift(strip[:b], 1, out=scratch[:b])
                weights.take(scratch[:b], out=scratch[:b])
            counts += scratch[:b].sum(axis=0)
        return cur.copy()

    def step_scalar(self, ptr: int, symbol: int) -> int:
        """One scalar transition on tagged pointers (remainder handling)."""
        return int(self.flat[ptr + (int(symbol) << 1)])


def _chunked_scan(scanner: FlatScanner, arr: np.ndarray, chunks: int,
                  entry_state: int, max_passes: Optional[int] = None,
                  weights: Optional[np.ndarray] = None):
    """Shared core of :func:`count_arr` / :func:`count_arr_detail`.

    Requires ``arr.size > 0``.  Returns ``(remainder, head_count,
    head_exit_ptr, piece_counts, piece_exit_ptrs)`` where the scalar head
    covers ``arr[:remainder]`` and the pieces tile the rest equally.
    """
    if chunks < 1:
        # Guard here, not only in the public wrappers: a zero floor used
        # to fall through to ``n // 0`` on inputs shorter than MIN_PIECE.
        raise DFAError("chunks must be >= 1")
    n = int(arr.size)
    chunks = min(n, max(int(chunks), min(LANES_TARGET, n // MIN_PIECE)))
    piece_len = n // chunks
    remainder = n - piece_len * chunks

    head_count = 0
    ptr = scanner.pointer(entry_state)
    for sym in arr[:remainder]:
        ptr = scanner.step_scalar(ptr, sym)
        if weights is None:
            head_count += ptr & 1
        else:
            head_count += int(weights[ptr >> 1])

    # One position-major matrix, built once, indexed per pass.
    cols = np.ascontiguousarray(
        arr[remainder:].reshape(chunks, piece_len).T)

    entry = np.full(chunks, scanner.pointer(scanner.start), dtype=np.int32)
    entry[0] = ptr                       # chunk 0's entry is exact
    exits = np.empty(chunks, dtype=np.int32)
    counts = np.zeros(chunks, dtype=np.int64)
    todo = np.arange(chunks)
    passes = max_passes if max_passes is not None else chunks + 1

    for _ in range(passes):
        sub = cols if todo.size == chunks else cols[:, todo]
        part = np.zeros(todo.size, dtype=np.int64)
        fin = scanner.scan_cols(sub, entry[todo], part, weights=weights)
        counts[todo] = part
        exits[todo] = fin
        # Propagate corrected entries (compare modulo the flag bit: two
        # pointers to the same row scan identically).
        wrong = np.nonzero((exits[:-1] >> 1) != (entry[1:] >> 1))[0] + 1
        if wrong.size == 0:
            break
        entry[wrong] = exits[wrong - 1]
        todo = wrong
    else:
        raise DFAError("chunk fixpoint failed to converge; this "
                       "indicates a bug, not an input property")
    return remainder, head_count, ptr, counts, exits


def count_arr(scanner: FlatScanner, arr: np.ndarray, chunks: int,
              entry_state: int, max_passes: Optional[int] = None,
              weights: Optional[np.ndarray] = None) -> Tuple[int, int]:
    """Exact speculative count over one folded symbol array.

    The array is cut into *equal* pieces (a scalar head scan absorbs the
    division remainder, so the lockstep matrix needs no padding and
    rebuilds never happen); pieces are scanned in lockstep from guessed
    entry states and the guesses are repaired to a fixpoint.  Only the
    mis-guessed columns are re-scanned on later passes — they are
    *indexed out* of the one position-major matrix built up front.

    ``chunks`` is a floor, not an exact count: large inputs are widened
    to ``LANES_TARGET`` lanes (see the constant above) because lane width
    sets the gather width and thus the dispatch overhead per byte, while
    the count is semantically only a speculation granularity.

    Returns ``(count, exit_state)``.
    """
    if arr.size == 0:
        return 0, int(entry_state)
    _, head, _, counts, exits = _chunked_scan(
        scanner, arr, chunks, entry_state, max_passes, weights)
    return head + int(counts.sum()), int(scanner.state_of(exits[-1]))


@dataclass
class ScanDetail:
    """A chunked scan's per-segment ledger, for cheap entry repair.

    Segment 0 is the scalar head (possibly empty), segments 1.. are the
    equal lockstep pieces.  ``seg_exits[k]`` is the DFA *state* at
    ``seg_bounds[k + 1]`` given ``entry_state`` at position 0.  Whoever
    later learns the true entry state can call :func:`repair_detail`
    instead of rescanning the whole array: rescan leading segments until
    the state trajectory rejoins the recorded one, then splice.
    """

    entry_state: int
    seg_bounds: np.ndarray    # int64, len = segments + 1, [0 .. arr.size]
    seg_counts: np.ndarray    # int64 per segment
    seg_exits: np.ndarray     # int32 exit state per segment

    @property
    def total(self) -> int:
        return int(self.seg_counts.sum())

    @property
    def exit_state(self) -> int:
        if self.seg_exits.size == 0:
            return int(self.entry_state)
        return int(self.seg_exits[-1])


def count_arr_detail(scanner: FlatScanner, arr: np.ndarray, chunks: int,
                     entry_state: int,
                     weights: Optional[np.ndarray] = None) -> ScanDetail:
    """:func:`count_arr`, but returning the per-segment ledger."""
    if arr.size == 0:
        return ScanDetail(int(entry_state),
                          np.zeros(1, dtype=np.int64),
                          np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int32))
    remainder, head, head_ptr, counts, exits = _chunked_scan(
        scanner, arr, chunks, entry_state, None, weights)
    pieces = counts.size
    piece_len = (int(arr.size) - remainder) // pieces
    bounds = np.empty(pieces + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:] = remainder + piece_len * np.arange(pieces + 1,
                                                   dtype=np.int64)
    seg_counts = np.concatenate(([head], counts)).astype(np.int64)
    seg_exits = np.concatenate(
        ([int(scanner.state_of(head_ptr))],
         np.asarray(scanner.state_of(exits)))).astype(np.int32)
    return ScanDetail(int(entry_state), bounds, seg_counts, seg_exits)


def repair_detail(scanner: FlatScanner, arr: np.ndarray, detail: ScanDetail,
                  entry_state: int, chunks: int = 64,
                  weights: Optional[np.ndarray] = None) -> Tuple[int, int]:
    """Exact ``(count, exit_state)`` of ``arr`` from ``entry_state``,
    reusing a previous scan's :class:`ScanDetail`.

    If the entry matches the recorded one, the recorded totals stand.
    Otherwise leading segments are rescanned from the corrected state
    until the trajectory hits a recorded segment-boundary state — from
    there on determinism makes the recorded counts exact — so a wrong
    speculative entry typically costs one segment, not the whole array
    (Ko et al.'s speculative-repair argument applied at the ledger's
    granularity).  Degenerates to a full rescan only when the trajectory
    never rejoins.
    """
    if int(entry_state) == detail.entry_state:
        return detail.total, detail.exit_state
    state = int(entry_state)
    total = 0
    for k in range(detail.seg_counts.size):
        lo = int(detail.seg_bounds[k])
        hi = int(detail.seg_bounds[k + 1])
        cnt, state = count_arr(scanner, arr[lo:hi], chunks, state,
                               weights=weights)
        total += cnt
        if state == int(detail.seg_exits[k]):
            return (total + int(detail.seg_counts[k + 1:].sum()),
                    detail.exit_state)
    return total, state


@dataclass
class StreamResult:
    """Outcome of a lockstep multi-stream scan."""

    counts: np.ndarray         # matches per stream
    final_states: np.ndarray   # DFA state per stream after the scan

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class VectorDFAEngine:
    """Lockstep vectorized interpreter for a dense DFA."""

    def __init__(self, dfa: DFA) -> None:
        self.dfa = dfa
        # Contiguous copies kept for introspection and the Cell encoders;
        # the hot loop runs on the flag-encoded flat table below.
        self.table = np.ascontiguousarray(dfa.transitions, dtype=np.int32)
        self.final = np.ascontiguousarray(dfa.final_mask)
        self.start = dfa.start
        self.scanner = FlatScanner.from_dfa(dfa)

    # -- lockstep streams ---------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None) -> StreamResult:
        """Scan equal-length streams in lockstep (one gather per position).

        With ``weights`` (see :func:`build_weight_table`) counts are
        per-dictionary-entry multiplicities; without, +1 per final-state
        entry (the paper's kernel semantics).
        """
        if not len(streams):
            raise DFAError("at least one stream required")
        length = len(streams[0])
        if any(len(s) != length for s in streams):
            raise DFAError("streams must have equal length")
        n = len(streams)
        if length == 0:
            states = np.full(n, self.start, dtype=np.int32) \
                if start_states is None else start_states.astype(np.int32)
            return StreamResult(np.zeros(n, dtype=np.int64), states)

        # Fill the position-major matrix directly — no row-major staging
        # copy followed by a transposed second copy.
        cols = np.empty((length, n), dtype=np.uint8)
        for i, s in enumerate(streams):
            arr = np.frombuffer(s, dtype=np.uint8)
            if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
                raise DFAError(
                    f"stream {i} contains symbols outside the "
                    f"{self.dfa.alphabet_size}-symbol alphabet; fold first")
            cols[:, i] = arr
        return self._scan_cols(cols, start_states, weights)

    def _scan_cols(self, cols: np.ndarray,
                   start_states: Optional[np.ndarray] = None,
                   weights: Optional[np.ndarray] = None) -> StreamResult:
        length, n = cols.shape
        scanner = self.scanner
        if start_states is None:
            ptrs = np.full(n, scanner.pointer(self.start), dtype=np.int32)
        else:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.dfa.num_states):
                raise DFAError("start state out of range")
            ptrs = (states * scanner.stride).astype(np.int32)
        counts = np.zeros(n, dtype=np.int64)
        fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
        return StreamResult(counts,
                            scanner.state_of(fin).astype(np.int32))

    # -- exact single-stream scan ------------------------------------------------

    def _folded_view(self, block: bytes) -> np.ndarray:
        arr = np.frombuffer(block, dtype=np.uint8)
        if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
            raise DFAError("block contains symbols outside the alphabet; "
                           "fold first")
        return arr

    def count_block(self, block: bytes, chunks: int = 256,
                    max_passes: Optional[int] = None) -> int:
        """Exact match count over one contiguous stream.

        Splits the stream into ``chunks`` pieces scanned in lockstep; entry
        states are guessed (start state), then corrected iteratively: after
        each pass, any chunk whose actual entry state (the exit state of
        its predecessor) differs from its guess is rescanned.  Guaranteed
        to terminate in at most ``chunks`` passes (``max_passes`` defaults
        to that bound); security-style DFAs almost always converge in two.
        More chunks means wider gathers and fewer numpy dispatches per
        byte, which is why the default is generous.
        """
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        arr = self._folded_view(block)
        if arr.size == 0:
            return 0
        count, _ = count_arr(self.scanner, arr, chunks, self.start,
                             max_passes=max_passes)
        return count

    def count_block_from(self, block: bytes, entry_state: int,
                         chunks: int = 256,
                         max_passes: Optional[int] = None
                         ) -> Tuple[int, int]:
        """Like :meth:`count_block` but from an arbitrary entry state,
        also returning the exit state — the primitive the host-parallel
        shard repair (:mod:`repro.parallel`) is built on."""
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        if not 0 <= entry_state < self.dfa.num_states:
            raise DFAError(f"entry state {entry_state} out of range")
        arr = self._folded_view(block)
        return count_arr(self.scanner, arr, chunks, entry_state,
                         max_passes=max_passes)

    def count_block_reference(self, block: bytes) -> int:
        """Unchunked scan (for cross-validation in tests)."""
        return self.dfa.count_matches(block)
