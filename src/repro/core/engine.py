"""Vectorized DFA matching engine (numpy).

The paper's SIMD insight — run many independent DFAs in lockstep, one input
byte per lane — maps directly onto numpy: keep a vector of current states,
gather next states with one fancy-indexing step per input position, and
accumulate final-state entries.  This module is the *native-speed* engine of
the library (the :mod:`repro.cell` path is the cycle-accounted simulation);
it is used by the composition layer, the host-parallel layer
(:mod:`repro.parallel`), the baselines comparison and any caller who just
wants fast multi-pattern matching.

The inner loop mirrors the paper's §4 pointer trick on the host:

* the STT is flattened into one ``int32`` array with **two cells per
  symbol** per row, so a state is a *pre-scaled row offset* and a
  transition is a single gather — no per-step ``state × alphabet``
  multiply;
* **bit 0 of every cell is the is-final flag** of the destination state
  (each transition is duplicated at even/odd offsets, so a tagged pointer
  indexes the table correctly *without stripping the flag first*);
* the time loop is **strip-mined**: states for a block of positions are
  written into a strip matrix and the final-flag accumulation happens once
  per strip instead of once per step, amortizing numpy dispatch overhead.

Two scan modes:

* :meth:`VectorDFAEngine.run_streams` — N independent streams in lockstep,
  exactly the tile's 16-lane semantics for arbitrary N;
* :meth:`VectorDFAEngine.count_block` — *exact* counting over one
  contiguous stream, parallelized by splitting it into chunks and running a
  fixpoint: every chunk is scanned speculatively from a guessed entry
  state, then chunks whose guess proved wrong are rescanned from the
  corrected state.  DFAs for security dictionaries converge to the correct
  state within a few symbols, so almost all chunks survive the first pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError
from .compressed import ColdRowStore

__all__ = [
    "VectorDFAEngine",
    "StreamResult",
    "FlatScanner",
    "FusedTable",
    "FusedScanner",
    "HotColdFusedTable",
    "HotColdFusedScanner",
    "HotCold2Table",
    "HotCold2Scanner",
    "ScanDetail",
    "build_flat_table",
    "build_weight_table",
    "build_hot_cold_table",
    "build_hot_cold2_table",
    "pair_symbol_table",
    "fuse_tables",
    "visit_order",
    "project_states",
    "count_arr",
    "count_arr_detail",
    "repair_detail",
    "hotcold_lanes_target",
    "hotcold_strip_elems",
]

#: Positions per strip of the strip-mined time loop.  Large enough to
#: amortize the per-strip flag reduction, small enough that the strip
#: matrices stay cache-resident for typical lane counts.
STRIP = 128

#: Lane floor for the chunked block scan.  ``chunks`` controls the
#: speculation granularity *requested* by the caller, but it also sets
#: the lockstep lane count, and few lanes means more numpy dispatches
#: per byte.  When the input is large enough, the effective chunk count
#: is raised to ``LANES_TARGET`` (never lowered): exactness is invariant
#: under chunking, so callers asking for coarse speculation still get
#: full-width gathers.  Inputs shorter than ``LANES_TARGET × MIN_PIECE``
#: keep the requested count — tiny pieces would waste the strip loop.
LANES_TARGET = 256
MIN_PIECE = 1024

#: Total lane budget of the fused D × chunks grid.  The DFA axis
#: multiplies into the gather width, so the fused chunk widening
#: targets ``FUSED_LANES_TARGET // num_dfas`` lanes per DFA — the
#: *grid* stays at full width however the dictionary was partitioned,
#: and per-step dispatch overhead is amortized over ~32× more lanes
#: than the single-DFA scan needs.  Exactness is invariant under
#: chunking, so this is pure tuning, not semantics.
FUSED_LANES_TARGET = 8192

#: int32 elements per fused strip matrix (~256 KB).  The strip and its
#: scratch double with the DFA axis, so the strip *length* shrinks as
#: ``D × lanes`` grows to keep both matrices cache-resident — at
#: D=1 × 256 lanes this reproduces ``STRIP``.
FUSED_STRIP_ELEMS = 64 * 1024

#: Warm-start window of the chunk-entry speculation.  Before the first
#: lockstep pass, every chunk's entry guess is refined by scanning the
#: *tail* of its predecessor (one extra lockstep scan over
#: ``SPECULATION_WARMUP`` positions): security DFAs synchronize within a
#: pattern length, so the tail exit almost always *is* the true entry
#: and the fixpoint converges on the first full pass instead of
#: rescanning the mis-guessed majority.  Exactness is untouched — the
#: warm guesses are still verified and repaired by the fixpoint.  The
#: warm-up is skipped for pieces shorter than ``8 ×`` the window, where
#: its relative cost stops being negligible.
SPECULATION_WARMUP = 32

#: Default byte budget for the hot partition of a
#: :class:`HotColdFusedTable` — sized for comfortable L2 residency
#: (the host analogue of the paper's 256 KB local store ceiling;
#: §4 sizes dictionaries so the *whole* STT fits local store, the
#: hot/cold split only demands it of the frequently-visited part).
HOT_BUDGET_BYTES = 512 * 1024

#: Lane budget of the hot/cold union scan.  Unlike the fused grid there
#: is no DFA axis multiplying into the gather width — one union table
#: serves every slice — so the optimum sits far below
#: ``FUSED_LANES_TARGET``: past ~2 K lanes the strip matrices outgrow
#: L2 and throughput collapses rather than climbs (measured knee on an
#: 8 MB corpus: 2048 lanes ≈ 114 MB/s vs 62 MB/s at 8192).
HOTCOLD_LANES_TARGET = 2048

#: int32 elements per hot/cold strip matrix (~1 MB).  The hot table is
#: budgeted to stay cache-resident no matter the dictionary, which
#: frees cache headroom for longer strips than the fused scan can
#: afford — and longer strips amortize the per-strip escape scan and
#: fold gather.  Measured: 256 K elems beats the fused 64 K setting by
#: ~25% at the lane target above.
HOTCOLD_STRIP_ELEMS = 256 * 1024


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def hotcold_lanes_target() -> int:
    """Effective hot/cold lane budget: :data:`HOTCOLD_LANES_TARGET`,
    overridable per process via ``REPRO_HOTCOLD_LANES`` (mirroring
    ``REPRO_HOT_BUDGET_KB``).  Read per call so tests and deployments
    can retune without reimporting."""
    return _env_int("REPRO_HOTCOLD_LANES", HOTCOLD_LANES_TARGET)


def hotcold_strip_elems() -> int:
    """Effective hot/cold strip size in int32 elements:
    :data:`HOTCOLD_STRIP_ELEMS`, overridable via
    ``REPRO_HOTCOLD_STRIP_ELEMS``."""
    return _env_int("REPRO_HOTCOLD_STRIP_ELEMS", HOTCOLD_STRIP_ELEMS)


def build_flat_table(transitions: np.ndarray,
                     final_mask: np.ndarray,
                     fold_table: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, int]:
    """Flag-encoded flat STT (the paper's §4 tagged row pointers).

    Row stride is ``2 × alphabet_size`` cells and every transition is
    stored twice, at offsets ``2·symbol`` and ``2·symbol + 1`` of its row.
    A cell holds ``dest_row_offset | is_final(dest)``: the row offset is a
    multiple of the (even) stride, so bit 0 is free for the flag, and the
    duplication makes ``flat[tagged_ptr + 2·symbol]`` land on the right
    cell whether or not the flag bit is set — the hot loop never masks.

    With ``fold_table`` (a 256-entry byte→symbol map) the fold is
    *composed* into the table: each row is expanded to one column per raw
    byte value, so the scanner gathers on unfolded input directly and the
    per-block ``fold[raw]`` materialization disappears.  The cost is a
    wider row (stride ``512`` instead of ``2 × alphabet``), i.e. 2 KB per
    state — a host-memory trade the Cell's local store could never make.

    Returns ``(flat, stride)`` with ``flat`` a 1-D contiguous ``int32``
    array of ``num_states × stride`` cells.
    """
    table = np.asarray(transitions, dtype=np.int64)
    if fold_table is not None:
        fold = np.asarray(fold_table, dtype=np.int64)
        if fold.shape != (256,):
            raise DFAError("fold table must map all 256 byte values")
        if fold.size and int(fold.max()) >= table.shape[1]:
            raise DFAError("fold table maps outside the DFA alphabet")
        table = table[:, fold]
    num_states, alphabet = table.shape
    stride = 2 * alphabet
    top = (num_states - 1) * stride + 1
    if top > np.iinfo(np.int32).max:
        raise DFAError(
            f"flat STT needs offsets up to {top}, beyond int32; "
            f"{num_states} states × {alphabet} symbols is too large")
    cells = table * stride + np.asarray(final_mask)[table]
    flat = np.empty((num_states, stride), dtype=np.int32)
    flat[:, 0::2] = cells
    flat[:, 1::2] = cells
    return np.ascontiguousarray(flat.reshape(-1)), stride


def build_weight_table(dfa: DFA,
                       symbol_width: Optional[int] = None) -> np.ndarray:
    """Per-state match multiplicities, addressable by ``pointer >> 1``.

    ``weight[s]`` is the number of dictionary entries recognized on
    *entering* state ``s``: ``len(outputs[s])`` when outputs are attached,
    else 1 for final states (the paper's counting kernels) and 0 for the
    rest.  The table is expanded to ``num_states × symbol_width`` so that
    a tagged pointer's high bits (``ptr >> 1 == state × symbol_width``)
    index it directly — the "other frugal output values" the paper packs
    next to the flag, kept in a side table here because multiplicities
    exceed the one spare bit.  ``symbol_width`` defaults to the DFA's
    alphabet; pass 256 when pairing with a fold-composed flat table.
    """
    width = dfa.alphabet_size if symbol_width is None else int(symbol_width)
    weights = np.zeros(dfa.num_states * width + 1, dtype=np.int32)
    for s in range(dfa.num_states):
        if dfa.final_mask[s]:
            weights[s * width] = len(dfa.outputs.get(s, ())) or 1
    return weights


class FlatScanner:
    """Lockstep interpreter over a flag-encoded flat STT.

    Decoupled from :class:`DFA` so it can run over *borrowed* memory — in
    particular over tables living in ``multiprocessing.shared_memory``
    segments attached by :mod:`repro.parallel` workers.
    """

    def __init__(self, flat: np.ndarray, alphabet_size: int, start: int,
                 num_states: int) -> None:
        self.flat = flat
        self.alphabet_size = int(alphabet_size)
        self.start = int(start)
        self.num_states = int(num_states)
        self.stride = 2 * self.alphabet_size

    @classmethod
    def from_dfa(cls, dfa: DFA) -> "FlatScanner":
        flat, _ = build_flat_table(dfa.transitions, dfa.final_mask)
        return cls(flat, dfa.alphabet_size, dfa.start, dfa.num_states)

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        """Untagged row pointer of ``state``."""
        return int(state) * self.stride

    def state_of(self, ptrs):
        """Tagged pointer(s) → state id(s); works on scalars and arrays."""
        return (ptrs >> 1) // self.alphabet_size

    # -- hot loop ----------------------------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Lockstep scan of a position-major symbol matrix.

        ``cols`` has shape ``(length, lanes)`` (row ``t`` holds every
        lane's symbol at position ``t``), ``ptrs`` the tagged entry
        pointers, ``counts`` an ``int64`` per-lane accumulator updated in
        place.  With ``weights`` the accumulation is the per-state match
        multiplicity instead of the flag bit.  Returns the tagged exit
        pointers.
        """
        length, lanes = cols.shape
        if length == 0:
            return ptrs.astype(np.int32).copy()
        take = self.flat.take
        add = np.add
        strip_len = min(STRIP, length)
        strip = np.empty((strip_len, lanes), dtype=np.int32)
        doubled = np.empty((strip_len, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, lanes), dtype=np.int32)
        idx = np.empty(lanes, dtype=np.int32)
        # Row views made once, not per step: the inner loop is dispatch-
        # bound, so even view creation shows up.
        strip_rows = list(strip)
        doubled_rows = list(doubled)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            # Cast first, shift second: a fused uint8 multiply would wrap
            # at 256 before the widening to int32.
            doubled[:b] = cols[t0:t0 + b]
            np.left_shift(doubled[:b], 1, out=doubled[:b])
            for i in range(b):
                row = strip_rows[i]
                add(cur, doubled_rows[i], out=idx)
                take(idx, out=row)
                cur = row
            if weights is None:
                np.bitwise_and(strip[:b], 1, out=scratch[:b])
            else:
                np.right_shift(strip[:b], 1, out=scratch[:b])
                weights.take(scratch[:b], out=scratch[:b])
            counts += scratch[:b].sum(axis=0)
        return cur.copy()

    def step_scalar(self, ptr: int, symbol: int) -> int:
        """One scalar transition on tagged pointers (remainder handling)."""
        return int(self.flat[ptr + (int(symbol) << 1)])


@dataclass
class FusedTable:
    """D flag-encoded flat tables stacked into one contiguous array.

    The paper's §6 "tiles in series" runs D distinct STTs over the same
    input on D SPEs.  On the host the SIMD lane dimension can absorb the
    DFA dimension instead: every DFA's rows live in one ``int32`` array
    and each DFA's cells are *rebased* by that DFA's cell offset, so a
    tagged pointer is absolute in the stacked space and one gather per
    input position advances lanes of *different* DFAs at once.  Bases
    are even multiples of the (even) row stride, so bit 0 stays the
    final flag and the §4 no-masking trick survives fusion untouched.

    ``weights`` is the matching stacked multiplicity table: because a
    stacked pointer's high bits are ``cell_base/2 + state × width``, the
    per-DFA weight tables concatenate in the same order and absolute
    ``ptr >> 1`` indexing keeps working.
    """

    flat: np.ndarray          # int32, all tables, cells rebased
    weights: np.ndarray       # int32, stacked multiplicities (+1 slack)
    cell_base: np.ndarray     # int64 per DFA, first cell of its table
    starts: np.ndarray        # int64 per DFA, local start state
    num_states: np.ndarray    # int64 per DFA
    symbol_width: int         # columns per row (256 when fold-composed)

    @property
    def num_dfas(self) -> int:
        return len(self.cell_base)

    @property
    def stride(self) -> int:
        return 2 * self.symbol_width


def fuse_tables(tables: Sequence[Tuple[np.ndarray, np.ndarray]],
                starts: Sequence[int],
                num_states: Sequence[int],
                symbol_width: int) -> FusedTable:
    """Stack per-DFA ``(flat, weights)`` pairs into one :class:`FusedTable`.

    Each flat table's cells are shifted by the table's base offset in
    the stacked array (bases are even, so the flag bit is preserved);
    weight tables are concatenated minus their one-cell slack, with a
    single shared slack cell at the very end.
    """
    if not tables:
        raise DFAError("at least one table required")
    if not (len(tables) == len(starts) == len(num_states)):
        raise DFAError("tables/starts/num_states must align")
    stride = 2 * int(symbol_width)
    sizes = []
    for d, (flat, _) in enumerate(tables):
        if flat.size != int(num_states[d]) * stride:
            raise DFAError(
                f"table {d} has {flat.size} cells, expected "
                f"{int(num_states[d]) * stride} for {num_states[d]} "
                f"states × {symbol_width} symbols")
        sizes.append(int(flat.size))
    cell_base = np.zeros(len(tables), dtype=np.int64)
    cell_base[1:] = np.cumsum(sizes[:-1])
    total = int(cell_base[-1]) + sizes[-1]
    if total > np.iinfo(np.int32).max:
        raise DFAError(
            f"fused STT needs {total} cells, beyond int32; partition "
            f"the dictionary into fewer/smaller slices or scan per-DFA")
    if len(tables) == 1:
        flat0, weights0 = tables[0]
        fused_flat = np.ascontiguousarray(flat0, dtype=np.int32)
        fused_weights = np.ascontiguousarray(weights0, dtype=np.int32)
    else:
        fused_flat = np.empty(total, dtype=np.int32)
        for d, (flat, _) in enumerate(tables):
            lo = int(cell_base[d])
            np.add(flat, np.int32(lo), out=fused_flat[lo:lo + flat.size])
        fused_weights = np.concatenate(
            [np.asarray(w[:-1], dtype=np.int32) for _, w in tables]
            + [np.zeros(1, dtype=np.int32)])
    return FusedTable(
        flat=fused_flat, weights=fused_weights, cell_base=cell_base,
        starts=np.asarray(starts, dtype=np.int64),
        num_states=np.asarray(num_states, dtype=np.int64),
        symbol_width=int(symbol_width))


class _FusedSliceScanner(FlatScanner):
    """One DFA's view of a stacked table: the inherited hot loop runs on
    absolute pointers, only the state↔pointer conversions are rebased.
    This is what lets :func:`count_arr` / :func:`repair_detail` run
    per-DFA over the fused table with zero new scan code."""

    def __init__(self, flat: np.ndarray, symbol_width: int, start: int,
                 num_states: int, cell_base: int) -> None:
        super().__init__(flat, symbol_width, start, num_states)
        self.cell_base = int(cell_base)

    def pointer(self, state: int) -> int:
        return self.cell_base + int(state) * self.stride

    def state_of(self, ptrs):
        return ((ptrs - self.cell_base) >> 1) // self.alphabet_size


def _ragged_segments(sorted_lens: Sequence[int]):
    """Yield ``(lo, hi, active)`` scan segments for lanes sorted by
    length descending: rows ``lo:hi`` are scanned with the first
    ``active`` lanes (exactly those longer than ``lo``)."""
    active = len(sorted_lens)
    pos = 0
    while True:
        while active > 0 and int(sorted_lens[active - 1]) <= pos:
            active -= 1
        if active == 0:
            return
        nxt = int(sorted_lens[active - 1])
        yield pos, nxt, active
        pos = nxt


class FusedScanner:
    """Lockstep interpreter over a stacked multi-DFA table.

    Lanes form a ``D × L`` grid: axis 0 is the DFA dimension, axis 1
    the chunk/stream dimension.  One strip-mined gather per input
    position advances the whole grid, and the input symbols are read
    *once* and broadcast across the DFA axis — O(n) input traffic no
    matter how many DFAs the dictionary was partitioned into.
    """

    def __init__(self, table: FusedTable) -> None:
        self.table = table
        self.flat = table.flat
        self.weights = table.weights
        self.symbol_width = table.symbol_width
        self.stride = table.stride
        self.cell_base = np.asarray(table.cell_base, dtype=np.int64)
        self.starts = np.asarray(table.starts, dtype=np.int64)
        self.num_states = np.asarray(table.num_states, dtype=np.int64)
        #: Absolute tagged start pointer per DFA.
        self.start_ptrs = (self.cell_base
                           + self.starts * self.stride).astype(np.int32)

    @property
    def num_dfas(self) -> int:
        return len(self.cell_base)

    # -- views & conversions -----------------------------------------------------

    def slice_view(self, d: int) -> FlatScanner:
        """A per-DFA :class:`FlatScanner` over the stacked table (for
        scalar remainders, ledger repair and anything else that wants
        one DFA at a time)."""
        return _FusedSliceScanner(
            self.flat, self.symbol_width, int(self.starts[d]),
            int(self.num_states[d]), int(self.cell_base[d]))

    def entry_ptrs(self, states: Optional[Sequence[int]]) -> np.ndarray:
        """Per-DFA local entry states → absolute tagged pointers."""
        if states is None:
            return self.start_ptrs.copy()
        states = np.asarray(states, dtype=np.int64)
        if states.shape != (self.num_dfas,):
            raise DFAError(
                f"need one entry state per DFA ({self.num_dfas}), got "
                f"shape {states.shape}")
        if states.size and (states.min() < 0
                            or (states >= self.num_states).any()):
            raise DFAError("entry state out of range")
        return (self.cell_base + states * self.stride).astype(np.int32)

    def states_of(self, ptrs: np.ndarray) -> np.ndarray:
        """Absolute tagged pointers (first axis = DFA) → local states."""
        base = self.cell_base.reshape(
            (self.num_dfas,) + (1,) * (ptrs.ndim - 1))
        return ((ptrs - base) >> 1) // self.symbol_width

    # -- the fused hot loop --------------------------------------------------------

    def scan_grid(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Lockstep scan of a ``D × lanes`` pointer grid.

        ``cols`` has shape ``(length, lanes)`` and is shared by every
        DFA: each position's symbol row is doubled once and *broadcast*
        across the DFA axis, so the input is touched once regardless of
        ``D``.  ``ptrs`` has shape ``(D, lanes)``; ``counts`` is an
        ``int64`` ``(D, lanes)`` accumulator updated in place.  Returns
        the tagged exit pointers, shape ``(D, lanes)``.
        """
        length, lanes = cols.shape
        ndfa = ptrs.shape[0]
        if length == 0:
            return ptrs.astype(np.int32).copy()
        take = self.flat.take
        add = np.add
        strip_len = min(STRIP, length,
                        max(8, FUSED_STRIP_ELEMS // max(1, ndfa * lanes)))
        strip = np.empty((strip_len, ndfa, lanes), dtype=np.int32)
        doubled = np.empty((strip_len, 1, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, ndfa, lanes), dtype=np.int32)
        idx = np.empty((ndfa, lanes), dtype=np.int32)
        strip_rows = list(strip)
        doubled_rows = list(doubled)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            doubled[:b, 0, :] = cols[t0:t0 + b]
            np.left_shift(doubled[:b], 1, out=doubled[:b])
            for i in range(b):
                row = strip_rows[i]
                add(cur, doubled_rows[i], out=idx)
                take(idx, out=row)
                cur = row
            if weights is None:
                np.bitwise_and(strip[:b], 1, out=scratch[:b])
            else:
                np.right_shift(strip[:b], 1, out=scratch[:b])
                weights.take(scratch[:b], out=scratch[:b])
            counts += scratch[:b].sum(axis=0)
        return cur.copy()

    # -- fused block scanning ------------------------------------------------------

    def _fused_chunked_scan(self, arr: np.ndarray, chunks: int,
                            entry_states: Optional[Sequence[int]],
                            weights: Optional[np.ndarray]):
        """Shared core of the fused block scans.  Requires
        ``arr.size > 0``.  Returns ``(remainder, head_counts, head_ptrs,
        piece_counts, piece_exit_ptrs)`` — the multi-DFA analogue of
        :func:`_chunked_scan`, same speculation/repair semantics applied
        per DFA, one pass over the input for all of them."""
        if chunks < 1:
            raise DFAError("chunks must be >= 1")
        n = int(arr.size)
        ndfa = self.num_dfas
        lane_target = max(LANES_TARGET,
                          FUSED_LANES_TARGET // max(1, ndfa))
        chunks = min(n, max(int(chunks),
                            min(lane_target, n // MIN_PIECE)))
        piece_len = n // chunks
        remainder = n - piece_len * chunks

        entry_abs = self.entry_ptrs(entry_states)
        head_counts = np.zeros(ndfa, dtype=np.int64)
        head_ptrs = entry_abs.astype(np.int32)
        if remainder:
            # Scalar per-DFA walk: the remainder is bounded by the chunk
            # count, and D short Python loops beat per-byte numpy
            # dispatch on a D-vector.
            head_syms = arr[:remainder].tolist()
            flat = self.flat
            for d in range(ndfa):
                ptr = int(entry_abs[d])
                cnt = 0
                if weights is None:
                    for sym in head_syms:
                        ptr = int(flat[ptr + (sym << 1)])
                        cnt += ptr & 1
                else:
                    for sym in head_syms:
                        ptr = int(flat[ptr + (sym << 1)])
                        cnt += int(weights[ptr >> 1])
                head_counts[d] = cnt
                head_ptrs[d] = ptr

        cols = np.ascontiguousarray(
            arr[remainder:].reshape(chunks, piece_len).T)

        entry = np.empty((ndfa, chunks), dtype=np.int32)
        entry[:] = self.start_ptrs[:, None]
        entry[:, 0] = head_ptrs          # chunk 0's entries are exact
        if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
            # Warm-start the entry guesses from each predecessor's tail
            # (see SPECULATION_WARMUP); counts are discarded.
            sink = np.zeros((ndfa, chunks - 1), dtype=np.int64)
            entry[:, 1:] = self.scan_grid(
                np.ascontiguousarray(
                    cols[piece_len - SPECULATION_WARMUP:, :-1]),
                entry[:, 1:], sink)
        exits = np.empty((ndfa, chunks), dtype=np.int32)
        counts = np.zeros((ndfa, chunks), dtype=np.int64)
        todo = np.arange(chunks)
        for _ in range(chunks + 1):
            sub = cols if todo.size == chunks else cols[:, todo]
            part = np.zeros((ndfa, todo.size), dtype=np.int64)
            fin = self.scan_grid(sub, entry[:, todo], part,
                                 weights=weights)
            counts[:, todo] = part
            exits[:, todo] = fin
            # A chunk is rescanned when *any* DFA's entry guess proved
            # wrong; lanes whose guess was right recompute identical
            # counts (determinism), so the union repair stays exact.
            wrong_mask = (exits[:, :-1] >> 1) != (entry[:, 1:] >> 1)
            wrong = np.nonzero(wrong_mask.any(axis=0))[0] + 1
            if wrong.size == 0:
                break
            entry[:, wrong] = exits[:, wrong - 1]
            todo = wrong
        else:
            raise DFAError("fused chunk fixpoint failed to converge; "
                           "this indicates a bug, not an input property")
        return remainder, head_counts, head_ptrs, counts, exits

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: int,
                          entry_states: Optional[Sequence[int]] = None,
                          weights: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-DFA ``(counts, exit_states)`` over one symbol
        array, every DFA advanced in the same pass.  Bit-identical to
        running :func:`count_arr` once per DFA (exactness is invariant
        under chunking), but the input is traversed once and the chunk
        count is widened toward ``FUSED_LANES_TARGET`` total lanes so
        the grid keeps full gather width at any partition count."""
        if arr.size == 0:
            states = self.starts.copy() if entry_states is None else \
                np.asarray(entry_states, dtype=np.int64)
            return np.zeros(self.num_dfas, dtype=np.int64), states
        _, head, _, counts, exits = self._fused_chunked_scan(
            arr, chunks, entry_states, weights)
        totals = head + counts.sum(axis=1)
        return totals, self.states_of(exits[:, -1]).astype(np.int64)

    def count_arr_detail_per_dfa(self, arr: np.ndarray, chunks: int,
                                 entry_states: Optional[Sequence[int]]
                                 = None,
                                 weights: Optional[np.ndarray] = None
                                 ) -> List["ScanDetail"]:
        """Per-DFA :class:`ScanDetail` ledgers from one fused pass —
        what a pooled worker returns so the host can repair each DFA's
        chain independently."""
        states = self.starts if entry_states is None else \
            np.asarray(entry_states, dtype=np.int64)
        if arr.size == 0:
            return [ScanDetail(int(states[d]),
                               np.zeros(1, dtype=np.int64),
                               np.zeros(0, dtype=np.int64),
                               np.zeros(0, dtype=np.int32))
                    for d in range(self.num_dfas)]
        remainder, head, head_ptrs, counts, exits = \
            self._fused_chunked_scan(arr, chunks, entry_states, weights)
        pieces = counts.shape[1]
        piece_len = (int(arr.size) - remainder) // pieces
        bounds = np.empty(pieces + 2, dtype=np.int64)
        bounds[0] = 0
        bounds[1:] = remainder + piece_len * np.arange(pieces + 1,
                                                       dtype=np.int64)
        head_states = self.states_of(head_ptrs)
        exit_states = self.states_of(exits)
        details = []
        for d in range(self.num_dfas):
            seg_counts = np.concatenate(
                ([head[d]], counts[d])).astype(np.int64)
            seg_exits = np.concatenate(
                ([head_states[d]], exit_states[d])).astype(np.int32)
            details.append(ScanDetail(int(states[d]), bounds,
                                      seg_counts, seg_exits))
        return details

    # -- fused multi-stream scanning -----------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scan independent (possibly ragged) streams, all DFAs at once.

        Returns ``(counts, final_states)``, both shaped
        ``(num_dfas, num_streams)``.  Streams may have different
        lengths: lanes are sorted by length and retired as their
        streams end, so a zero-length stream simply keeps its entry
        state.  ``start_states`` is per-DFA (shape ``(D,)``) — every
        stream of DFA ``d`` enters at that DFA's state.  This is the
        paper's 16-interleaved-streams idea with the DFA dimension
        fused in — the service batch executor's engine.
        """
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0])
        ndfa = self.num_dfas

        entry = self.entry_ptrs(start_states)
        ptrs = np.empty((ndfa, nstreams), dtype=np.int32)
        ptrs[:] = entry[:, None]
        counts = np.zeros((ndfa, nstreams), dtype=np.int64)
        if maxlen:
            cols = np.zeros((maxlen, nstreams), dtype=np.uint8)
            for k, oi in enumerate(order):
                s = streams[oi]
                if len(s):
                    cols[:len(s), k] = np.frombuffer(s, dtype=np.uint8)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = self.scan_grid(cols[lo:hi, :active],
                                     ptrs[:, :active],
                                     counts[:, :active],
                                     weights=weights)
                ptrs[:, :active] = fin
        out_counts = np.empty_like(counts)
        out_ptrs = np.empty_like(ptrs)
        out_counts[:, order] = counts
        out_ptrs[:, order] = ptrs
        return out_counts, self.states_of(out_ptrs).astype(np.int32)


# ---------------------------------------------------------------------------
# Hot/cold split of the union automaton (cache-resident fused scanning)
# ---------------------------------------------------------------------------

def visit_order(transitions: np.ndarray, start: int,
                fold_table: Optional[np.ndarray] = None,
                iters: int = 12, damping: float = 0.15
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic hotness ranking of DFA states.

    Runs a damped power iteration of the DFA's transition graph under
    the per-symbol probabilities implied by the fold (a symbol's weight
    is the number of byte values folding to it, i.e. the stationary
    distribution of a uniformly random *byte* stream).  Inputs are not
    uniform, but what the ranking must get right is only the split into
    "visited constantly" (the failure-closed neighborhood of the start
    state) versus "visited while matching" — and that split is a
    structural property of security DFAs, not of the corpus.  Being
    input-free keeps the ranking a pure function of the compiled
    dictionary, so it can be persisted in the artifact cache.

    Returns ``(order, mass)``: states sorted hottest-first with
    ``start`` forced to the front, and the stationary mass per state.
    """
    trans = np.asarray(transitions, dtype=np.int64)
    n, width = trans.shape
    if fold_table is not None:
        probs = np.bincount(np.asarray(fold_table, dtype=np.int64),
                            minlength=width).astype(np.float64)
        probs /= max(probs.sum(), 1.0)
    else:
        probs = np.full(width, 1.0 / width)
    restart = np.zeros(n, dtype=np.float64)
    restart[int(start)] = 1.0
    v = restart.copy()
    targets = trans.reshape(-1)
    for _ in range(int(iters)):
        contrib = (v[:, None] * probs[None, :]).reshape(-1)
        v = np.bincount(targets, weights=contrib, minlength=n)
        v = (1.0 - damping) * v + damping * restart
    order = np.argsort(-v, kind="stable").astype(np.int64)
    order = np.concatenate(([int(start)], order[order != int(start)]))
    return order, v


def project_states(union_trans: np.ndarray, union_start: int,
                   slice_trans: np.ndarray, slice_start: int) -> np.ndarray:
    """Map every union-automaton state to its image in one slice DFA.

    For Aho–Corasick automata the state reached by a string is its
    longest suffix that is a pattern prefix.  A suffix of a union
    state's canonical string that is a *slice* prefix is also a union
    prefix, hence itself a suffix of the union state's canonical string
    — so the slice state reached by *any* string arriving at union
    state ``s`` is the same, and the map ``img`` is well defined.  It
    satisfies ``img[union_trans[s, c]] == slice_trans[img[s], c]``,
    which is exactly the BFS recurrence used here.
    """
    union_trans = np.asarray(union_trans, dtype=np.int64)
    slice_trans = np.asarray(slice_trans, dtype=np.int64)
    n = union_trans.shape[0]
    img = np.full(n, -1, dtype=np.int64)
    img[int(union_start)] = int(slice_start)
    frontier = np.asarray([int(union_start)], dtype=np.int64)
    while frontier.size:
        targets = union_trans[frontier].reshape(-1)
        cand = slice_trans[img[frontier]].reshape(-1)
        fresh = np.nonzero(img[targets] < 0)[0]
        if fresh.size == 0:
            break
        t, first = np.unique(targets[fresh], return_index=True)
        img[t] = cand[fresh][first]
        frontier = t
    # Unreachable union states have no canonical string; any image is
    # consistent (they never occur in a scan).
    img[img < 0] = int(slice_start)
    return img


@dataclass
class HotColdFusedTable:
    """Hot/cold split of the union automaton's flag-encoded table.

    The paper's §4 answer to "the STT must fit local store" is to refuse
    dictionaries whose table does not.  The hot/cold split keeps the
    discipline but only demands residency of the *frequently visited*
    states: the hottest ``H`` states (by :func:`visit_order`) are
    renumbered onto one compact contiguous table of ``H`` rows over the
    **folded** alphabet — typically ~8× narrower than the fold-composed
    fused rows — and every other state collapses to a two-cell *escape
    encoding* resolved by a :class:`~repro.core.compressed.ColdRowStore`
    (default-transition compressed against the start state's row).

    Cell encodings (``stride = 2 × symbol_width``, bit 0 = is-final):

    * hot state ``h``:   ``h·stride | flag`` — the §4 tagged pointer,
      gathered with the usual no-masking trick;
    * cold state ``j``:  ``escape_base + 2 + 2·j | flag`` where
      ``escape_base = H·stride``.  These point into a *parking zone*
      appended to the hot table whose every cell holds ``escape_base``,
      so a lane that goes cold parks itself (self-loop, flag 0,
      weight 0) for the rest of the strip and the scanner replays its
      true trajectory through the cold store afterwards.

    The weight table is addressed by ``cell >> 1`` like the fused one:
    hot states land on ``h·symbol_width``, the parking cell on a
    dedicated zero slot, cold states on compact trailing slots.

    One union automaton replaces the D stacked slice tables, so the
    per-byte transition work is one gather regardless of the partition
    count; per-slice counts are recovered through ``slice_maps`` (see
    :func:`project_states`) and per-slice weight layouts.
    """

    hot_flat: np.ndarray            # int32, hot rows + parking zone
    weights: np.ndarray             # int32, indexed by cell >> 1
    cold: ColdRowStore              # cold rows, shared-default compressed
    fold_table: np.ndarray          # 256-entry byte → symbol map
    hot_states: np.ndarray          # int64 (H,): hot id → union state
    cold_states: np.ndarray         # int64 (n-H,): cold id → union state
    entry_cells: np.ndarray         # int32 (n,): state → untagged cell
    start: int
    num_states: int
    symbol_width: int
    slice_maps: Optional[np.ndarray] = None      # int32 (D, n)
    slice_weights: Optional[np.ndarray] = None   # int32 (D, len(weights))
    slice_flags: Optional[np.ndarray] = None     # int32 (D, len(weights))
    hot_mass: Optional[float] = None             # predicted hot-visit share

    @property
    def num_hot(self) -> int:
        return len(self.hot_states)

    @property
    def num_cold(self) -> int:
        return len(self.cold_states)

    @property
    def stride(self) -> int:
        return 2 * self.symbol_width

    @property
    def escape_base(self) -> int:
        return self.num_hot * self.stride

    @property
    def num_dfas(self) -> int:
        return 1 if self.slice_maps is None else len(self.slice_maps)

    @property
    def hot_bytes(self) -> int:
        """Footprint of the always-resident part (hot rows + weights)."""
        return int(self.hot_flat.nbytes + self.weights.nbytes)

    @property
    def table_bytes(self) -> int:
        """Total footprint of everything a scan can touch."""
        return int(self.hot_flat.nbytes + self.weights.nbytes
                   + self.cold.nbytes + self.entry_cells.nbytes
                   + 4 * 256)


def build_hot_cold_table(transitions: np.ndarray, final_mask: np.ndarray,
                         start: int, fold_table: np.ndarray,
                         state_weights: Optional[np.ndarray] = None,
                         budget_bytes: int = HOT_BUDGET_BYTES,
                         order: Optional[np.ndarray] = None,
                         mass: Optional[np.ndarray] = None,
                         slice_maps: Optional[np.ndarray] = None,
                         slice_state_weights: Optional[np.ndarray] = None,
                         slice_state_flags: Optional[np.ndarray] = None
                         ) -> HotColdFusedTable:
    """Build a :class:`HotColdFusedTable` from a (union) DFA.

    ``transitions`` is over the *folded* alphabet; ``fold_table`` maps
    raw bytes to it at scan time (the fold is **not** composed into the
    rows — narrow rows are the point).  ``budget_bytes`` caps the hot
    partition: ``H = budget // (stride × 4)`` rows, at least 1 and at
    most all states; ``order`` (from :func:`visit_order`, possibly
    loaded from an artifact) overrides the profiling pass.  The
    optional ``slice_*`` arrays are per-slice per-*union-state* weight
    and final-flag vectors plus the :func:`project_states` maps, laid
    out into per-slice weight tables for exact per-DFA counting.
    """
    trans = np.asarray(transitions, dtype=np.int64)
    n, width = trans.shape
    final = np.asarray(final_mask, dtype=np.int64)
    fold = np.asarray(fold_table, dtype=np.int64)
    if fold.shape != (256,):
        raise DFAError("fold table must map all 256 byte values")
    if fold.size and int(fold.max()) >= width:
        raise DFAError("fold table maps outside the DFA alphabet")
    stride = 2 * width
    if order is None:
        order, mass = visit_order(trans, start, fold)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.shape != (n,):
            raise DFAError("visit order must rank every state")
        if int(order[0]) != int(start):
            order = np.concatenate(([int(start)],
                                    order[order != int(start)]))
    num_hot = max(1, min(n, int(budget_bytes) // (stride * 4)))
    num_cold = n - num_hot
    hot_states = order[:num_hot]
    cold_states = order[num_hot:]
    escape_base = num_hot * stride
    park = 2 * num_cold + stride + 2
    if escape_base + park > np.iinfo(np.int32).max:
        raise DFAError(
            f"hot/cold STT needs offsets up to {escape_base + park}, "
            f"beyond int32; {n} states × {width} symbols is too large")

    code = np.empty(n, dtype=np.int64)
    code[hot_states] = np.arange(num_hot, dtype=np.int64) * stride
    code[cold_states] = escape_base + 2 \
        + 2 * np.arange(num_cold, dtype=np.int64)
    enc = code[trans] + final[trans]

    hot_flat = np.full(escape_base + park, escape_base, dtype=np.int32)
    hot_rows = hot_flat[:escape_base].reshape(num_hot, stride)
    hot_rows[:, 0::2] = enc[hot_states]
    hot_rows[:, 1::2] = enc[hot_states]
    cold = ColdRowStore.from_rows(enc[cold_states], enc[int(start)])

    wsize = num_hot * width + num_cold + 1

    def layout(per_state: np.ndarray) -> np.ndarray:
        w = np.zeros(wsize, dtype=np.int32)
        w[np.arange(num_hot) * width] = per_state[hot_states]
        w[num_hot * width + 1 + np.arange(num_cold)] = \
            per_state[cold_states]
        return w

    if state_weights is None:
        state_weights = final
    weights = layout(np.asarray(state_weights))

    sw = sf = None
    if slice_maps is not None:
        slice_maps = np.ascontiguousarray(slice_maps, dtype=np.int32)
        if slice_state_weights is None or slice_state_flags is None:
            raise DFAError("slice maps need per-slice weights and flags")
        sw = np.stack([layout(np.asarray(row))
                       for row in slice_state_weights])
        sf = np.stack([layout(np.asarray(row))
                       for row in slice_state_flags])

    hot_mass = None
    if mass is not None:
        total = float(mass.sum())
        if total > 0:
            hot_mass = float(mass[hot_states].sum()) / total

    return HotColdFusedTable(
        hot_flat=hot_flat, weights=weights, cold=cold,
        fold_table=np.ascontiguousarray(fold, dtype=np.int64),
        hot_states=np.ascontiguousarray(hot_states),
        cold_states=np.ascontiguousarray(cold_states),
        entry_cells=code.astype(np.int32), start=int(start),
        num_states=n, symbol_width=width, slice_maps=slice_maps,
        slice_weights=sw, slice_flags=sf, hot_mass=hot_mass)


class HotColdFusedScanner:
    """Lockstep interpreter over a :class:`HotColdFusedTable`.

    Drop-in compatible with :class:`FlatScanner` for :func:`count_arr` /
    :func:`count_arr_detail` / :func:`repair_detail` (pointer, state_of,
    scan_cols, step_scalar all speak union states), so every chunking,
    ledger and pool mechanism runs unchanged on top of it.  The hot loop
    is the §4 one-gather step on the compact hot table; lanes that leave
    the hot set park themselves in the parking zone and are *replayed*
    through the compressed cold store at strip granularity — the
    explicit slow-path escape.  Scans read **raw bytes**: the byte→
    symbol fold is a 256-entry pre-doubled gather folded into the strip
    staging step, not into the table rows.
    """

    def __init__(self, table: HotColdFusedTable) -> None:
        self.table = table
        self.flat = table.hot_flat
        self.weights = table.weights
        self.cold = table.cold
        self.symbol_width = table.symbol_width
        self.alphabet_size = table.symbol_width
        self.stride = table.stride
        self.start = int(table.start)
        self.num_states = int(table.num_states)
        self.escape_base = int(table.escape_base)
        self.fold2 = np.ascontiguousarray(
            np.asarray(table.fold_table, dtype=np.int32) * 2)
        self.reset_stats()

    @property
    def num_dfas(self) -> int:
        return self.table.num_dfas

    # -- instrumentation ---------------------------------------------------------

    def reset_stats(self) -> None:
        #: steps = lockstep transitions taken; cold_steps = transitions
        #: replayed through the slow path; escapes = lane×strip slow-path
        #: activations.  hot_hit_rate derives from these.
        self.stats = {"steps": 0, "cold_steps": 0, "escapes": 0}

    @property
    def hot_hit_rate(self) -> float:
        steps = self.stats["steps"]
        if steps <= 0:
            return 1.0
        return 1.0 - self.stats["cold_steps"] / steps

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        return int(self.table.entry_cells[int(state)])

    def state_of(self, ptrs):
        p = np.asarray(ptrs, dtype=np.int64)
        base = (p >> 1) << 1
        t = self.table
        out = t.hot_states[np.minimum(base // self.stride,
                                      t.num_hot - 1)]
        if t.num_cold:
            j = np.clip((base - self.escape_base - 2) >> 1, 0,
                        t.num_cold - 1)
            out = np.where(base < self.escape_base, out,
                           t.cold_states[j])
        if p.ndim == 0:
            return int(out)
        return out

    # -- scalar path -------------------------------------------------------------

    def step_scalar(self, ptr: int, symbol: int) -> int:
        sym2 = int(self.fold2[int(symbol)])
        ptr = int(ptr)
        if ((ptr >> 1) << 1) < self.escape_base:
            return int(self.flat[ptr + sym2])
        j = (((ptr >> 1) << 1) - self.escape_base - 2) >> 1
        return self.cold.lookup_one(j, sym2 >> 1)

    def _advance(self, cells: np.ndarray, syms2: np.ndarray) -> np.ndarray:
        """Vectorized mixed hot/cold transition on encoded cells."""
        eb = self.escape_base
        base = (cells >> 1) << 1
        hot = base < eb
        out = np.empty_like(cells)
        if hot.any():
            out[hot] = self.flat[cells[hot] + syms2[hot]]
        cold = ~hot
        if cold.any():
            j = (base[cold] - eb - 2) >> 1
            out[cold] = self.cold.lookup(j, syms2[cold] >> 1)
        return out

    # -- hot loop ----------------------------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """:meth:`FlatScanner.scan_cols` over raw bytes and union
        states: flag accumulation without ``weights``, multiplicity
        accumulation with (pass :attr:`weights`)."""
        return self._scan_core(cols, ptrs, ((counts, weights),))

    def scan_cols_slices(self, cols: np.ndarray, ptrs: np.ndarray,
                         counts2d: np.ndarray,
                         weight_rows: np.ndarray) -> np.ndarray:
        """One lockstep pass accumulating every slice's counts at once
        (``counts2d`` is ``(D, lanes)``, ``weight_rows`` ``(D, wsize)``).

        D-invariant: instead of D dense accumulation passes per strip,
        one flag pass finds the union-final positions (a slice match
        implies a union match, since the union automaton contains every
        pattern) and the per-slice weights are scattered only at those
        sparse hits, projected through the per-slice weight layouts.
        The per-strip cost is one dense pass plus O(matches · D), not
        O(strip · D)."""
        return self._scan_core(cols, ptrs, (),
                               slice_accs=(counts2d, weight_rows))

    def _scan_core(self, cols: np.ndarray, ptrs: np.ndarray,
                   accs, slice_accs=None) -> np.ndarray:
        length, lanes = cols.shape
        if length == 0:
            return np.asarray(ptrs, dtype=np.int32).copy()
        take = self.flat.take
        fold2_take = self.fold2.take
        add = np.add
        eb = self.escape_base
        pure_hot = self.table.num_cold == 0
        weighted = any(w is not None for _, w in accs)
        strip_len = min(STRIP, length,
                        max(8, hotcold_strip_elems() // max(1, lanes)))
        strip = np.empty((strip_len, lanes), dtype=np.int32)
        syms2 = np.empty((strip_len, lanes), dtype=np.int32)
        scratch = np.empty((strip_len, lanes), dtype=np.int32)
        shifted = np.empty((strip_len, lanes), dtype=np.int32)
        idx = np.empty(lanes, dtype=np.int32)
        strip_rows = list(strip)
        syms_rows = list(syms2)
        cur = np.ascontiguousarray(ptrs, dtype=np.int32)
        self.stats["steps"] += int(length) * int(lanes)
        for t0 in range(0, length, strip_len):
            b = min(strip_len, length - t0)
            fold2_take(cols[t0:t0 + b], out=syms2[:b])
            pre = None if pure_hot else cur.copy()
            c = cur
            for i in range(b):
                row = strip_rows[i]
                add(c, syms_rows[i], out=idx)
                take(idx, out=row)
                c = row
            cur = c
            # Hot accumulation is exact for every lane: a lane that
            # escapes contributes its true flags/weights up to and
            # including the escape step (the escape cell carries the
            # cold destination's flag and weight slot), then parks on
            # zero-weight cells.
            if weighted:
                np.right_shift(strip[:b], 1, out=shifted[:b])
            for acc, w in accs:
                if w is None:
                    np.bitwise_and(strip[:b], 1, out=scratch[:b])
                else:
                    w.take(shifted[:b], out=scratch[:b])
                acc += scratch[:b].sum(axis=0)
            if slice_accs is not None:
                self._accumulate_slices_sparse(strip, b, lanes,
                                               scratch, slice_accs)
            if not pure_hot:
                esc = np.nonzero(cur >= eb)[0]
                if esc.size:
                    cur = cur.copy()
                    self._fix_lanes(strip, syms2, b, pre, cur, esc,
                                    accs, slice_accs)
        return cur.copy()

    @staticmethod
    def _accumulate_slices_sparse(strip: np.ndarray, b: int, lanes: int,
                                  scratch: np.ndarray, slice_accs) -> None:
        """Scatter per-slice weights at the strip's union-final hits.

        Escape cells carry the cold destination's flag and weight slot,
        so hot-loop hits are exact for escaping lanes too; parked cells
        have flag 0 and contribute nothing (their lanes are replayed)."""
        counts2d, rows = slice_accs
        np.bitwise_and(strip[:b], 1, out=scratch[:b])
        tt, ll = np.nonzero(scratch[:b])
        if not tt.size:
            return
        slots = strip[tt, ll].astype(np.int64) >> 1
        for d in range(len(rows)):
            counts2d[d] += np.bincount(
                ll, weights=rows[d, slots],
                minlength=lanes).astype(np.int64)

    def _fix_lanes(self, strip: np.ndarray, syms2: np.ndarray, b: int,
                   pre: np.ndarray, cur: np.ndarray, esc: np.ndarray,
                   accs, slice_accs=None) -> None:
        """Replay escaped lanes through the cold store.

        ``esc`` lists lanes whose strip-exit cell is in the escape
        range.  Two cases: a lane *entered* the strip cold (its parked
        gathers contributed nothing — replay all ``b`` steps from its
        true cold encoding), or it escaped mid-strip at position ``t``
        (everything through ``t`` was counted exactly — replay from
        ``t + 1``).  The replay itself is vectorized across lanes per
        position; its per-step cost is bounded (one sorted probe), so
        the slow path degrades linearly, never pathologically.
        """
        eb = self.escape_base
        m = int(esc.size)
        self.stats["escapes"] += m
        col = strip[:b, esc]
        pre_esc = pre[esc].astype(np.int64)
        first = np.argmax(col >= eb, axis=0)
        cells = col[first, np.arange(m)].astype(np.int64)
        t_start = first.astype(np.int64) + 1
        precold = pre_esc >= eb
        if precold.any():
            cells[precold] = pre_esc[precold]
            t_start[precold] = 0
        extra = [np.zeros(m, dtype=np.int64) for _ in accs]
        extra2d = None
        if slice_accs is not None:
            counts2d, rows = slice_accs
            extra2d = np.zeros((len(rows), m), dtype=np.int64)
        for t in range(int(t_start.min()), b):
            act = np.nonzero(t_start <= t)[0]
            nxt = self._advance(cells[act], syms2[t, esc[act]].astype(np.int64))
            cells[act] = nxt
            for (_, w), ex in zip(accs, extra):
                if w is None:
                    ex[act] += nxt & 1
                else:
                    ex[act] += w[nxt >> 1]
            if extra2d is not None:
                extra2d[:, act] += rows[:, nxt >> 1]
            self.stats["cold_steps"] += int(act.size)
        for (acc, _), ex in zip(accs, extra):
            acc[esc] += ex
        if extra2d is not None:
            counts2d[:, esc] += extra2d
        cur[esc] = cells.astype(np.int32)

    # -- block scanning ----------------------------------------------------------

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: int,
                          entry_states=None,
                          weights: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-slice ``(counts, exit_states)`` from one union
        pass.  ``weights`` is a mode switch matching the fused scanner's
        convention: ``None`` counts final-state entries per slice, any
        array selects the per-slice multiplicity layouts (only the
        table's own layouts are meaningful — per-slice counts are always
        taken through ``slice_weights``/``slice_flags``)."""
        t = self.table
        if t.slice_maps is None:
            raise DFAError("hot/cold table was built without slice maps")
        ndfa = len(t.slice_maps)
        start_imgs = t.slice_maps[:, self.start].astype(np.int64)
        if entry_states is not None:
            states = np.asarray(entry_states, dtype=np.int64)
            if not np.array_equal(states, start_imgs):
                raise DFAError(
                    "hot/cold per-DFA scans enter at the union start "
                    "state; arbitrary per-DFA entry states are not "
                    "realizable in the union state space")
        if arr.size == 0:
            return np.zeros(ndfa, dtype=np.int64), start_imgs
        rows = t.slice_flags if weights is None else t.slice_weights
        totals, exit_state = self._chunked_multi(arr, chunks, rows)
        return totals, t.slice_maps[:, exit_state].astype(np.int64)

    def _chunked_multi(self, arr: np.ndarray, chunks: int,
                       rows: np.ndarray) -> Tuple[np.ndarray, int]:
        """Chunk fixpoint accumulating all D slices per pass; same
        speculation/warm-up/repair semantics as :func:`_chunked_scan`."""
        if chunks < 1:
            raise DFAError("chunks must be >= 1")
        n = int(arr.size)
        ndfa = len(rows)
        chunks = min(n, max(int(chunks),
                            min(hotcold_lanes_target(), n // MIN_PIECE)))
        piece_len = n // chunks
        remainder = n - piece_len * chunks
        head = np.zeros(ndfa, dtype=np.int64)
        ptr = self.pointer(self.start)
        for sym in arr[:remainder].tolist():
            ptr = self.step_scalar(ptr, sym)
            head += rows[:, ptr >> 1]
        cols = np.ascontiguousarray(
            arr[remainder:].reshape(chunks, piece_len).T)
        entry = np.full(chunks, self.pointer(self.start), dtype=np.int32)
        entry[0] = ptr
        if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
            sink = np.zeros(chunks - 1, dtype=np.int64)
            entry[1:] = self.scan_cols(
                np.ascontiguousarray(
                    cols[piece_len - SPECULATION_WARMUP:, :-1]),
                entry[1:].copy(), sink)
        exits = np.empty(chunks, dtype=np.int32)
        counts = np.zeros((ndfa, chunks), dtype=np.int64)
        todo = np.arange(chunks)
        for _ in range(chunks + 1):
            sub = cols if todo.size == chunks else cols[:, todo]
            part = np.zeros((ndfa, todo.size), dtype=np.int64)
            fin = self.scan_cols_slices(sub, entry[todo], part, rows)
            counts[:, todo] = part
            exits[todo] = fin
            wrong = np.nonzero((exits[:-1] >> 1)
                               != (entry[1:] >> 1))[0] + 1
            if wrong.size == 0:
                break
            entry[wrong] = exits[wrong - 1]
            todo = wrong
        else:
            raise DFAError("hot/cold chunk fixpoint failed to converge; "
                           "this indicates a bug, not an input property")
        return head + counts.sum(axis=1), int(self.state_of(exits[-1]))

    # -- multi-stream scanning ---------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scan independent ragged streams over the union automaton.

        Returns ``(counts, final_states)``, both shaped
        ``(num_streams,)`` — the whole dictionary's totals per stream
        in one pass, where the plain fused scanner returns a
        ``(D, streams)`` grid it then has to reduce.  States are union
        states; streams are raw bytes.
        """
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0])
        if start_states is not None:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.num_states):
                raise DFAError("start state out of range")
            ptrs = self.table.entry_cells[states[order]].astype(np.int32)
        else:
            ptrs = np.full(nstreams, self.pointer(self.start),
                           dtype=np.int32)
        counts = np.zeros(nstreams, dtype=np.int64)
        if maxlen:
            cols = np.zeros((maxlen, nstreams), dtype=np.uint8)
            for k, oi in enumerate(order):
                s = streams[oi]
                if len(s):
                    cols[:len(s), k] = np.frombuffer(s, dtype=np.uint8)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = self.scan_cols(cols[lo:hi, :active], ptrs[:active],
                                     counts[:active], weights=weights)
                ptrs[:active] = fin
        out_counts = np.empty_like(counts)
        out_ptrs = np.empty_like(ptrs)
        out_counts[order] = counts
        out_ptrs[order] = ptrs
        return out_counts, np.asarray(self.state_of(out_ptrs),
                                      dtype=np.int64)


@dataclass
class HotCold2Table:
    """Pair-symbol (two-byte stride) extension of a hot/cold table.

    The §4 inner loop pays one gather per input *byte*; squaring the
    folded alphabet on the hottest states halves that: the ``H2``
    hottest union states get one row of ``width²`` cells each, indexed
    by a *pair* of folded symbols, so the lockstep loop consumes two
    bytes per gather — the paper's unrolling discussion taken one level
    up, and the Hyperflex observation that a compacted hot set makes
    the squared table affordable.

    States are renumbered by *hotness rank* (the base table's
    hottest-first visit order), and a pair cell simply stores the
    destination's rank as an ``int16`` — so a full pair row costs
    ``2·width²`` bytes, a quarter of the flag-doubled ``int32``
    encoding, and whether a destination is pair-hot is one compare
    (``rank < H2``).  The gather index is ``rank·width² + psym``; a
    lane whose rank is not pair-hot overshoots the table and is clamped
    by the gather's clip mode onto the final *parking cell* (value
    ``num_states``), where it stays for the rest of the strip.

    Final flags and multiplicities live in two aux tables addressed by
    the *gather index* rather than the result — so they see the pair's
    source state and both symbols, and can account the *middle* state
    of the pair (the one crossed after the first byte) with no escape:

    * ``fflat``: bit 0 = destination is final, bit 1 = middle state is
      final;
    * ``wflat``: middle multiplicity + destination multiplicity.

    Both are zero on the parking cell, so parked lanes accumulate
    nothing and the strip replay owes exactly the post-escape bytes.
    """

    base: HotColdFusedTable
    hot2_flat: np.ndarray        # int16 (H2·W² + 1,): dest ranks + park
    wflat: np.ndarray            # uint8/uint16/int32, same indexing
    fflat: np.ndarray            # uint8, same indexing (2 bits)
    foldpair: np.ndarray         # uint16 (65536,): psym per LE byte pair
    utr: np.ndarray              # int16 (NS·W,): rank-space transitions
    order: np.ndarray            # int64 (NS,): rank → union state id
    rank_of: np.ndarray          # int64 (NS,): union state id → rank
    wstate: np.ndarray           # int32 (NS + 1,): multiplicity by rank
    fstate: np.ndarray           # int32 (NS + 1,): final flag by rank
    pair_budget_bytes: int
    hot2_mass: Optional[float] = None   # predicted pair-hot visit share

    @property
    def symbol_width(self) -> int:
        return self.base.symbol_width

    @property
    def num_hot2(self) -> int:
        w2 = self.symbol_width * self.symbol_width
        return (len(self.hot2_flat) - 1) // w2

    @property
    def hot2_states(self) -> np.ndarray:
        return self.order[:self.num_hot2]

    @property
    def num_states(self) -> int:
        return self.base.num_states

    @property
    def start(self) -> int:
        return self.base.start

    @property
    def num_dfas(self) -> int:
        return self.base.num_dfas

    @property
    def hot2_bytes(self) -> int:
        """Footprint of the pair transition rows (the budgeted part —
        aux flag/weight tables ride along, like the base table's
        weight layout)."""
        return int(self.hot2_flat.nbytes)

    @property
    def table_bytes(self) -> int:
        """Total footprint of everything a pair scan can touch."""
        return int(self.hot2_flat.nbytes + self.wflat.nbytes
                   + self.fflat.nbytes + self.foldpair.nbytes
                   + self.utr.nbytes + self.base.table_bytes)


def pair_symbol_table(fold_table: np.ndarray, width: int) -> np.ndarray:
    """``foldpair``: folded pair symbol per little-endian byte pair.

    The staged scan path reads input byte pairs through a native
    ``uint16`` view, so the *first* input byte is the low half on
    little-endian hosts (and the high half otherwise)."""
    fold = np.asarray(fold_table, dtype=np.int64)
    pair16 = np.arange(65536, dtype=np.int64)
    first, second = ((pair16 & 255, pair16 >> 8) if np.little_endian
                     else (pair16 >> 8, pair16 & 255))
    return (fold[first] * width + fold[second]).astype(np.uint16)


def build_hot_cold2_table(transitions: np.ndarray, final_mask: np.ndarray,
                          base: HotColdFusedTable,
                          budget_bytes: int = HOT_BUDGET_BYTES,
                          mass: Optional[np.ndarray] = None,
                          foldpair: Optional[np.ndarray] = None
                          ) -> HotCold2Table:
    """Square the folded alphabet on the hottest states of ``base``.

    ``transitions``/``final_mask`` are the same union-automaton arrays
    ``base`` was built from (over the folded alphabet).  The pair-hot
    set is the hottest prefix of the base table's visit order that fits
    ``budget_bytes`` at ``2·width²`` bytes per row — the same budget
    discipline as the base table, applied to the squared stride.
    """
    trans = np.asarray(transitions, dtype=np.int64)
    n, width = trans.shape
    if n != base.num_states or width != base.symbol_width:
        raise DFAError("pair table must be built from the same union "
                       "automaton as its base hot/cold table")
    if n + 1 > np.iinfo(np.int16).max:
        raise DFAError(
            f"pair STT stores int16 state ranks; {n} union states "
            f"exceed the {np.iinfo(np.int16).max - 1} limit")
    w2 = width * width
    order = np.concatenate([base.hot_states,
                            base.cold_states]).astype(np.int64)
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n, dtype=np.int64)
    num_hot2 = max(1, min(n, int(budget_bytes) // (w2 * 2)))

    # Rank-space transition matrix: row r is the hotness-rank image of
    # union state order[r]'s row.
    tr_rank = rank_of[trans[order]]                  # (NS, W)
    utr = tr_rank.astype(np.int16).ravel()
    final = (np.asarray(final_mask) != 0)
    f_rank = final[order].astype(np.int32)
    slots = (base.entry_cells.astype(np.int64) >> 1)
    w_rank = base.weights[slots[order]].astype(np.int64)

    mid = tr_rank[:num_hot2]                         # (H2, W)
    dest = tr_rank[mid]                              # (H2, W, W)
    hot2_flat = np.empty(num_hot2 * w2 + 1, dtype=np.int16)
    hot2_flat[:-1] = dest.reshape(num_hot2 * w2)
    hot2_flat[-1] = n                                # parking cell

    fpair = (f_rank[dest] | (f_rank[mid][:, :, None] << 1))
    fflat = np.zeros(num_hot2 * w2 + 1, dtype=np.uint8)
    fflat[:-1] = fpair.reshape(num_hot2 * w2)

    wpair = (w_rank[mid][:, :, None] + w_rank[dest]).reshape(num_hot2 * w2)
    wmax = int(wpair.max()) if wpair.size else 0
    wdtype = (np.uint8 if wmax <= np.iinfo(np.uint8).max else
              np.uint16 if wmax <= np.iinfo(np.uint16).max else np.int32)
    wflat = np.zeros(num_hot2 * w2 + 1, dtype=wdtype)
    wflat[:-1] = wpair

    if foldpair is None:
        foldpair = pair_symbol_table(base.fold_table, width)
    else:
        foldpair = np.ascontiguousarray(foldpair, dtype=np.uint16)
        if foldpair.shape != (65536,):
            raise DFAError("foldpair table must have 65536 entries")

    wstate = np.zeros(n + 1, dtype=np.int32)
    wstate[:n] = w_rank
    fstate = np.zeros(n + 1, dtype=np.int32)
    fstate[:n] = f_rank

    hot2_mass = None
    if mass is not None:
        mass = np.asarray(mass, dtype=np.float64)
        total = float(mass.sum())
        if total > 0:
            hot2_mass = float(mass[order[:num_hot2]].sum()) / total

    return HotCold2Table(
        base=base, hot2_flat=hot2_flat, wflat=wflat, fflat=fflat,
        foldpair=foldpair, utr=utr, order=order, rank_of=rank_of,
        wstate=wstate, fstate=fstate,
        pair_budget_bytes=int(budget_bytes), hot2_mass=hot2_mass)


class _StagedLanes:
    """Staging for a pair-stride scan: the lane-major raw byte matrix
    (kept for the byte-granular replay path) plus its pair-symbol
    matrix in *position-major* layout ``(pairs, lanes)`` — one
    ``foldpair`` gather per two bytes, transposed in cache-resident
    lane blocks on the way out so the lockstep loop reads contiguous
    rows with no per-strip copies."""

    __slots__ = ("mat", "psym", "lanes", "piece", "pairs")

    def __init__(self, mat: np.ndarray, psym: Optional[np.ndarray]):
        self.mat = mat
        self.psym = psym                  # (pairs, lanes) uint16
        self.lanes, self.piece = mat.shape
        self.pairs = self.piece // 2


class HotCold2Scanner:
    """Two-byte stride lockstep interpreter over a :class:`HotCold2Table`.

    Drop-in compatible with :class:`HotColdFusedScanner` (and hence
    :func:`count_arr` / the chunk fixpoint / ``run_streams``): pointer,
    state_of, scan_cols and step_scalar all speak union states, with
    ``rank·2 | is_final`` as the pointer representation.  The hot loop
    gathers once per input *pair*; destinations outside the pair-hot
    set park the lane (via the gather's clip mode) and the strip is
    replayed byte-by-byte through the rank-space transition matrix.
    Odd strip tails and odd-length inputs take single rank-space steps,
    so chunk pieces and ragged stream segments of any parity compose
    exactly.  Matches landing on the *middle* byte of a pair are
    counted by the gather-indexed flag/weight tables — no escape.

    ``weights`` arguments are a mode switch (matching the base
    scanner's convention): ``None`` counts final-state entries, any
    array selects the table's own multiplicity layout
    (:attr:`weights`, indexed by ``pointer >> 1``).

    For large scans, :func:`_chunked_scan` uses the
    :meth:`stage_lanes` / :meth:`scan_lanes` protocol instead of
    transposing the input to position-major byte columns: the pair
    symbols are staged lane-major in one contiguous gather and each
    strip transposes only a cache-resident slab.
    """

    def __init__(self, table: HotCold2Table) -> None:
        self.table = table
        self.base = HotColdFusedScanner(table.base)
        b = table.base
        self.symbol_width = int(b.symbol_width)
        self.alphabet_size = int(b.symbol_width)
        self.start = int(b.start)
        self.num_states = int(b.num_states)
        self.num_hot2 = int(table.num_hot2)
        self._w = self.symbol_width
        self._w2 = self._w * self._w
        self.flat2 = table.hot2_flat
        self.wflat = table.wflat
        self.fflat = table.fflat
        self.foldpair = table.foldpair
        self.utr = table.utr
        self.order = table.order
        self.rank_of = table.rank_of
        self.wstate = table.wstate
        self.fstate = table.fstate
        self.weights = table.wstate            # indexed by pointer >> 1
        self.foldv = np.asarray(b.fold_table, dtype=np.int32)
        self.foldw = (self.foldv * self._w).astype(np.int32)
        self._rows_rank: dict = {}
        self.reset_stats()

    @property
    def num_dfas(self) -> int:
        return self.table.num_dfas

    # -- instrumentation ---------------------------------------------------------

    def reset_stats(self) -> None:
        #: steps = raw-byte transitions covered by the scan; cold_steps
        #: = bytes replayed outside the pair table; escapes =
        #: lane×strip replay activations.
        self.stats = {"steps": 0, "cold_steps": 0, "escapes": 0}

    @property
    def hot_hit_rate(self) -> float:
        steps = self.stats["steps"]
        if steps <= 0:
            return 1.0
        return 1.0 - self.stats["cold_steps"] / steps

    # -- pointer/state conversions ----------------------------------------------

    def pointer(self, state: int) -> int:
        r = int(self.rank_of[int(state)])
        return r * 2 + int(self.fstate[r])

    def state_of(self, ptrs):
        p = np.asarray(ptrs, dtype=np.int64)
        out = self.order[p >> 1]
        if p.ndim == 0:
            return int(out)
        return out

    # -- scalar path -------------------------------------------------------------

    def step_scalar(self, ptr: int, symbol: int) -> int:
        r = int(ptr) >> 1
        nr = int(self.utr[r * self._w + int(self.foldv[int(symbol)])])
        return nr * 2 + int(self.fstate[nr])

    # -- rank-space slice projections --------------------------------------------

    def _slice_rows(self, flags: bool) -> np.ndarray:
        """Per-slice accumulation rows indexed by *rank* (park = 0)."""
        key = bool(flags)
        rows = self._rows_rank.get(key)
        if rows is None:
            t = self.table.base
            if t.slice_maps is None:
                raise DFAError(
                    "hot/cold table was built without slice maps")
            src = t.slice_flags if flags else t.slice_weights
            slots = (t.entry_cells.astype(np.int64) >> 1)[self.order]
            rows = np.zeros((len(src), self.num_states + 1),
                            dtype=np.int64)
            rows[:, :self.num_states] = src[:, slots]
            self._rows_rank[key] = rows
        return rows

    # -- staging -----------------------------------------------------------------

    def stage_lanes(self, mat: np.ndarray) -> _StagedLanes:
        """Stage a lane-major byte matrix for :meth:`scan_lanes`."""
        lanes, piece = mat.shape
        pairs = piece // 2
        psym = None
        if pairs:
            u16 = None
            if piece == 2 * pairs:
                try:
                    # One gather per byte pair on a uint16 view
                    # (little-endian: first byte low).  The view can
                    # fail for odd row strides; fall back below.
                    u16 = mat.view(np.uint16)
                except ValueError:
                    u16 = None
            psym = np.empty((pairs, lanes), dtype=np.uint16)
            step = 256
            if u16 is not None:
                # Fused gather+transpose per lane block: each block's
                # symbols are produced and flipped while still hot.
                for j in range(0, lanes, step):
                    psym[:, j:j + step] = self.foldpair.take(
                        u16[j:j + step]).T
            else:
                body = mat[:, :2 * pairs]
                for j in range(0, lanes, step):
                    lo = np.asarray(body[j:j + step, 0::2],
                                    dtype=np.int64)
                    hi = np.asarray(body[j:j + step, 1::2],
                                    dtype=np.int64)
                    psym[:, j:j + step] = (
                        self.foldw.take(lo)
                        + self.foldv.take(hi)).astype(np.uint16).T
        return _StagedLanes(mat, psym)

    def scan_lanes(self, staged: _StagedLanes, sel, t0: int, t1: int,
                   ptrs: np.ndarray, counts: np.ndarray,
                   weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Scan bytes ``[t0, t1)`` of the selected staged lanes.

        ``sel`` is ``None`` (all lanes), a slice, or an index array.
        Pair phase is anchored at byte 0 of the staged matrix, so any
        ``[t0, t1)`` window — including odd boundaries — scans exactly:
        unaligned edge bytes take single rank-space steps.
        """
        return self._scan_span(staged, sel, int(t0), int(t1), ptrs,
                               ((counts, weights),), None)

    def scan_lanes_slices(self, staged: _StagedLanes, sel, t0: int,
                          t1: int, ptrs: np.ndarray,
                          counts2d: np.ndarray,
                          weight_rows: np.ndarray) -> np.ndarray:
        """:meth:`scan_lanes` accumulating every slice at once,
        D-invariantly (sparse scatter at union-final hits).
        ``weight_rows`` are rank-indexed (see :meth:`_slice_rows`)."""
        return self._scan_span(staged, sel, int(t0), int(t1), ptrs, (),
                               (counts2d, weight_rows))

    # -- position-major compatibility --------------------------------------------

    def scan_cols(self, cols: np.ndarray, ptrs: np.ndarray,
                  counts: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
        """:meth:`HotColdFusedScanner.scan_cols` at two bytes per
        gather; any input length (an odd tail takes one rank step)."""
        staged = self._stage_posmajor(cols)
        return self._scan_span(staged, None, 0, cols.shape[0], ptrs,
                               ((counts, weights),), None)

    def scan_cols_slices(self, cols: np.ndarray, ptrs: np.ndarray,
                         counts2d: np.ndarray,
                         weight_rows: np.ndarray) -> np.ndarray:
        """One pair-stride pass accumulating every slice's counts at
        once.  ``weight_rows`` must be rank-indexed."""
        staged = self._stage_posmajor(cols)
        return self._scan_span(staged, None, 0, cols.shape[0], ptrs, (),
                               (counts2d, weight_rows))

    def _stage_posmajor(self, cols: np.ndarray) -> _StagedLanes:
        """Stage position-major byte columns (transposes the small
        window; the big-block path goes through :meth:`stage_lanes`)."""
        mat = np.ascontiguousarray(cols.T)
        return self.stage_lanes(mat)

    # -- core --------------------------------------------------------------------

    def _scan_span(self, staged: _StagedLanes, sel, t0: int, t1: int,
                   ptrs: np.ndarray, accs, slice_accs) -> np.ndarray:
        if sel is None:
            sel = slice(0, staged.lanes)
        mat = staged.mat[sel]
        lanes = mat.shape[0]
        cur64 = np.asarray(ptrs, dtype=np.int64) >> 1
        cur = cur64.astype(np.int16)
        if t1 <= t0 or not lanes:
            return self._encode(cur)
        self.stats["steps"] += (t1 - t0) * lanes
        if t0 & 1:
            cur = self._single_steps(mat, cur, t0, t0 + 1, accs,
                                     slice_accs)
            t0 += 1
        p_lo, p_hi = t0 // 2, t1 // 2
        if p_hi > p_lo:
            psym = staged.psym[:, sel]   # slice sel: zero-copy view
            cur = self._scan_pairs(mat, psym, p_lo, p_hi, cur, accs,
                                   slice_accs)
        if t1 & 1 and t1 > t0:
            cur = self._single_steps(mat, cur, t1 - 1, t1, accs,
                                     slice_accs)
        return self._encode(cur)

    def _encode(self, cur: np.ndarray) -> np.ndarray:
        r = cur.astype(np.int64)
        return (r * 2 + self.fstate[r]).astype(np.int32)

    def _scan_pairs(self, mat: np.ndarray, psym: np.ndarray,
                    p_lo: int, p_hi: int, cur: np.ndarray,
                    accs, slice_accs) -> np.ndarray:
        lanes = mat.shape[0]
        w2 = self._w2
        h2 = self.num_hot2
        take = self.flat2.take
        mul = np.multiply
        add = np.add
        strip_len = min(p_hi - p_lo,
                        max(8, hotcold_strip_elems() // max(1, lanes)))
        idxs = np.empty((strip_len, lanes), dtype=np.int32)
        ids = np.empty((strip_len, lanes), dtype=np.int16)
        idx_rows = list(idxs)
        ids_rows = list(ids)
        cur = cur.copy()
        for p0 in range(p_lo, p_hi, strip_len):
            b = min(strip_len, p_hi - p0)
            pre = cur
            c = cur
            for i in range(b):
                row = idx_rows[i]
                mul(c, w2, out=row, dtype=np.int32, casting="unsafe")
                add(row, psym[p0 + i], out=row)
                c = ids_rows[i]
                take(row, mode="clip", out=c)
            cur = c.copy()
            self._accumulate(idxs, ids, b, lanes, accs, slice_accs)
            if int(cur.max()) >= h2:
                esc = np.nonzero(cur >= h2)[0]
                self._fix_lanes2(mat, ids, b, 2 * p0, pre, cur, esc,
                                 accs, slice_accs)
        return cur

    def _accumulate(self, idxs: np.ndarray, ids: np.ndarray, b: int,
                    lanes: int, accs, slice_accs) -> None:
        fl = None
        for acc, w in accs:
            if w is None:
                fl = self.fflat.take(idxs[:b], mode="clip")
                np.bitwise_and(fl, 1, out=fl)
                acc += fl.sum(axis=0, dtype=np.int64)
                fl = self.fflat.take(idxs[:b], mode="clip")
                np.right_shift(fl, 1, out=fl)
                acc += fl.sum(axis=0, dtype=np.int64)
            else:
                wv = self.wflat.take(idxs[:b], mode="clip")
                acc += wv.sum(axis=0, dtype=np.int64)
        if slice_accs is None:
            return
        counts2d, rows = slice_accs
        fl = self.fflat.take(idxs[:b], mode="clip")
        tt, ll = np.nonzero(fl)
        if not tt.size:
            return
        fv = fl[tt, ll]
        lanes_idx = []
        ranks = []
        dhit = (fv & 1) != 0
        if dhit.any():
            lanes_idx.append(ll[dhit])
            ranks.append(ids[tt[dhit], ll[dhit]].astype(np.int64))
        mhit = (fv & 2) != 0
        if mhit.any():
            iv = idxs[tt[mhit], ll[mhit]].astype(np.int64)
            lanes_idx.append(ll[mhit])
            ranks.append(self.utr[iv // self._w].astype(np.int64))
        ll_all = np.concatenate(lanes_idx)
        rk_all = np.concatenate(ranks)
        for d in range(len(rows)):
            counts2d[d] += np.bincount(
                ll_all, weights=rows[d, rk_all],
                minlength=lanes).astype(np.int64)

    def _fix_lanes2(self, mat: np.ndarray, ids: np.ndarray, b: int,
                    byte0: int, pre: np.ndarray, cur: np.ndarray,
                    esc: np.ndarray, accs, slice_accs) -> None:
        """Replay escaped lanes byte-by-byte in rank space.

        A lane escapes when a pair's destination leaves the pair-hot
        set (the stored cell is the destination's rank, ``>= H2``) or
        when it entered the strip already cold.  The escape pair itself
        was fully accounted by the gather-indexed aux tables, so the
        replay owes exactly the bytes after it.
        """
        m = int(esc.size)
        self.stats["escapes"] += m
        col = ids[:b, esc]
        h2 = self.num_hot2
        first = np.argmax(col >= h2, axis=0).astype(np.int64)
        ranks = col[first, np.arange(m)].astype(np.int64)
        t_start = 2 * (first + 1)
        precold = pre[esc].astype(np.int64) >= h2
        if precold.any():
            ranks[precold] = pre[esc[precold]].astype(np.int64)
            t_start[precold] = 0
        extra = [np.zeros(m, dtype=np.int64) for _ in accs]
        extra2d = None
        rows = None
        if slice_accs is not None:
            counts2d, rows = slice_accs
            extra2d = np.zeros((len(rows), m), dtype=np.int64)
        w = self._w
        utr = self.utr
        twob = 2 * b
        lo = int(t_start.min())
        for t in range(lo, twob):
            act = np.nonzero(t_start <= t)[0]
            raw = mat[esc[act], byte0 + t].astype(np.int64)
            nr = utr[ranks[act] * w + self.foldv[raw]].astype(np.int64)
            ranks[act] = nr
            for (_, wts), ex in zip(accs, extra):
                if wts is None:
                    ex[act] += self.fstate[nr]
                else:
                    ex[act] += self.wstate[nr]
            if extra2d is not None:
                extra2d[:, act] += rows[:, nr]
            self.stats["cold_steps"] += int(act.size)
        for (acc, _), ex in zip(accs, extra):
            acc[esc] += ex
        if extra2d is not None:
            counts2d[:, esc] += extra2d
        cur[esc] = ranks.astype(np.int16)

    def _single_steps(self, mat: np.ndarray, cur: np.ndarray,
                      t0: int, t1: int, accs,
                      slice_accs) -> np.ndarray:
        """One-byte rank-space steps (edge bytes of unaligned spans
        and odd tails), vectorized across lanes — exact at any rank,
        hot or cold."""
        rows = None
        if slice_accs is not None:
            counts2d, rows = slice_accs
        w = self._w
        r = cur.astype(np.int64)
        for t in range(t0, t1):
            syms = self.foldv[mat[:, t].astype(np.int64)]
            r = self.utr[r * w + syms].astype(np.int64)
            for acc, wts in accs:
                if wts is None:
                    acc += self.fstate[r]
                else:
                    acc += self.wstate[r]
            if rows is not None:
                counts2d += rows[:, r]
        return r.astype(np.int16)

    # -- block scanning ----------------------------------------------------------

    def count_arr_per_dfa(self, arr: np.ndarray, chunks: int,
                          entry_states=None,
                          weights: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-slice ``(counts, exit_states)`` from one pair-
        stride union pass; same contract as the base scanner's.  The
        per-slice accumulation is D-invariant: one flag gather per
        strip plus a sparse scatter at union-final hits."""
        t = self.table.base
        if t.slice_maps is None:
            raise DFAError("hot/cold table was built without slice maps")
        ndfa = len(t.slice_maps)
        start_imgs = t.slice_maps[:, self.start].astype(np.int64)
        if entry_states is not None:
            states = np.asarray(entry_states, dtype=np.int64)
            if not np.array_equal(states, start_imgs):
                raise DFAError(
                    "hot/cold per-DFA scans enter at the union start "
                    "state; arbitrary per-DFA entry states are not "
                    "realizable in the union state space")
        if arr.size == 0:
            return np.zeros(ndfa, dtype=np.int64), start_imgs
        rows = self._slice_rows(flags=weights is None)
        totals, exit_state = self._chunked_multi(arr, chunks, rows)
        return totals, t.slice_maps[:, exit_state].astype(np.int64)

    def _chunked_multi(self, arr: np.ndarray, chunks: int,
                       rows: np.ndarray) -> Tuple[np.ndarray, int]:
        if chunks < 1:
            raise DFAError("chunks must be >= 1")
        n = int(arr.size)
        ndfa = len(rows)
        chunks = min(n, max(int(chunks),
                            min(hotcold_lanes_target(), n // MIN_PIECE)))
        piece_len = n // chunks
        remainder = n - piece_len * chunks
        head = np.zeros(ndfa, dtype=np.int64)
        ptr = self.pointer(self.start)
        for sym in arr[:remainder].tolist():
            ptr = self.step_scalar(ptr, sym)
            head += rows[:, ptr >> 1]
        staged = self.stage_lanes(
            arr[remainder:].reshape(chunks, piece_len))
        entry = np.full(chunks, self.pointer(self.start), dtype=np.int32)
        entry[0] = ptr
        if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
            sink = np.zeros(chunks - 1, dtype=np.int64)
            entry[1:] = self.scan_lanes(
                staged, slice(0, chunks - 1),
                piece_len - SPECULATION_WARMUP, piece_len,
                entry[1:].copy(), sink)
        exits = np.empty(chunks, dtype=np.int32)
        counts = np.zeros((ndfa, chunks), dtype=np.int64)
        todo = np.arange(chunks)
        for _ in range(chunks + 1):
            sel = None if todo.size == chunks else todo
            part = np.zeros((ndfa, todo.size), dtype=np.int64)
            fin = self.scan_lanes_slices(staged, sel, 0, piece_len,
                                         entry[todo], part, rows)
            counts[:, todo] = part
            exits[todo] = fin
            wrong = np.nonzero((exits[:-1] >> 1)
                               != (entry[1:] >> 1))[0] + 1
            if wrong.size == 0:
                break
            entry[wrong] = exits[wrong - 1]
            todo = wrong
        else:
            raise DFAError("pair chunk fixpoint failed to converge; "
                           "this indicates a bug, not an input property")
        return head + counts.sum(axis=1), int(self.state_of(exits[-1]))

    # -- multi-stream scanning ---------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`HotColdFusedScanner.run_streams` at pair stride.

        Ragged segment boundaries and zero/odd-length streams are
        exact: each lockstep segment re-aligns its own pair phase and
        takes single rank steps at unaligned edges, and resumed
        streams re-enter through canonical rank pointers.
        """
        nstreams = len(streams)
        if not nstreams:
            raise DFAError("at least one stream required")
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        maxlen = int(sorted_lens[0])
        if start_states is not None:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.num_states):
                raise DFAError("start state out of range")
            ranks = self.rank_of[states[order]]
            ptrs = (ranks * 2 + self.fstate[ranks]).astype(np.int32)
        else:
            ptrs = np.full(nstreams, self.pointer(self.start),
                           dtype=np.int32)
        counts = np.zeros(nstreams, dtype=np.int64)
        if maxlen:
            pad = maxlen + (maxlen & 1)
            mat = np.zeros((nstreams, pad), dtype=np.uint8)
            for k, oi in enumerate(order):
                s = streams[oi]
                if len(s):
                    mat[k, :len(s)] = np.frombuffer(s, dtype=np.uint8)
            staged = self.stage_lanes(mat)
            for lo, hi, active in _ragged_segments(sorted_lens):
                fin = self.scan_lanes(staged, slice(0, active), lo, hi,
                                      ptrs[:active], counts[:active],
                                      weights=weights)
                ptrs[:active] = fin
        out_counts = np.empty_like(counts)
        out_ptrs = np.empty_like(ptrs)
        out_counts[order] = counts
        out_ptrs[order] = ptrs
        return out_counts, np.asarray(self.state_of(out_ptrs),
                                      dtype=np.int64)


def _transpose_cols(mat: np.ndarray) -> np.ndarray:
    """Lane-major ``(chunks, piece)`` → contiguous position-major
    ``(piece, chunks)``, transposed in column blocks so each block's
    working set stays cache-resident (~3x faster than one
    ``ascontiguousarray`` of the full transpose at 8 MB inputs)."""
    lanes, piece = mat.shape
    out = np.empty((piece, lanes), dtype=mat.dtype)
    step = 512
    for j in range(0, lanes, step):
        out[:, j:j + step] = mat[j:j + step].T
    return out


def _chunked_scan(scanner: FlatScanner, arr: np.ndarray, chunks: int,
                  entry_state: int, max_passes: Optional[int] = None,
                  weights: Optional[np.ndarray] = None,
                  lanes_target: Optional[int] = None):
    """Shared core of :func:`count_arr` / :func:`count_arr_detail`.

    Requires ``arr.size > 0``.  Returns ``(remainder, head_count,
    head_exit_ptr, piece_counts, piece_exit_ptrs)`` where the scalar head
    covers ``arr[:remainder]`` and the pieces tile the rest equally.
    """
    if chunks < 1:
        # Guard here, not only in the public wrappers: a zero floor used
        # to fall through to ``n // 0`` on inputs shorter than MIN_PIECE.
        raise DFAError("chunks must be >= 1")
    lane_floor = LANES_TARGET if lanes_target is None else int(lanes_target)
    n = int(arr.size)
    chunks = min(n, max(int(chunks), min(lane_floor, n // MIN_PIECE)))
    piece_len = n // chunks
    remainder = n - piece_len * chunks

    head_count = 0
    ptr = scanner.pointer(entry_state)
    for sym in arr[:remainder]:
        ptr = scanner.step_scalar(ptr, sym)
        if weights is None:
            head_count += ptr & 1
        else:
            head_count += int(weights[ptr >> 1])

    mat = arr[remainder:].reshape(chunks, piece_len)
    if hasattr(scanner, "stage_lanes"):
        # Pair-stride scanners stage symbols lane-major once; every
        # pass (and the warmup) scans windows of the staged block.
        staged = scanner.stage_lanes(mat)

        def scan_span(sel, t0, entries, sink, wts):
            return scanner.scan_lanes(staged, sel, t0, piece_len,
                                      entries, sink, weights=wts)
    else:
        # One position-major matrix, built once, indexed per pass.
        cols = _transpose_cols(mat)

        def scan_span(sel, t0, entries, sink, wts):
            sub = cols[t0:]
            if sel is not None:
                sub = sub[:, sel]
            if t0 or sel is not None:
                sub = np.ascontiguousarray(sub)
            return scanner.scan_cols(sub, entries, sink, weights=wts)

    entry = np.full(chunks, scanner.pointer(scanner.start), dtype=np.int32)
    entry[0] = ptr                       # chunk 0's entry is exact
    if chunks > 1 and piece_len >= 8 * SPECULATION_WARMUP:
        # Warm the guesses: chunk k+1's entry is approximated by scanning
        # the last SPECULATION_WARMUP symbols of chunk k from the start
        # state.  Counts from this scan are discarded.
        sink = np.zeros(chunks - 1, dtype=np.int64)
        entry[1:] = scan_span(slice(0, chunks - 1),
                              piece_len - SPECULATION_WARMUP,
                              entry[1:].copy(), sink, None)
    exits = np.empty(chunks, dtype=np.int32)
    counts = np.zeros(chunks, dtype=np.int64)
    todo = np.arange(chunks)
    passes = max_passes if max_passes is not None else chunks + 1

    for _ in range(passes):
        sel = None if todo.size == chunks else todo
        part = np.zeros(todo.size, dtype=np.int64)
        fin = scan_span(sel, 0, entry[todo], part, weights)
        counts[todo] = part
        exits[todo] = fin
        # Propagate corrected entries (compare modulo the flag bit: two
        # pointers to the same row scan identically).
        wrong = np.nonzero((exits[:-1] >> 1) != (entry[1:] >> 1))[0] + 1
        if wrong.size == 0:
            break
        entry[wrong] = exits[wrong - 1]
        todo = wrong
    else:
        raise DFAError("chunk fixpoint failed to converge; this "
                       "indicates a bug, not an input property")
    return remainder, head_count, ptr, counts, exits


def count_arr(scanner: FlatScanner, arr: np.ndarray, chunks: int,
              entry_state: int, max_passes: Optional[int] = None,
              weights: Optional[np.ndarray] = None,
              lanes_target: Optional[int] = None) -> Tuple[int, int]:
    """Exact speculative count over one folded symbol array.

    The array is cut into *equal* pieces (a scalar head scan absorbs the
    division remainder, so the lockstep matrix needs no padding and
    rebuilds never happen); pieces are scanned in lockstep from guessed
    entry states and the guesses are repaired to a fixpoint.  Only the
    mis-guessed columns are re-scanned on later passes — they are
    *indexed out* of the one position-major matrix built up front.

    ``chunks`` is a floor, not an exact count: large inputs are widened
    to ``LANES_TARGET`` lanes (see the constant above) because lane width
    sets the gather width and thus the dispatch overhead per byte, while
    the count is semantically only a speculation granularity.

    Returns ``(count, exit_state)``.
    """
    if arr.size == 0:
        return 0, int(entry_state)
    _, head, _, counts, exits = _chunked_scan(
        scanner, arr, chunks, entry_state, max_passes, weights,
        lanes_target)
    return head + int(counts.sum()), int(scanner.state_of(exits[-1]))


@dataclass
class ScanDetail:
    """A chunked scan's per-segment ledger, for cheap entry repair.

    Segment 0 is the scalar head (possibly empty), segments 1.. are the
    equal lockstep pieces.  ``seg_exits[k]`` is the DFA *state* at
    ``seg_bounds[k + 1]`` given ``entry_state`` at position 0.  Whoever
    later learns the true entry state can call :func:`repair_detail`
    instead of rescanning the whole array: rescan leading segments until
    the state trajectory rejoins the recorded one, then splice.
    """

    entry_state: int
    seg_bounds: np.ndarray    # int64, len = segments + 1, [0 .. arr.size]
    seg_counts: np.ndarray    # int64 per segment
    seg_exits: np.ndarray     # int32 exit state per segment

    @property
    def total(self) -> int:
        return int(self.seg_counts.sum())

    @property
    def exit_state(self) -> int:
        if self.seg_exits.size == 0:
            return int(self.entry_state)
        return int(self.seg_exits[-1])


def count_arr_detail(scanner: FlatScanner, arr: np.ndarray, chunks: int,
                     entry_state: int,
                     weights: Optional[np.ndarray] = None,
                     lanes_target: Optional[int] = None) -> ScanDetail:
    """:func:`count_arr`, but returning the per-segment ledger."""
    if arr.size == 0:
        return ScanDetail(int(entry_state),
                          np.zeros(1, dtype=np.int64),
                          np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int32))
    remainder, head, head_ptr, counts, exits = _chunked_scan(
        scanner, arr, chunks, entry_state, None, weights, lanes_target)
    pieces = counts.size
    piece_len = (int(arr.size) - remainder) // pieces
    bounds = np.empty(pieces + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:] = remainder + piece_len * np.arange(pieces + 1,
                                                   dtype=np.int64)
    seg_counts = np.concatenate(([head], counts)).astype(np.int64)
    seg_exits = np.concatenate(
        ([int(scanner.state_of(head_ptr))],
         np.asarray(scanner.state_of(exits)))).astype(np.int32)
    return ScanDetail(int(entry_state), bounds, seg_counts, seg_exits)


def repair_detail(scanner: FlatScanner, arr: np.ndarray, detail: ScanDetail,
                  entry_state: int, chunks: int,
                  weights: Optional[np.ndarray] = None) -> Tuple[int, int]:
    """Exact ``(count, exit_state)`` of ``arr`` from ``entry_state``,
    reusing a previous scan's :class:`ScanDetail`.

    If the entry matches the recorded one, the recorded totals stand.
    Otherwise leading segments are rescanned from the corrected state
    until the trajectory hits a recorded segment-boundary state — from
    there on determinism makes the recorded counts exact — so a wrong
    speculative entry typically costs one segment, not the whole array
    (Ko et al.'s speculative-repair argument applied at the ledger's
    granularity).  Degenerates to a full rescan only when the trajectory
    never rejoins.

    ``chunks`` deliberately has no default: repair rescans must use the
    caller's chunking policy, not a magic constant that would silently
    override the lane floor.
    """
    if int(entry_state) == detail.entry_state:
        return detail.total, detail.exit_state
    state = int(entry_state)
    total = 0
    for k in range(detail.seg_counts.size):
        lo = int(detail.seg_bounds[k])
        hi = int(detail.seg_bounds[k + 1])
        cnt, state = count_arr(scanner, arr[lo:hi], chunks, state,
                               weights=weights)
        total += cnt
        if state == int(detail.seg_exits[k]):
            return (total + int(detail.seg_counts[k + 1:].sum()),
                    detail.exit_state)
    return total, state


@dataclass
class StreamResult:
    """Outcome of a lockstep multi-stream scan."""

    counts: np.ndarray         # matches per stream
    final_states: np.ndarray   # DFA state per stream after the scan

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class VectorDFAEngine:
    """Lockstep vectorized interpreter for a dense DFA."""

    def __init__(self, dfa: DFA) -> None:
        self.dfa = dfa
        # Contiguous copies kept for introspection and the Cell encoders;
        # the hot loop runs on the flag-encoded flat table below.
        self.table = np.ascontiguousarray(dfa.transitions, dtype=np.int32)
        self.final = np.ascontiguousarray(dfa.final_mask)
        self.start = dfa.start
        self.scanner = FlatScanner.from_dfa(dfa)

    # -- lockstep streams ---------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes],
                    start_states: Optional[np.ndarray] = None,
                    weights: Optional[np.ndarray] = None) -> StreamResult:
        """Scan independent streams in lockstep (one gather per position).

        Streams may have different lengths: lanes are sorted by length
        and retired as their streams end, so each lane advances exactly
        ``len(stream)`` steps and a zero-length stream keeps its entry
        state.  With ``weights`` (see :func:`build_weight_table`) counts
        are per-dictionary-entry multiplicities; without, +1 per
        final-state entry (the paper's kernel semantics).
        """
        if not len(streams):
            raise DFAError("at least one stream required")
        n = len(streams)
        lens = np.asarray([len(s) for s in streams], dtype=np.int64)
        length = int(lens.max())
        if start_states is not None:
            states = np.asarray(start_states, dtype=np.int64)
            if states.size and (states.min() < 0
                                or states.max() >= self.dfa.num_states):
                raise DFAError("start state out of range")
        if length == 0:
            states = np.full(n, self.start, dtype=np.int32) \
                if start_states is None else start_states.astype(np.int32)
            return StreamResult(np.zeros(n, dtype=np.int64), states)

        equal = bool((lens == length).all())
        order = np.arange(n) if equal else np.argsort(-lens,
                                                      kind="stable")
        # Fill the position-major matrix directly — no row-major staging
        # copy followed by a transposed second copy.  Ragged lanes are
        # laid out longest-first so the live lanes form a prefix.
        cols = np.zeros((length, n), dtype=np.uint8)
        for k, oi in enumerate(order):
            s = streams[oi]
            arr = np.frombuffer(s, dtype=np.uint8)
            if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
                raise DFAError(
                    f"stream {oi} contains symbols outside the "
                    f"{self.dfa.alphabet_size}-symbol alphabet; fold first")
            cols[:arr.size, k] = arr
        scanner = self.scanner
        if start_states is None:
            ptrs = np.full(n, scanner.pointer(self.start), dtype=np.int32)
        else:
            ptrs = (states[order] * scanner.stride).astype(np.int32)
        counts = np.zeros(n, dtype=np.int64)
        if equal:
            fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
            ptrs = np.asarray(fin, dtype=np.int32)
        else:
            for lo, hi, active in _ragged_segments(lens[order]):
                fin = scanner.scan_cols(cols[lo:hi, :active],
                                        ptrs[:active], counts[:active],
                                        weights=weights)
                ptrs[:active] = fin
        out_counts = np.empty_like(counts)
        out_states = np.empty(n, dtype=np.int32)
        out_counts[order] = counts
        out_states[order] = scanner.state_of(ptrs).astype(np.int32)
        return StreamResult(out_counts, out_states)

    # -- exact single-stream scan ------------------------------------------------

    def _folded_view(self, block: bytes) -> np.ndarray:
        arr = np.frombuffer(block, dtype=np.uint8)
        if arr.size and int(arr.max()) >= self.dfa.alphabet_size:
            raise DFAError("block contains symbols outside the alphabet; "
                           "fold first")
        return arr

    def count_block(self, block: bytes, chunks: int = 256,
                    max_passes: Optional[int] = None) -> int:
        """Exact match count over one contiguous stream.

        Splits the stream into ``chunks`` pieces scanned in lockstep; entry
        states are guessed (start state), then corrected iteratively: after
        each pass, any chunk whose actual entry state (the exit state of
        its predecessor) differs from its guess is rescanned.  Guaranteed
        to terminate in at most ``chunks`` passes (``max_passes`` defaults
        to that bound); security-style DFAs almost always converge in two.
        More chunks means wider gathers and fewer numpy dispatches per
        byte, which is why the default is generous.
        """
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        arr = self._folded_view(block)
        if arr.size == 0:
            return 0
        count, _ = count_arr(self.scanner, arr, chunks, self.start,
                             max_passes=max_passes)
        return count

    def count_block_from(self, block: bytes, entry_state: int,
                         chunks: int = 256,
                         max_passes: Optional[int] = None
                         ) -> Tuple[int, int]:
        """Like :meth:`count_block` but from an arbitrary entry state,
        also returning the exit state — the primitive the host-parallel
        shard repair (:mod:`repro.parallel`) is built on."""
        if chunks <= 0:
            raise DFAError("chunks must be positive")
        if not 0 <= entry_state < self.dfa.num_states:
            raise DFAError(f"entry state {entry_state} out of range")
        arr = self._folded_view(block)
        return count_arr(self.scanner, arr, chunks, entry_state,
                         max_passes=max_passes)

    def count_block_reference(self, block: bytes) -> int:
        """Unchunked scan (for cross-validation in tests)."""
        return self.dfa.count_matches(block)
