"""Compatibility shim over the :mod:`repro.core.scan` package.

The vectorized DFA engine used to live here as one 2,400-line module.
It is now the staged :mod:`repro.core.scan` package — one module per
inner loop behind the :class:`~repro.core.scan.kernels.ScanKernel`
protocol.  Every name that was importable from ``repro.core.engine``
still is; new code should import from :mod:`repro.core.scan` (or go
through the kernel registry) instead.
"""

from __future__ import annotations

from ..dfa.automaton import DFA, DFAError  # noqa: F401  (historical re-export)
from .scan import *  # noqa: F401,F403
from .scan import (  # noqa: F401  (non-__all__ names callers relied on)
    FUSED_LANES_TARGET,
    FUSED_STRIP_ELEMS,
    HOT_BUDGET_BYTES,
    HOTCOLD_LANES_TARGET,
    HOTCOLD_STRIP_ELEMS,
    LANES_TARGET,
    MIN_PIECE,
    SPECULATION_WARMUP,
    STRIP,
    _chunked_scan,
    _env_int,
    _FusedSliceScanner,
    _ragged_segments,
    _StagedLanes,
    _transpose_cols,
)
from .scan import __all__ as __all__  # noqa: F401
