"""DFA-matching kernel builder: the five implementation versions of Table 1.

The paper evaluates five SPU implementations of the same DFA acceptor:

==========  =====================  =========================================
Version     Technique              Paper's result (cycles / transition)
==========  =====================  =========================================
1           scalar, sequential     19.00   (stalls 63%, CPI 2.6)
2           SIMD, 16 streams       7.57    (dual issue 44%, some stalls)
3           SIMD + unroll ×2       5.51
4           SIMD + unroll ×3       5.01    (peak: 5.11 Gbps @ 3.2 GHz)
5           SIMD + unroll ×4       5.61    (register spills)
==========  =====================  =========================================

This module is a small compiler back-end.  Given a tile layout (STT base,
input buffer, counter area) it emits real SPU instruction streams that the
:class:`~repro.cell.spu.SPU` simulator executes *functionally* — the match
counts they produce are checked against the reference DFA — while the
timing model produces the Table 1 statistics.

Kernel anatomy (paper Figure 4)
-------------------------------

Per 16-byte input quadword the SIMD kernel performs 16 independent DFA
transitions, one per byte lane:

1. ``lqd``    — load the quadword (one byte per stream);
2. ``shli 2`` — one SIMD shift turns all 16 symbols into row *offsets*;
   because symbols are < 32 (5 bits), the shifted value stays inside its
   byte and no cross-byte garbage appears — this is why the paper's folded
   32-symbol alphabet matters to the kernel itself, not just to the
   footprint;
3. per stream: extract the offset into a scalar slot (``rotqbyi`` +
   ``rotmi``), add the current state pointer (``a``), load the STT cell
   (``lqx`` + ``rotqby``), split off the final-flag bit into the match
   counter (``andi``/``a``) and keep the clean pointer as the next state.

The per-stream dependency chain is ~22 cycles; throughput comes from
overlapping the 16 independent chains.  The builder **software-pipelines**
them: one new chain enters the pipeline per scheduling round, at most
``depth`` chains are in flight (each owning a pair of temporary registers),
and each round's instructions are emitted even/odd-alternating to feed both
SPU pipelines.  The loop-level effect the paper describes emerges
naturally: the pipeline must drain at every loop back-edge, so version 2
(16 transitions per iteration) pays the fill/drain bubble 3× as often as
version 4 (48 per iteration) — that is precisely why manual unrolling wins.

Version 5 emulates the register-allocator spills the paper reports at
unroll factor 4: the per-stream match counters move to the local store,
adding a load/add/store triple to every transition.  (Our rotating-temp
allocation is tighter than GCC 4.0.2's, which kept per-unroll-instance
temporaries live across the whole body; absolute register counts therefore
differ from Table 1's 40/81/124 — the shape, including the spill cliff, is
what the benches reproduce.  See EXPERIMENTS.md.)

The scalar version 1 is software-pipelined by a single stage (the offset
for byte *t+1* is extracted while the table lookup for byte *t* resolves),
which is what an optimizing compiler achieves on the naive loop; its period
is the 19-cycle extraction chain, matching the paper's 19.00.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cell.local_store import LocalStore
from ..cell.program import Asm, Program
from .stt import STTImage

__all__ = [
    "KernelSpec",
    "BuiltKernel",
    "KernelBuilder",
    "KernelError",
    "KERNEL_SPECS",
    "SIMD_LANES",
]

#: Byte lanes of one 128-bit quadword = concurrent streams per tile.
SIMD_LANES = 16


class KernelError(Exception):
    """Raised for infeasible kernel requests (layout, alphabet, size)."""


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one implementation version."""

    version: int
    simd: bool
    unroll: int
    depth: int           # software-pipeline depth (in-flight chains)
    spill: bool          # counters spilled to local store (version 5)
    label: str
    admit: int = 1       # chains admitted into the pipeline per round

    @property
    def streams(self) -> int:
        return SIMD_LANES if self.simd else 1

    @property
    def transitions_per_iteration(self) -> int:
        return self.streams * self.unroll


#: The five Table 1 implementation versions.  ``depth``/``admit`` encode the
#: scheduling quality of each version (compiler-scheduled for version 2,
#: increasingly aggressive hand-unrolled pipelining for 3-5); they were
#: calibrated once against Table 1 and are fixed here.
KERNEL_SPECS: Dict[int, KernelSpec] = {
    1: KernelSpec(1, False, 1, 1, False, "scalar"),
    2: KernelSpec(2, True, 1, 9, False, "SIMD", admit=1),
    3: KernelSpec(3, True, 2, 14, False, "SIMD + unroll 2", admit=2),
    4: KernelSpec(4, True, 3, 16, False, "SIMD + unroll 3", admit=3),
    5: KernelSpec(5, True, 4, 16, True, "SIMD + unroll 4 (spills)",
                  admit=3),
}


@dataclass
class BuiltKernel:
    """An assembled kernel plus everything needed to run and read it."""

    program: Program
    spec: KernelSpec
    iterations: int
    transitions: int          # actual transitions executed (padded up)
    input_base: int
    counters_base: int
    states_base: Optional[int]
    alphabet_size: int
    start_pointer: int

    @property
    def block_bytes(self) -> int:
        """Input bytes the kernel consumes (== transitions)."""
        return self.transitions

    @property
    def num_streams(self) -> int:
        return self.spec.streams

    def read_counts(self, local_store: LocalStore) -> List[int]:
        """Per-stream match counts from the counter area (word 0 of each
        16-byte counter slot)."""
        counts = []
        for i in range(self.num_streams):
            raw = local_store.read(self.counters_base + 16 * i, 4)
            counts.append(int.from_bytes(raw, "big"))
        return counts

    def write_start_states(self, local_store: LocalStore) -> None:
        """Initialize the state-save area with the start-state row pointer
        (call once per logical stream batch; later blocks carry state)."""
        if self.states_base is None:
            raise KernelError("kernel built without a state-save area")
        for i in range(self.num_streams):
            local_store.write(self.states_base + 16 * i,
                              self.start_pointer.to_bytes(4, "big")
                              + bytes(12))

    def read_states(self, local_store: LocalStore) -> List[int]:
        """Saved per-stream state pointers after a run."""
        if self.states_base is None:
            raise KernelError("kernel built without a state-save area")
        out = []
        for i in range(self.num_streams):
            raw = local_store.read(self.states_base + 16 * i, 4)
            out.append(int.from_bytes(raw, "big"))
        return out


# Register map.  r0 stays zero (used as the lqx base); everything else is
# assigned statically by the builder.
_R_ZERO = 0
_R_INPTR = 1
_R_REM = 2
_R_CBASE = 3
_R_SBASE = 4  # state-save area base (when states persist across blocks)
_R_DYN = 5  # first dynamically assigned register


class _Chain:
    """Book-keeping for one in-flight transition chain."""

    __slots__ = ("u", "i", "t1", "t2", "stage")

    def __init__(self, u: int, i: int, t1: int, t2: int) -> None:
        self.u = u
        self.i = i
        self.t1 = t1
        self.t2 = t2
        self.stage = 0


class _Round:
    """One scheduling round: instructions collected per pipe, then emitted
    alternating even/odd so adjacent instructions can dual-issue."""

    def __init__(self) -> None:
        self.even: List[Tuple] = []   # (method_name, args, comment)
        self.odd: List[Tuple] = []

    def emit(self, asm: Asm) -> None:
        # Alternate, starting with the longer list so leftovers cluster at
        # the end rather than breaking pairs early.
        first, second = (self.even, self.odd) \
            if len(self.even) >= len(self.odd) else (self.odd, self.even)
        n = max(len(first), len(second))
        for j in range(n):
            if j < len(first):
                name, args, comment = first[j]
                getattr(asm, name)(*args, comment)
            if j < len(second):
                name, args, comment = second[j]
                getattr(asm, name)(*args, comment)


class KernelBuilder:
    """Emit SPU programs for the five implementation versions.

    Parameters
    ----------
    stt:
        The encoded state-transition table (provides base, stride, start
        pointer and the alphabet width).
    input_base / counters_base:
        Local-store addresses of the input block and the counter area
        (16-byte slot per stream).
    input_capacity:
        Size of the input region; builds that would overrun it fail.
    """

    def __init__(self, stt: STTImage, input_base: int, counters_base: int,
                 states_base: Optional[int] = None,
                 input_capacity: Optional[int] = None) -> None:
        if input_base % 16 or counters_base % 16:
            raise KernelError("input and counter areas must be 16-byte "
                              "aligned")
        if states_base is not None and states_base % 16:
            raise KernelError("state-save area must be 16-byte aligned")
        self.stt = stt
        self.input_base = input_base
        self.counters_base = counters_base
        self.states_base = states_base
        self.input_capacity = input_capacity
        # The single-SIMD-shift offset trick needs symbol << 2 to stay
        # inside its byte: alphabet width up to 64.
        self.packed_offsets = stt.alphabet_size <= 64

    # -- public API -------------------------------------------------------------

    def build(self, version: int, transitions: int) -> BuiltKernel:
        """Assemble implementation ``version`` for ≥ ``transitions``
        transitions (rounded up to a whole number of loop iterations,
        exactly like Table 1 rounds 16384 up to 16416 for unroll 3)."""
        if version not in KERNEL_SPECS:
            raise KernelError(f"unknown implementation version {version}; "
                              f"choose 1..5")
        if transitions <= 0:
            raise KernelError("transitions must be positive")
        spec = KERNEL_SPECS[version]
        per_iter = spec.transitions_per_iteration
        iterations = -(-transitions // per_iter)
        actual = iterations * per_iter
        if self.input_capacity is not None and actual > self.input_capacity:
            raise KernelError(
                f"{actual} transition bytes exceed the {self.input_capacity}"
                f"-byte input buffer")
        if spec.simd:
            program = self._build_simd(spec, iterations)
        else:
            program = self._build_scalar(iterations)
        return BuiltKernel(
            program=program,
            spec=spec,
            iterations=iterations,
            transitions=actual,
            input_base=self.input_base,
            counters_base=self.counters_base,
            states_base=self.states_base,
            alphabet_size=self.stt.alphabet_size,
            start_pointer=self.stt.start_pointer,
        )

    # -- shared helpers --------------------------------------------------------

    def _load_const(self, asm: Asm, reg: int, value: int,
                    comment: str = "") -> None:
        """Load a 32-bit constant: one ``il`` when it fits 16 signed bits,
        else the ``ilhu``/``iohl`` pair."""
        if -(1 << 15) <= value < (1 << 15):
            asm.il(reg, value & 0xFFFF, comment)
        else:
            asm.ilhu(reg, (value >> 16) & 0xFFFF, comment)
            asm.iohl(reg, value & 0xFFFF)

    # -- version 1: scalar ---------------------------------------------------------

    def _build_scalar(self, iterations: int) -> Program:
        """Sequential acceptor, software-pipelined by one stage: while the
        table lookup of byte *t* resolves, the offset of byte *t+1* is
        extracted from the input.  The 19-cycle extraction chain
        (lqx 6 + rotqby 4 + rotmi 4 + shli 4 + issue) is the period —
        the paper's 19.00 cycles per transition."""
        r_inbase, r_idx, r_state, r_cnt = 5, 6, 7, 8
        r_q, r_sym, r_off, r_addr, r_row, r_flag = 9, 10, 11, 12, 13, 14

        asm = Asm()
        asm.hbr("loop", "hint the loop-closing branch")
        asm.ila(r_inbase, self.input_base, "input block base")
        asm.il(r_idx, 0, "index of the *next* byte to extract")
        self._load_const(asm, _R_REM, iterations, "transition count")
        if self.states_base is not None:
            asm.ila(_R_SBASE, self.states_base)
            asm.lqd(r_state, _R_SBASE, 0, "resume saved DFA state")
        else:
            asm.ila(r_state, self.stt.start_pointer,
                    "state = start row ptr")
        asm.il(r_cnt, 0, "match counter")
        asm.ila(_R_CBASE, self.counters_base)

        # Pipeline preamble: extract the offset of byte 0.
        asm.lqx(r_q, r_inbase, r_idx, "preload quadword of byte 0")
        asm.rotqby(r_q, r_q, r_idx)
        asm.rotmi(r_sym, r_q, 24)
        asm.shli(r_off, r_sym, 2, "offset of byte 0")
        asm.ai(r_idx, r_idx, 1)

        asm.label("loop")
        # Steady state: r_off holds the offset of byte t, r_idx points at
        # byte t+1.  Table lookup for t overlaps extraction for t+1.
        asm.a(r_addr, r_state, r_off, "cell address (byte t)")
        asm.lqx(r_q, r_inbase, r_idx, "load quadword of byte t+1")
        asm.lqx(r_row, _R_ZERO, r_addr, "load STT quadword")
        asm.rotqby(r_q, r_q, r_idx, "byte t+1 -> byte 0")
        asm.rotqby(r_row, r_row, r_addr, "cell word -> word 0")
        asm.rotmi(r_sym, r_q, 24, "zero-extend byte t+1")
        asm.andi(r_state, r_row, -2, "strip flag: next state ptr")
        asm.andi(r_flag, r_row, 1, "final-state flag")
        asm.shli(r_off, r_sym, 2, "offset of byte t+1")
        asm.a(r_cnt, r_cnt, r_flag, "count matches")
        asm.ai(r_idx, r_idx, 1)
        asm.ai(_R_REM, _R_REM, -1)
        asm.brnz(_R_REM, "loop")

        asm.stqd(r_cnt, _R_CBASE, 0, "store match count")
        if self.states_base is not None:
            asm.stqd(r_state, _R_SBASE, 0, "save DFA state for next block")
        asm.stop()
        return asm.finish()

    # -- versions 2-5: SIMD ----------------------------------------------------------

    # Chain stage table: (pipe, emitter) per stage; None = pipeline bubble
    # inserted after the 6-cycle lqx so the dependent rotqby is two rounds
    # downstream and never stalls.
    _BUBBLE = "bubble"

    def _build_simd(self, spec: KernelSpec, iterations: int) -> Program:
        k = spec.unroll
        depth = spec.depth
        if not 1 <= depth <= SIMD_LANES:
            raise KernelError("pipeline depth must be 1..16")
        if 16 * k > 0x1FF:
            raise KernelError("unroll factor too large for ai displacement")

        # Static register map.
        r_q = [_R_DYN + u for u in range(k)]
        r_qs = [_R_DYN + k + u for u in range(k)] if self.packed_offsets \
            else r_q
        next_free = _R_DYN + (2 * k if self.packed_offsets else k)
        r_state = [next_free + i for i in range(SIMD_LANES)]
        next_free += SIMD_LANES
        if spec.spill:
            r_cnt: List[int] = []
        else:
            r_cnt = [next_free + i for i in range(SIMD_LANES)]
            next_free += SIMD_LANES
        temp_pool = [(next_free + 2 * j, next_free + 2 * j + 1)
                     for j in range(depth)]
        next_free += 2 * depth
        if next_free > 128:
            raise KernelError(
                f"register demand {next_free} exceeds the 128-entry file; "
                f"reduce depth or unroll")

        asm = Asm()
        asm.hbr("loop", "hint the loop-closing branch")
        asm.ila(_R_INPTR, self.input_base, "interleaved input base")
        self._load_const(asm, _R_REM, iterations, "iteration count")
        asm.ila(_R_CBASE, self.counters_base)
        if self.states_base is not None:
            asm.ila(_R_SBASE, self.states_base)
            for i in range(SIMD_LANES):
                asm.lqd(r_state[i], _R_SBASE, 16 * i,
                        f"DFA {i}: resume saved state")
        else:
            for i in range(SIMD_LANES):
                asm.ila(r_state[i], self.stt.start_pointer,
                        f"DFA {i}: state = start row ptr")
        if spec.spill:
            # Counters live in the local store; zero their slots.
            t = temp_pool[0][0]
            asm.il(t, 0)
            for i in range(SIMD_LANES):
                asm.stqd(t, _R_CBASE, 16 * i, f"zero spilled counter {i}")
        else:
            for i in range(SIMD_LANES):
                asm.il(r_cnt[i], 0, f"DFA {i}: match counter")

        asm.label("loop")
        self._emit_iteration(asm, spec, r_q, r_qs, r_state, r_cnt, temp_pool)
        asm.ai(_R_INPTR, _R_INPTR, 16 * k, "advance input pointer")
        asm.ai(_R_REM, _R_REM, -1)
        asm.brnz(_R_REM, "loop")

        if not spec.spill:
            for i in range(SIMD_LANES):
                asm.stqd(r_cnt[i], _R_CBASE, 16 * i,
                         f"store match count {i}")
        if self.states_base is not None:
            for i in range(SIMD_LANES):
                asm.stqd(r_state[i], _R_SBASE, 16 * i,
                         f"save DFA {i} state for next block")
        asm.stop()
        return asm.finish()

    def _emit_iteration(self, asm: Asm, spec: KernelSpec,
                        r_q: List[int], r_qs: List[int],
                        r_state: List[int], r_cnt: List[int],
                        temp_pool: List[Tuple[int, int]]) -> None:
        """Software-pipelined body.

        One chain is admitted per round; every in-flight chain advances one
        stage per round; each round's instructions are emitted even/odd-
        alternating.  Input quadword *u+1* is prefetched (``lqd`` then the
        SIMD ``shli``) while the chains of quadword *u* start, so its data
        is long ready when needed; quadword 0's prefetch forms the
        iteration preamble — the per-back-edge bubble that manual unrolling
        amortizes.
        """
        k = spec.unroll
        order = [(u, i) for u in range(k) for i in range(SIMD_LANES)]
        pool = list(temp_pool)
        inflight: List[_Chain] = []
        done_chains = set()
        idx = 0
        # extras scheduled for future rounds: round_no -> list of
        # (pipe, method, args, comment)
        extras: Dict[int, List[Tuple[str, str, tuple, str]]] = {}
        prefetched = set()
        round_no = 0

        # Iteration preamble: fetch quadword 0.
        asm.lqd(r_q[0], _R_INPTR, 0, "load input quadword 0")
        if self.packed_offsets:
            asm.shli(r_qs[0], r_q[0], 2,
                     "SIMD shift: 16 symbols -> 16 row offsets")
        prefetched.add(0)

        while idx < len(order) or inflight or extras:
            rnd = _Round()
            for pipe, method, args, comment in extras.pop(round_no, []):
                (rnd.even if pipe == "even" else rnd.odd).append(
                    (method, args, comment))
            admitted = 0
            while (admitted < spec.admit and len(inflight) < spec.depth
                   and idx < len(order) and pool):
                u, i = order[idx]
                # State-register hazard: the chain for (u, i) reads and
                # rewrites state[i]; its predecessor (u-1, i) must have
                # been fully emitted first.
                if u > 0 and (u - 1, i) not in done_chains:
                    break
                if i == 0 and u + 1 < k and (u + 1) not in prefetched:
                    # Prefetch the next quadword well ahead of its chains.
                    rnd.odd.append(("lqd", (r_q[u + 1], _R_INPTR,
                                            16 * (u + 1)),
                                    f"prefetch input quadword {u + 1}"))
                    if self.packed_offsets:
                        extras.setdefault(round_no + 2, []).append(
                            ("even", "shli", (r_qs[u + 1], r_q[u + 1], 2),
                             f"offsets of quadword {u + 1}"))
                    prefetched.add(u + 1)
                t1, t2 = pool.pop(0)
                inflight.append(_Chain(u, i, t1, t2))
                idx += 1
                admitted += 1
            for chain in list(inflight):
                done = self._stage_into(rnd, spec, chain, r_qs, r_state,
                                        r_cnt)
                if done:
                    inflight.remove(chain)
                    done_chains.add((chain.u, chain.i))
                    pool.append((chain.t1, chain.t2))
            rnd.emit(asm)
            round_no += 1

    def _stage_into(self, rnd: _Round, spec: KernelSpec, chain: "_Chain",
                    r_qs: List[int], r_state: List[int],
                    r_cnt: List[int]) -> bool:
        """Queue the next instruction of one chain into the round; returns
        True when the chain is complete."""
        u, i, t1, t2 = chain.u, chain.i, chain.t1, chain.t2
        s = chain.stage
        chain.stage += 1
        packed = self.packed_offsets

        # Stage list differs by mode: the unpacked (wide-alphabet) variant
        # needs an extra per-stream shli.
        if s == 0:
            rnd.odd.append(("rotqbyi", (t1, r_qs[u], i),
                            f"q{u}: byte {i} -> byte 0"))
            return False
        if s == 1:
            rnd.even.append(("rotmi", (t1, t1, 24),
                             f"dfa {i}: offset into word 0"))
            return False
        if s == 2:
            if packed:
                rnd.even.append(("a", (t2, r_state[i], t1),
                                 f"dfa {i}: cell address"))
            else:
                rnd.even.append(("shli", (t1, t1, 2),
                                 f"dfa {i}: symbol -> row offset"))
            return False
        if s == 3 and not packed:
            rnd.even.append(("a", (t2, r_state[i], t1),
                             f"dfa {i}: cell address"))
            return False
        s_adj = s if packed else s - 1
        if s_adj == 3:
            rnd.odd.append(("lqx", (t1, _R_ZERO, t2),
                            f"dfa {i}: load STT quadword"))
            return False
        if s_adj == 4:
            # Bubble: give the 6-cycle load two rounds before its use.
            return False
        if s_adj == 5:
            rnd.odd.append(("rotqby", (t1, t1, t2),
                            f"dfa {i}: cell -> word 0"))
            return False
        if s_adj == 6:
            rnd.even.append(("andi", (r_state[i], t1, -2),
                             f"dfa {i}: next state ptr"))
            return False
        if s_adj == 7:
            rnd.even.append(("andi", (t2, t1, 1), f"dfa {i}: final flag"))
            return False
        if not spec.spill:
            if s_adj == 8:
                rnd.even.append(("a", (r_cnt[i], r_cnt[i], t2),
                                 f"dfa {i}: count match"))
                return True
            raise KernelError(f"chain stage {s} out of range")
        # Spilled counter: load/add/store through the local store.
        if s_adj == 8:
            rnd.odd.append(("lqd", (t1, _R_CBASE, 16 * i),
                            f"dfa {i}: reload spilled counter"))
            return False
        if s_adj == 9:
            return False  # bubble to cover the counter reload
        if s_adj == 10:
            rnd.even.append(("a", (t1, t1, t2),
                             f"dfa {i}: count match (spilled)"))
            return False
        if s_adj == 11:
            rnd.odd.append(("stqd", (t1, _R_CBASE, 16 * i),
                            f"dfa {i}: spill counter back"))
            return True
        raise KernelError(f"chain stage {s} out of range")
