"""Tile composition: "in series", "in parallel", and mixed (paper §5).

A single DFA tile gives 5.11 Gbps and ~1500 states.  Applications that need
more combine tiles:

* **parallel** — identical tiles (same STT) on disjoint slices of the
  input; throughput multiplies (Figure 6a).  Slices overlap by the longest
  pattern minus one byte so matches crossing a boundary are still seen;
  matches are deduplicated by end position so nothing is counted twice.
* **series** — tiles with *different* STTs (dictionary slices) all scanning
  the same input; dictionary size multiplies, throughput is unchanged
  (Figure 6b).
* **mixed** — parallel groups of series chains: both at once (Figure 7).

:class:`TileComposition` is both a *model* (SPE budget, aggregate Gbps,
dictionary capacity — the numbers of Figures 6/7 and the 40.88 Gbps
8-SPE headline) and a *functional matcher* (scans real input through every
series slice with exact boundary handling, validated against a monolithic
DFA over the whole dictionary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cell.processor import NUM_SPES
from ..dfa.automaton import DFA, DFAError, MatchEvent
from ..dfa.partition import PartitionedDictionary, partition_patterns
from .engine import VectorDFAEngine

__all__ = ["TileComposition", "CompositionError", "CompositionReport",
           "parallel", "series", "mixed"]


class CompositionError(Exception):
    """Raised for infeasible compositions (SPE budget, empty groups)."""


@dataclass
class CompositionReport:
    """Result of scanning a block through a composition."""

    total_matches: int
    matches_per_slice: List[int]
    ways: int
    slices: int

    @property
    def spes_used(self) -> int:
        return self.ways * self.slices


class TileComposition:
    """``ways`` parallel groups × ``len(dfas)`` series tiles per group.

    ``ways=1, len(dfas)=1`` is a single tile; ``ways=k`` multiplies
    throughput; multiple ``dfas`` multiply dictionary size.
    """

    def __init__(self, dfas: Sequence[DFA], ways: int = 1,
                 overlap: Optional[int] = None,
                 max_spes: int = NUM_SPES) -> None:
        if not dfas:
            raise CompositionError("at least one series slice required")
        if ways < 1:
            raise CompositionError("ways must be >= 1")
        widths = {d.alphabet_size for d in dfas}
        if len(widths) != 1:
            raise CompositionError(
                f"series slices disagree on alphabet width: {widths}")
        self.dfas = list(dfas)
        self.ways = ways
        self.max_spes = max_spes
        if self.spes_used > max_spes:
            raise CompositionError(
                f"{self.spes_used} tiles needed but only {max_spes} SPEs "
                f"available (ways={ways} × slices={len(dfas)})")
        self._engines = [VectorDFAEngine(d) for d in self.dfas]
        if overlap is None:
            overlap = self._default_overlap()
        if overlap < 0:
            raise CompositionError("overlap must be non-negative")
        self.overlap = overlap

    @classmethod
    def from_compiled(cls, compiled, ways: int = 1,
                      overlap: Optional[int] = None,
                      max_spes: int = NUM_SPES) -> "TileComposition":
        """Deploy a :class:`~repro.core.compiled.CompiledDictionary`'s
        slices as series tiles (× ``ways`` parallel groups)."""
        return cls(list(compiled.dfas), ways=ways, overlap=overlap,
                   max_spes=max_spes)

    def _default_overlap(self) -> int:
        """Longest pattern length − 1: the minimal overlap that catches
        every boundary-crossing match.  Derived from the deepest final
        state (= length of the longest dictionary entry for Aho–Corasick
        automata); regex slices should pass ``overlap`` explicitly."""
        deepest = 0
        for dfa in self.dfas:
            # Depth of a state = shortest path from start; for a trie-based
            # automaton the deepest final state equals the longest pattern.
            depth = _max_final_depth(dfa)
            deepest = max(deepest, depth)
        return max(0, deepest - 1)

    # -- model ----------------------------------------------------------------

    @property
    def spes_used(self) -> int:
        return self.ways * len(self.dfas)

    @property
    def total_states(self) -> int:
        return sum(d.num_states for d in self.dfas)

    def throughput_gbps(self, per_tile_gbps: float) -> float:
        """Aggregate filtered bitrate: parallel ways multiply; series
        slices scan the same bytes concurrently and do not reduce it."""
        if per_tile_gbps <= 0:
            raise CompositionError("per-tile throughput must be positive")
        return self.ways * per_tile_gbps

    def describe(self, per_tile_gbps: float = 5.11) -> str:
        return (f"{self.ways} parallel group(s) × {len(self.dfas)} series "
                f"tile(s) = {self.spes_used} SPEs; "
                f"{self.total_states} total states; "
                f"{self.throughput_gbps(per_tile_gbps):.2f} Gbps")

    # -- functional matching -----------------------------------------------------

    def scan_block(self, block: bytes) -> CompositionReport:
        """Match ``block`` against the full (union) dictionary.

        The block is sliced ``ways`` ways with ``overlap`` bytes of lead-in
        (paper §5); each slice is scanned by every series engine.  Matches
        are attributed by end position to exactly one slice, so the result
        equals a monolithic scan.
        """
        per_slice = [0] * len(self.dfas)
        n = len(block)
        if n == 0:
            return CompositionReport(0, per_slice, self.ways, len(self.dfas))
        base = -(-n // self.ways)
        for w in range(self.ways):
            lo = w * base
            hi = min(n, lo + base)
            if lo >= n:
                break
            lead = min(self.overlap, lo)
            piece = block[lo - lead:hi]
            for si, engine in enumerate(self._engines):
                per_slice[si] += _count_with_leadin(engine, piece, lead)
        return CompositionReport(sum(per_slice), per_slice, self.ways,
                                 len(self.dfas))

    def scan_streams(self, streams: Sequence[bytes]) -> CompositionReport:
        """Match independent streams (each scanned whole; parallel ways
        model throughput only, no slicing needed)."""
        per_slice = [0] * len(self.dfas)
        for si, engine in enumerate(self._engines):
            res = engine.run_streams(streams)
            per_slice[si] += res.total
        return CompositionReport(sum(per_slice), per_slice, self.ways,
                                 len(self.dfas))


def _count_with_leadin(engine: VectorDFAEngine, piece: bytes,
                       lead: int) -> int:
    """Count matches in ``piece`` whose end position falls after the
    ``lead`` overlap bytes (events ending inside the lead-in belong to the
    previous slice)."""
    if not piece:
        return 0
    total = engine.count_block(piece)
    if lead == 0:
        return total
    # Matches ending within the lead-in are exactly the matches of the
    # lead-in prefix scanned alone.
    prefix = engine.count_block(piece[:lead])
    return total - prefix


def _max_final_depth(dfa: DFA) -> int:
    """Shortest-path depth of the deepest final state (BFS)."""
    from collections import deque
    dist = {dfa.start: 0}
    queue = deque([dfa.start])
    deepest = 0
    while queue:
        s = queue.popleft()
        for t in np.unique(dfa.transitions[s]):
            t = int(t)
            if t not in dist:
                dist[t] = dist[s] + 1
                queue.append(t)
    for f in dfa.finals:
        if f in dist:
            deepest = max(deepest, dist[f])
    return deepest


# -- convenience constructors ------------------------------------------------------


def parallel(dfa: DFA, ways: int, overlap: Optional[int] = None,
             max_spes: int = NUM_SPES) -> TileComposition:
    """Figure 6(a): identical tiles on disjoint input slices."""
    return TileComposition([dfa], ways=ways, overlap=overlap,
                           max_spes=max_spes)


def series(dfas: Sequence[DFA], overlap: Optional[int] = None,
           max_spes: int = NUM_SPES) -> TileComposition:
    """Figure 6(b): distinct dictionary slices over the same input."""
    return TileComposition(dfas, ways=1, overlap=overlap, max_spes=max_spes)


def mixed(dfas: Sequence[DFA], ways: int, overlap: Optional[int] = None,
          max_spes: int = NUM_SPES) -> TileComposition:
    """Figure 7: parallel groups of series chains."""
    return TileComposition(dfas, ways=ways, overlap=overlap,
                           max_spes=max_spes)
