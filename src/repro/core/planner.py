"""Local-store layout planner (paper Figure 3).

A DFA tile must fit everything into the SPE's 256 KB local store: code and
stack (the paper reserves 34 KB), two input buffers (double buffering), and
the state-transition table, which takes whatever is left.  The trade-off is
buffer size vs. dictionary size:

=======  ================  ==========  ===========
Case     input buffers     STT space   max states
=======  ================  ==========  ===========
1        2 × 16 KB         190 KB      1520
2        2 × 8 KB          206 KB      1648
3        2 × 4 KB          214 KB      1712
=======  ================  ==========  ===========

(32-symbol alphabet, 128-byte rows.)  :func:`plan_tile` computes the layout
for any buffer size and alphabet width; :data:`FIGURE3_CASES` are the three
configurations of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cell.local_store import LS_SIZE, LocalStore
from .engine import HOT_BUDGET_BYTES
from .stt import row_stride

__all__ = ["TilePlan", "plan_tile", "FIGURE3_CASES", "PlanError",
           "CODE_STACK_BYTES", "COUNTER_AREA_BYTES", "STATE_AREA_BYTES",
           "ExecutionPlan", "plan_backend", "SERIAL_BYTE_CEILING",
           "CACHE_BUDGET_BYTES"]

#: Local-store bytes the paper reserves for code and stack.
CODE_STACK_BYTES = 34 * 1024

#: Per-stream counter slots (16 streams × 16 bytes), carved out of the
#: code/stack reservation.
COUNTER_AREA_BYTES = 256

#: Per-stream saved-state slots (16 × 16 bytes): DFA state pointers persist
#: here between input blocks so matches spanning block boundaries are kept.
STATE_AREA_BYTES = 256


class PlanError(Exception):
    """Raised when a requested layout cannot fit the local store."""


@dataclass(frozen=True)
class TilePlan:
    """A concrete local-store layout for one DFA tile.

    Addresses are absolute local-store offsets.  The STT base is aligned to
    the row stride so state pointers have zero low bits (the flag trick).
    """

    alphabet_size: int
    buffer_bytes: int
    num_buffers: int
    code_stack_bytes: int
    counters_base: int
    states_base: int
    stt_base: int
    stt_capacity: int
    buffer_bases: Tuple[int, ...]

    @property
    def max_states(self) -> int:
        """Largest DFA this layout can hold."""
        return self.stt_capacity // row_stride(self.alphabet_size)

    @property
    def stride(self) -> int:
        return row_stride(self.alphabet_size)

    def describe(self) -> str:
        """ASCII rendering in the style of Figure 3."""
        lines = [
            f"tile layout ({self.alphabet_size}-symbol alphabet, "
            f"{self.stride}-byte rows)",
            f"  code+stack : {self.code_stack_bytes / 1024:6.1f} KB "
            f"(counters at {self.counters_base:#x})",
            f"  STT        : {self.stt_capacity / 1024:6.1f} KB at "
            f"{self.stt_base:#x} -> max {self.max_states} states",
        ]
        for i, base in enumerate(self.buffer_bases):
            lines.append(f"  buffer {i}   : {self.buffer_bytes / 1024:6.1f}"
                         f" KB at {base:#x}")
        return "\n".join(lines)

    def apply(self, local_store: LocalStore) -> None:
        """Reserve the planned regions on an actual local store."""
        local_store.alloc("code_stack", self.code_stack_bytes)
        local_store.alloc("stt", self.stt_capacity, align=self.stride)
        for i, base in enumerate(self.buffer_bases):
            region = local_store.alloc(f"buffer{i}", self.buffer_bytes)
            if region.start != base:
                raise PlanError(
                    f"buffer {i} landed at {region.start:#x}, plan says "
                    f"{base:#x}")


def plan_tile(buffer_bytes: int = 16 * 1024, num_buffers: int = 2,
              alphabet_size: int = 32,
              code_stack_bytes: int = CODE_STACK_BYTES,
              ls_size: int = LS_SIZE) -> TilePlan:
    """Compute a tile layout: code+stack, then the STT (taking all the
    space the buffers leave), then the input buffers."""
    if buffer_bytes <= 0 or buffer_bytes % 16:
        raise PlanError("buffer size must be a positive multiple of 16")
    if num_buffers < 1:
        raise PlanError("at least one input buffer required")
    if code_stack_bytes < COUNTER_AREA_BYTES + STATE_AREA_BYTES:
        raise PlanError("code/stack region too small for the counter and "
                        "state-save areas")
    stride = row_stride(alphabet_size)
    stt_base = code_stack_bytes
    if stt_base % stride:
        stt_base = (stt_base + stride - 1) & ~(stride - 1)
    buffers_total = num_buffers * buffer_bytes
    stt_capacity = ls_size - stt_base - buffers_total
    stt_capacity -= stt_capacity % stride
    if stt_capacity < stride:
        raise PlanError(
            f"{num_buffers}×{buffer_bytes}-byte buffers leave no room for "
            f"an STT in the {ls_size}-byte local store")
    buffer_bases = tuple(stt_base + stt_capacity + i * buffer_bytes
                         for i in range(num_buffers))
    counters_base = code_stack_bytes - COUNTER_AREA_BYTES
    states_base = counters_base - STATE_AREA_BYTES
    return TilePlan(
        alphabet_size=alphabet_size,
        buffer_bytes=buffer_bytes,
        num_buffers=num_buffers,
        code_stack_bytes=code_stack_bytes,
        counters_base=counters_base,
        states_base=states_base,
        stt_base=stt_base,
        stt_capacity=stt_capacity,
        buffer_bases=buffer_bases,
    )


#: The three local-store configurations of Figure 3.
FIGURE3_CASES: List[TilePlan] = [
    plan_tile(buffer_bytes=16 * 1024),
    plan_tile(buffer_bytes=8 * 1024),
    plan_tile(buffer_bytes=4 * 1024),
]


# -- execution planning ------------------------------------------------------------

#: Below this many bytes the chunked fixpoint's setup cost dominates and
#: the serial reference walk wins (counts-only, single worker).
SERIAL_BYTE_CEILING = 1 << 20

#: Host cache ceiling for the *plain* fused table — the planner's
#: analogue of the tile planner's 256 KB local store.  When the stacked
#: multi-slice STT would exceed this, the planner prefers the hot/cold
#: union scan, whose hot partition is budgeted to stay resident
#: (``engine.HOT_BUDGET_BYTES``) whatever the dictionary's size.
CACHE_BUDGET_BYTES = HOT_BUDGET_BYTES


@dataclass(frozen=True)
class ExecutionPlan:
    """One backend choice plus the reasons that forced it, and whether
    the packed prefilter stage runs in front of the chosen kernel."""

    backend: str
    reason: str
    prefilter: bool = False

    def describe(self) -> str:
        head = f"{self.backend}: {self.reason}"
        if self.prefilter:
            head += " [prefilter stage on]"
        return head


def plan_backend(nbytes: Optional[int] = None, streaming: bool = False,
                 workers: int = 1, with_events: bool = False,
                 num_slices: int = 1, fuse: bool = True,
                 exact: bool = False,
                 fused_bytes: Optional[int] = None,
                 hot_cold: Optional[bool] = None,
                 two_byte: Optional[bool] = None,
                 pair_fit: bool = False,
                 prefilter: Optional[bool] = None,
                 screenable: bool = False,
                 serial_byte_ceiling: int = SERIAL_BYTE_CEILING,
                 cache_budget: int = CACHE_BUDGET_BYTES,
                 ) -> ExecutionPlan:
    """Pick a scan backend from the request's shape.

    The rules mirror the tile planner's spirit — choose the strategy
    whose fixed costs the input can amortise.  Event reporting forces
    the serial reference walk (the only backend that materialises match
    positions); iterator/file input must flow through the staging ring;
    multiple workers call for the sharded pool; large in-memory counts
    take the chunked fixpoint — fused across slices whenever the
    dictionary was partitioned (``num_slices > 1``), because D slices
    sharing one pass beat D sequential passes at any size that
    amortises the fixpoint at all; small inputs stay serial.  ``fuse``
    is the escape hatch (``repro scan --no-fuse``).

    The hot/cold union scan supersedes the stacked fused pass for
    *exact* dictionaries (``exact=True`` — regex tiles have no union
    automaton) when the dictionary was partitioned or the plain fused
    table (``fused_bytes``) would overflow ``cache_budget``: one
    cache-resident table advances every slice with one gather per byte,
    where the stacked STT pays ``num_slices`` gathers over a footprint
    that grows with the partition count.  ``hot_cold`` is the request's
    escape hatch — ``False`` forces the stacked path, ``True`` demands
    the union scan (still gated on ``exact``), ``None`` lets the
    footprint rule decide.

    Within the union-scan choice, the *two-byte stride* variant
    (``hotcold2``) consumes an input pair per gather over a squared-
    alphabet table on the hot states.  It is auto-selected when the
    caller certifies the full-coverage pair table fits the hot budget
    (``pair_fit=True``, see ``CompiledDictionary.pair_table_fits``) —
    full coverage means the pair loop never escapes, so it strictly
    dominates the one-byte path.  ``two_byte`` is the escape hatch:
    ``False`` keeps the one-byte union scan, ``True`` demands the pair
    path even when the table would not reach full coverage (partial
    coverage still wins when the hot set absorbs most transitions) and
    implies the union scan itself, the way ``hot_cold=True`` does —
    unless ``hot_cold=False`` explicitly pins the stacked path.

    **The prefilter rule** — the one place every backend inherits the
    packed screening stage from: when the request is an in-memory block
    whose dictionary is screenable (``screenable=True``, see
    ``CompiledDictionary.prefilter``) and the input is large enough to
    amortise the chunk fixpoint anyway (the same ``serial_byte_ceiling``
    that gates the kernels), the plan carries ``prefilter=True`` and the
    driver mounts a :class:`~repro.core.scan.pipeline.PrefilterStage`
    in front of whichever kernel was chosen.  ``prefilter`` is the
    escape hatch (``repro scan --no-prefilter`` /
    ``ScanRequest(prefilter=False)``); ``True`` demands the stage.
    Stream and file requests never screen — candidate windows cannot be
    carried across staging-ring refills without re-reading the input.
    """
    plan = _choose_backend(
        nbytes=nbytes, streaming=streaming, workers=workers,
        with_events=with_events, num_slices=num_slices, fuse=fuse,
        exact=exact, fused_bytes=fused_bytes, hot_cold=hot_cold,
        two_byte=two_byte, pair_fit=pair_fit,
        serial_byte_ceiling=serial_byte_ceiling,
        cache_budget=cache_budget)
    if plan.backend == "streaming" or prefilter is False:
        return plan
    want = prefilter is True or (
        prefilter is None and screenable and nbytes is not None
        and nbytes > serial_byte_ceiling)
    if not want:
        return plan
    return ExecutionPlan(plan.backend, plan.reason
                         + "; packed prefilter screens clean regions "
                           "first", prefilter=True)


def _choose_backend(nbytes: Optional[int], streaming: bool, workers: int,
                    with_events: bool, num_slices: int, fuse: bool,
                    exact: bool, fused_bytes: Optional[int],
                    hot_cold: Optional[bool], two_byte: Optional[bool],
                    pair_fit: bool, serial_byte_ceiling: int,
                    cache_budget: int) -> ExecutionPlan:
    """The backend decision chain (see :func:`plan_backend`)."""
    if with_events:
        return ExecutionPlan(
            "serial", "match events require the reference walk")
    if streaming:
        return ExecutionPlan(
            "streaming", "iterator/file input flows through the "
            "staging ring")
    if workers > 1:
        return ExecutionPlan(
            "pooled", f"{workers} workers amortise the sharded pool")
    if nbytes is not None and nbytes > serial_byte_ceiling:
        want_hc = hot_cold if hot_cold is not None else (
            two_byte is True
            or (fuse and (num_slices > 1
                          or (fused_bytes or 0) > cache_budget)))
        if want_hc and exact:
            want_pair = two_byte if two_byte is not None else pair_fit
            if want_pair:
                return ExecutionPlan(
                    "hotcold2", f"{num_slices} slice(s) share one "
                    f"union pass over {nbytes} bytes at two bytes per "
                    f"gather; pair table "
                    + ("fits the hot budget" if pair_fit
                       else "forced by request"))
            return ExecutionPlan(
                "hotcold", f"{num_slices} slice(s) share one union "
                f"pass over {nbytes} bytes; hot partition stays "
                f"cache-resident")
        if fuse and num_slices > 1:
            return ExecutionPlan(
                "fused", f"{num_slices} slices share one pass over "
                f"{nbytes} bytes (stacked STT)")
        return ExecutionPlan(
            "chunked", f"{nbytes} bytes amortise the speculative "
            "fixpoint setup")
    return ExecutionPlan(
        "serial", "small single-worker input; reference walk is "
        "cheapest and reports per-pattern counts")
