"""Stream interleaving (paper §4).

The SIMD kernels maintain 16 independent DFAs, one per byte lane of the
128-bit quadword: "the input streams are interleaved such that each quadword
of the input contains at position i-th a byte from the i-th stream".
Interleaving is "reasonably inexpensive" and runs on the PPE.

Two usage modes:

* genuinely distinct streams (e.g. 16 TCP flows) — :func:`interleave_streams`;
* one large block split into 16 consecutive chunks that *become* the
  streams — :func:`block_to_streams` / :func:`interleave_block` (how a
  single packet capture is fed to one tile).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "interleave_streams",
    "deinterleave",
    "block_to_streams",
    "interleave_block",
    "InterleaveError",
]


class InterleaveError(Exception):
    """Raised on ragged or ill-sized stream sets."""


def interleave_streams(streams: Sequence[bytes]) -> bytes:
    """Byte-interleave equal-length streams.

    ``out[t * n + i] == streams[i][t]`` — with ``n == 16`` every quadword of
    the output carries one byte of each stream, which is exactly the layout
    the SIMD kernel consumes.
    """
    if not streams:
        raise InterleaveError("at least one stream required")
    length = len(streams[0])
    for i, s in enumerate(streams):
        if len(s) != length:
            raise InterleaveError(
                f"stream {i} has {len(s)} bytes, expected {length}; "
                f"pad streams to a common length first")
    if length == 0:
        return b""
    matrix = np.empty((len(streams), length), dtype=np.uint8)
    for i, s in enumerate(streams):
        matrix[i] = np.frombuffer(s, dtype=np.uint8)
    return matrix.T.tobytes()


def deinterleave(data: bytes, num_streams: int) -> List[bytes]:
    """Inverse of :func:`interleave_streams`."""
    if num_streams <= 0:
        raise InterleaveError("num_streams must be positive")
    if len(data) % num_streams:
        raise InterleaveError(
            f"{len(data)} bytes do not divide into {num_streams} streams")
    arr = np.frombuffer(data, dtype=np.uint8)
    matrix = arr.reshape(-1, num_streams).T
    return [matrix[i].tobytes() for i in range(num_streams)]


def block_to_streams(block: bytes, num_streams: int = 16,
                     pad_symbol: int = 0) -> List[bytes]:
    """Split one contiguous block into ``num_streams`` consecutive chunks.

    The chunks are padded with ``pad_symbol`` to a common length that is a
    multiple of 16 bytes so the kernel's quadword loop lines up.  Note that
    matches crossing chunk boundaries are lost — callers that care use an
    overlap (see :mod:`repro.core.composition`), exactly as the paper's
    parallel tiles do for their input slices.
    """
    if num_streams <= 0:
        raise InterleaveError("num_streams must be positive")
    if not 0 <= pad_symbol < 256:
        raise InterleaveError("pad symbol must be a byte value")
    per = (len(block) + num_streams - 1) // num_streams
    per = (per + 15) & ~15  # round up to quadword multiple
    per = max(per, 16)
    chunks = []
    for i in range(num_streams):
        chunk = block[i * per:(i + 1) * per]
        if len(chunk) < per:
            chunk = chunk + bytes([pad_symbol]) * (per - len(chunk))
        chunks.append(chunk)
    return chunks


def interleave_block(block: bytes, num_streams: int = 16,
                     pad_symbol: int = 0) -> bytes:
    """Convenience: split a block into streams and interleave them."""
    return interleave_streams(block_to_streams(block, num_streams,
                                               pad_symbol))
