"""One compile path, one artifact: the :class:`CompiledDictionary`.

The paper's pipeline is two-phase: compile a dictionary once into an STT
artifact, then stream input through whichever tile composition the
planner picked (§4–§6).  This module is the compile phase for the whole
repository.  ``compile_dictionary`` folds the patterns, builds the
slice automata (Aho–Corasick for exact strings, the regex pipeline for
regexes), bin-packs them against the tile state budget, and returns a
single value object that every execution path consumes:

* :class:`~repro.core.matcher.CellStringMatcher` plans its Cell
  deployment from it;
* the :mod:`repro.core.backends` registry scans through its
  fold-composed flat tables and weight tables;
* :class:`~repro.parallel.ShardedScanner` /
  :class:`~repro.parallel.SharedSTT` place those same tables in shared
  memory (``ShardedScanner.from_compiled``);
* :class:`~repro.core.composition.TileComposition` and
  :class:`~repro.core.system.CellMatchingSystem` model the modelled-Cell
  deployment (``from_compiled``).

A :class:`CompiledDictionary` is addressed by a **content fingerprint**
(patterns + fold + mode + state budget), and :class:`ArtifactCache`
persists it on disk keyed by fingerprint **and table-format version**,
so service-style repeated scans of the same rule set skip Aho–Corasick
construction and regex determinization entirely — the NIDS "compile
once, ship to the data plane" moment the paper assumes.  ``COUNTERS``
records every automaton build and cache hit/miss, so tests (and
operators) can assert that a warm start did zero compile work.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dfa.alphabet import FoldMap, case_fold_32
from ..dfa.aho_corasick import AhoCorasick
from ..dfa.automaton import DFA, DFAError, MatchEvent
from ..dfa.partition import PartitionedDictionary, partition_patterns
from .compressed import ColdRowStore
from .engine import (HOT_BUDGET_BYTES, FlatScanner, FusedScanner,
                     FusedTable, HotCold2Scanner, HotCold2Table,
                     HotColdFusedScanner, HotColdFusedTable,
                     build_flat_table, build_hot_cold2_table,
                     build_hot_cold_table, build_weight_table,
                     fuse_tables, pair_symbol_table, project_states,
                     visit_order)
from .scan.prefilter import PackedPrefilter

__all__ = [
    "CompiledDictionary",
    "CompileError",
    "ArtifactCache",
    "compile_dictionary",
    "fingerprint_dictionary",
    "hot_budget_bytes",
    "COUNTERS",
    "TABLE_FORMAT_VERSION",
    "COMPAT_TABLE_FORMAT_VERSIONS",
]

#: Version of the compiled-table layout (flag-encoded flat rows, weight
#: side table, fused stacked table, cache serialization).  Bumping it
#: invalidates every cached artifact: the cache key contains it, and
#: loaders reject files whose stored version disagrees.
#:
#: v3: multi-slice artifacts persist the fused stacked table (see
#: :func:`repro.core.engine.fuse_tables`), so a warm service start pays
#: neither automaton builds *nor* table stacking.
#:
#: v4: exact-mode artifacts additionally persist the hot/cold layout of
#: the union automaton — its dense table (when it is not simply slice
#: 0's), the :func:`~repro.core.engine.visit_order` ranking and the
#: union→slice state maps — so a warm start derives a
#: :class:`~repro.core.engine.HotColdFusedTable` at any hot-budget
#: without an Aho–Corasick build or a profiling pass.
#:
#: v5: exact-mode artifacts add the pair-symbol layout for two-byte
#: stride scanning (the composed ``foldpair`` gather table), and the
#: multi-slice union transition matrix is stored in the
#: :class:`~repro.core.compressed.ColdRowStore` shared-default-row
#: encoding instead of densely.  v5 loaders still accept v4 files
#: (the pair layout is then derived on first use), so an upgrade does
#: not cold-start a warm cache.
TABLE_FORMAT_VERSION = 5

#: Format versions :class:`ArtifactCache` can still load.  Order
#: matters: probed newest-first.
COMPAT_TABLE_FORMAT_VERSIONS = (5, 4)

#: Compile-work observability.  ``automaton_builds`` counts every
#: Aho–Corasick construction and regex determinization; the cache
#: counters track artifact reuse.  Tests assert on these to prove a
#: cache hit does zero DFA-construction work.
COUNTERS: Dict[str, int] = {
    "automaton_builds": 0,
    "cache_hits": 0,
    "cache_misses": 0,
    "cache_stores": 0,
    "cache_rejects": 0,
}


class CompileError(Exception):
    """Raised for unusable dictionaries (empty patterns, oversized
    regexes, mismatched fold widths)."""


def hot_budget_bytes() -> int:
    """Sizing policy for the hot partition of a hot/cold table.

    ``REPRO_HOT_BUDGET_KB`` overrides the default
    (:data:`~repro.core.engine.HOT_BUDGET_BYTES`, sized for L2
    residency).  Read per call so services can be retuned without a
    restart."""
    env = os.environ.get("REPRO_HOT_BUDGET_KB")
    if env:
        try:
            return max(1, int(env)) * 1024
        except ValueError:
            pass
    return HOT_BUDGET_BYTES


def _per_state_weights(dfa: DFA) -> np.ndarray:
    """Match multiplicity on *entering* each state (the per-state core
    of :func:`~repro.core.engine.build_weight_table`)."""
    w = np.zeros(dfa.num_states, dtype=np.int64)
    for s, pats in dfa.outputs.items():
        w[s] = len(pats)
    final = np.asarray(dfa.final_mask).astype(bool)
    w[final & (w == 0)] = 1
    return w


Pattern = Union[str, bytes]


def _as_bytes(patterns: Sequence[Pattern]) -> Tuple[bytes, ...]:
    return tuple(p.encode() if isinstance(p, str) else bytes(p)
                 for p in patterns)


def fingerprint_dictionary(patterns: Sequence[Pattern],
                           fold: FoldMap,
                           regex: bool,
                           max_states: int) -> str:
    """Content address of a compiled dictionary.

    Everything that determines the compiled tables goes in: the raw
    patterns (order matters — it drives the bin-packing), the full fold
    table, the compile mode and the state budget.  The table-format
    version deliberately does *not*: it belongs to the cache key, so one
    logical dictionary keeps one fingerprint across format upgrades.
    """
    h = hashlib.sha256()
    h.update(b"repro-dict-v1")
    h.update(bytes([1 if regex else 0]))
    h.update(int(max_states).to_bytes(8, "big"))
    h.update(bytes(fold.table))
    h.update(int(fold.width).to_bytes(2, "big"))
    for p in _as_bytes(patterns):
        h.update(len(p).to_bytes(8, "big"))
        h.update(p)
    return h.hexdigest()


@dataclass
class CompiledDictionary:
    """The compile phase's output: patterns + fold + slice DFAs + the
    flag-encoded execution tables, addressed by a content fingerprint.

    ``groups[i]`` lists the global pattern ids of slice ``i``;
    ``dfas[i]`` is that slice's dense automaton (outputs attached, so
    the same object serves counting and full event reporting).  The
    fold-composed flat table and weight table of each slice are built
    lazily and cached — they are what
    :class:`~repro.core.engine.FlatScanner` and the shared-memory layer
    actually execute.
    """

    patterns: Tuple[bytes, ...]
    fold: FoldMap
    regex: bool
    max_states: int
    groups: Tuple[Tuple[int, ...], ...]
    dfas: Tuple[DFA, ...]
    fingerprint: str
    #: Exact-mode partition (``None`` for regex dictionaries); kept so
    #: deployment planning and tests can inspect the bin-packing.
    partition: Optional[PartitionedDictionary] = None
    _tables: Optional[List[Tuple[np.ndarray, np.ndarray]]] = \
        field(default=None, repr=False)
    _scanners: Optional[List[FlatScanner]] = field(default=None, repr=False)
    _fused: Optional[FusedTable] = field(default=None, repr=False)
    _fused_scanner: Optional[FusedScanner] = field(default=None, repr=False)
    _union: Optional[DFA] = field(default=None, repr=False)
    _union_order: Optional[np.ndarray] = field(default=None, repr=False)
    _union_mass: Optional[np.ndarray] = field(default=None, repr=False)
    _slice_maps: Optional[np.ndarray] = field(default=None, repr=False)
    _hotcold: Optional[HotColdFusedTable] = field(default=None, repr=False)
    _hotcold_budget: Optional[int] = field(default=None, repr=False)
    _hotcold_scanner: Optional[HotColdFusedScanner] = \
        field(default=None, repr=False)
    _hotcold2: Optional[HotCold2Table] = field(default=None, repr=False)
    _hotcold2_budget: Optional[int] = field(default=None, repr=False)
    _hotcold2_scanner: Optional[HotCold2Scanner] = \
        field(default=None, repr=False)
    _pair_foldpair: Optional[np.ndarray] = field(default=None, repr=False)
    _prefilter: Optional[PackedPrefilter] = field(default=None, repr=False)
    _prefilter_built: bool = field(default=False, repr=False)

    # -- shape --------------------------------------------------------------------

    @property
    def num_slices(self) -> int:
        return len(self.dfas)

    @property
    def num_patterns(self) -> int:
        return len(self.patterns)

    @property
    def total_states(self) -> int:
        return sum(d.num_states for d in self.dfas)

    def global_pattern_id(self, slice_index: int, local_id: int) -> int:
        return self.groups[slice_index][local_id]

    def pattern_locations(self) -> Dict[int, Tuple[int, int]]:
        """Invert ``groups``: global pattern id → ``(slice, local_id)``.

        This is the per-DFA slice projection the policy layer's ruleset
        compiler binds against — a rule naming a pattern resolves to the
        slice whose DFA reports it and the local output id it carries
        there."""
        locations: Dict[int, Tuple[int, int]] = {}
        for si, group in enumerate(self.groups):
            for local, gid in enumerate(group):
                locations[gid] = (si, local)
        return locations

    @property
    def regex_slices(self) -> List[Tuple[DFA, List[int]]]:
        """Regex-mode view: ``(dfa, global pattern ids)`` per slice."""
        return [(dfa, list(ids))
                for dfa, ids in zip(self.dfas, self.groups)]

    # -- execution tables ----------------------------------------------------------

    def tables(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-slice ``(flat, weights)`` fold-composed execution tables.

        The flat table gathers on **raw bytes** (the fold is composed
        in, stride ``2 × 256``), and the weight table holds per-state
        match multiplicities addressable by ``pointer >> 1`` — exactly
        what :class:`SharedSTT` places in shared memory and the in-
        process backends scan with.  Built once, cached on the object.
        """
        if self._tables is None:
            fold_table = self.fold.np_table
            tables = []
            for dfa in self.dfas:
                flat, _ = build_flat_table(dfa.transitions, dfa.final_mask,
                                           fold_table=fold_table)
                weights = build_weight_table(dfa, 256)
                tables.append((flat, weights))
            self._tables = tables
        return self._tables

    def scanners(self) -> List[FlatScanner]:
        """Per-slice :class:`FlatScanner` over the fold-composed tables
        (scan raw bytes directly; no folded copy of the input)."""
        if self._scanners is None:
            self._scanners = [
                FlatScanner(flat, 256, dfa.start, dfa.num_states)
                for (flat, _), dfa in zip(self.tables(), self.dfas)]
        return self._scanners

    def fused_table(self) -> FusedTable:
        """All slice tables stacked into one :class:`FusedTable` (see
        :func:`repro.core.engine.fuse_tables`): one contiguous flat
        array with per-DFA cell bases, so a single gather per input
        position advances every slice at once.  Derived lazily from
        :meth:`tables` and cached on the object; multi-slice artifacts
        loaded from an :class:`ArtifactCache` arrive with it prebuilt.
        """
        if self._fused is None:
            self._fused = fuse_tables(
                self.tables(),
                [d.start for d in self.dfas],
                [d.num_states for d in self.dfas], 256)
        return self._fused

    def fused_scanner(self) -> FusedScanner:
        """A :class:`FusedScanner` over :meth:`fused_table`, cached."""
        if self._fused_scanner is None:
            self._fused_scanner = FusedScanner(self.fused_table())
        return self._fused_scanner

    # -- hot/cold union tables ------------------------------------------------------

    @property
    def supports_hot_cold(self) -> bool:
        """Hot/cold scanning needs the union-automaton construction,
        which is defined for exact dictionaries (AC over all patterns);
        regex slices have no shared suffix structure to unify."""
        return not self.regex

    @property
    def fused_table_bytes(self) -> int:
        """Footprint the *plain* fused scan would gather over (flat +
        weight cells, fold-composed stride), computed arithmetically —
        the planner's cache-budget input must not require building the
        table it is deciding against."""
        return self.total_states * (2 * 256 + 256) * 4

    def union_dfa(self) -> DFA:
        """One Aho–Corasick automaton over the *whole* dictionary.

        For a single slice this *is* the slice DFA.  Otherwise it is
        built (or loaded from the artifact) over all folded patterns in
        original order, so its outputs carry global pattern ids and
        ``len(outputs[s])`` is the whole-dictionary multiplicity.
        """
        if self.regex:
            raise CompileError(
                "union automaton requires an exact-mode dictionary")
        if self._union is None:
            if self.num_slices == 1:
                self._union = self.dfas[0]
            else:
                folded = [self.fold.fold_bytes(p) for p in self.patterns]
                ac = AhoCorasick(folded, self.fold.width)
                COUNTERS["automaton_builds"] += 1
                self._union = ac.to_dfa()
        return self._union

    def hot_cold_layout(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(visit_order, slice_maps)`` of the union automaton — the
        two derived arrays the v4 artifact persists.  The order ranks
        union states hottest-first; ``slice_maps[d]`` projects every
        union state onto slice ``d`` (:func:`project_states`), which is
        what keeps per-slice counts exact with one union-table pass."""
        union = self.union_dfa()
        if self._union_order is None:
            self._union_order, self._union_mass = visit_order(
                union.transitions, union.start, self.fold.np_table)
        if self._slice_maps is None:
            if self.num_slices == 1:
                self._slice_maps = np.arange(
                    union.num_states, dtype=np.int64)[None, :]
            else:
                self._slice_maps = np.stack([
                    project_states(union.transitions, union.start,
                                   d.transitions, d.start)
                    for d in self.dfas])
        return self._union_order, self._slice_maps

    def hot_cold_table(self, budget_bytes: Optional[int] = None
                       ) -> HotColdFusedTable:
        """The cache-resident execution table: hot/cold split of the
        union automaton under ``budget_bytes`` (default: the
        :func:`hot_budget_bytes` policy).  Cached per budget."""
        if not self.supports_hot_cold:
            raise CompileError(
                "hot/cold tables require an exact-mode dictionary")
        budget = hot_budget_bytes() if budget_bytes is None \
            else int(budget_bytes)
        if self._hotcold is None or self._hotcold_budget != budget:
            union = self.union_dfa()
            order, maps = self.hot_cold_layout()
            sw = np.stack([_per_state_weights(d)[maps[i]]
                           for i, d in enumerate(self.dfas)])
            sf = np.stack([
                np.asarray(d.final_mask, dtype=np.int64)[maps[i]]
                for i, d in enumerate(self.dfas)])
            self._hotcold = build_hot_cold_table(
                union.transitions, union.final_mask, union.start,
                self.fold.np_table,
                state_weights=_per_state_weights(union),
                budget_bytes=budget, order=order, mass=self._union_mass,
                slice_maps=maps, slice_state_weights=sw,
                slice_state_flags=sf)
            self._hotcold_budget = budget
            self._hotcold_scanner = None
        return self._hotcold

    def hot_cold_scanner(self, budget_bytes: Optional[int] = None
                         ) -> HotColdFusedScanner:
        """A :class:`HotColdFusedScanner` over :meth:`hot_cold_table`,
        cached alongside it."""
        table = self.hot_cold_table(budget_bytes)
        if self._hotcold_scanner is None:
            self._hotcold_scanner = HotColdFusedScanner(table)
        return self._hotcold_scanner

    # -- two-byte stride (pair) tables ----------------------------------------------

    def foldpair_table(self) -> np.ndarray:
        """The composed pair-symbol gather table (v5 artifact row;
        derived on first use for v4 loads and fresh compiles)."""
        if self._pair_foldpair is None:
            self._pair_foldpair = pair_symbol_table(self.fold.np_table,
                                                    self.fold.width)
        return self._pair_foldpair

    def pair_table_fits(self, budget_bytes: Optional[int] = None) -> bool:
        """Whether a *full-coverage* pair table fits the hot budget.

        Computed arithmetically from an upper bound on the union state
        count (the sum of slice states — prefix sharing only shrinks
        it), because the planner must decide before anything is built.
        Full coverage means the two-byte path never escapes to the
        byte-replay slow path, which is when auto-selecting it is a
        pure win."""
        if not self.supports_hot_cold:
            return False
        budget = hot_budget_bytes() if budget_bytes is None \
            else int(budget_bytes)
        bound = self.total_states + 1
        if bound + 1 > np.iinfo(np.int16).max:
            return False
        w2 = self.fold.width * self.fold.width
        return bound * w2 * 2 <= budget

    def hot_cold2_table(self, budget_bytes: Optional[int] = None
                        ) -> HotCold2Table:
        """The two-byte stride execution table: the folded alphabet
        squared over the hottest union states under ``budget_bytes``
        (default: the :func:`hot_budget_bytes` policy), layered on
        :meth:`hot_cold_table`.  Cached per budget."""
        if not self.supports_hot_cold:
            raise CompileError(
                "pair tables require an exact-mode dictionary")
        budget = hot_budget_bytes() if budget_bytes is None \
            else int(budget_bytes)
        if self._hotcold2 is None or self._hotcold2_budget != budget:
            base = self.hot_cold_table(budget)
            union = self.union_dfa()
            self._hotcold2 = build_hot_cold2_table(
                union.transitions, union.final_mask, base,
                budget_bytes=budget, mass=self._union_mass,
                foldpair=self.foldpair_table())
            self._hotcold2_budget = budget
            self._hotcold2_scanner = None
        return self._hotcold2

    def hot_cold2_scanner(self, budget_bytes: Optional[int] = None
                          ) -> HotCold2Scanner:
        """A :class:`HotCold2Scanner` over :meth:`hot_cold2_table`,
        cached alongside it."""
        table = self.hot_cold2_table(budget_bytes)
        if self._hotcold2_scanner is None:
            self._hotcold2_scanner = HotCold2Scanner(table)
        return self._hotcold2_scanner

    # -- screening ------------------------------------------------------------------

    def prefilter(self) -> Optional[PackedPrefilter]:
        """The packed trigram screening stage for this dictionary, or
        ``None`` when it is not screenable: regex mode (match ends are
        not delimited by literal trigrams), a pattern shorter than 3
        bytes, or a folded alphabet whose trigram mask would blow the
        cache ceiling.  Built once and cached."""
        if not self._prefilter_built:
            if not self.regex:
                self._prefilter = PackedPrefilter.build(
                    self.patterns, self.fold.np_table, self.fold.width)
            self._prefilter_built = True
        return self._prefilter

    # -- reference scanning ---------------------------------------------------------

    def match_events(self, raw: bytes) -> List[MatchEvent]:
        """Full event semantics over all slices, global pattern ids,
        sorted by (end, pattern) — the reporting path every backend's
        counts are defined against."""
        folded = self.fold.fold_bytes(raw)
        events: List[MatchEvent] = []
        for si, dfa in enumerate(self.dfas):
            group = self.groups[si]
            for ev in dfa.match_events(folded):
                events.append(MatchEvent(ev.end, group[ev.pattern]))
        events.sort(key=lambda e: (e.end, e.pattern))
        return events

    def __repr__(self) -> str:
        return (f"CompiledDictionary(patterns={self.num_patterns}, "
                f"slices={self.num_slices}, states={self.total_states}, "
                f"{'regex, ' if self.regex else ''}"
                f"fingerprint={self.fingerprint[:12]}...)")


# -- compile paths -----------------------------------------------------------------


def _build_exact(patterns: Tuple[bytes, ...], fold: FoldMap,
                 max_states: int, fingerprint: str) -> CompiledDictionary:
    folded = [fold.fold_bytes(p) for p in patterns]
    for i, p in enumerate(folded):
        if not p:
            raise CompileError(f"pattern {i} is empty")
    try:
        partition = partition_patterns(folded, max_states, fold.width)
    except DFAError as exc:
        raise CompileError(str(exc)) from exc
    COUNTERS["automaton_builds"] += partition.num_slices
    return CompiledDictionary(
        patterns=patterns, fold=fold, regex=False, max_states=max_states,
        groups=partition.groups, dfas=partition.dfas,
        fingerprint=fingerprint, partition=partition)


def _build_regex(patterns: Tuple[bytes, ...], fold: FoldMap,
                 max_states: int, fingerprint: str) -> CompiledDictionary:
    """Greedy bin-packing of regexes into tile-sized DFA slices.

    Each slice is one multi-pattern DFA within the state budget; a
    single regex exceeding the budget alone is rejected — it can never
    fit any tile.
    """
    from ..dfa.regex import compile_patterns

    texts = [p.decode("latin-1") for p in patterns]
    groups: List[List[int]] = []
    dfas: List[DFA] = []
    current_ids: List[int] = []
    current_pats: List[str] = []
    compiled: Optional[DFA] = None
    for i, pattern in enumerate(texts):
        trial = compile_patterns(current_pats + [pattern], fold)
        COUNTERS["automaton_builds"] += 1
        if trial.num_states <= max_states:
            current_ids.append(i)
            current_pats.append(pattern)
            compiled = trial
            continue
        if not current_pats:
            raise CompileError(
                f"regex {pattern!r} alone needs {trial.num_states} "
                f"states, tile budget is {max_states}")
        groups.append(current_ids)
        dfas.append(compiled)
        solo = compile_patterns([pattern], fold)
        COUNTERS["automaton_builds"] += 1
        if solo.num_states > max_states:
            raise CompileError(
                f"regex {pattern!r} alone needs {solo.num_states} "
                f"states, tile budget is {max_states}")
        current_ids = [i]
        current_pats = [pattern]
        compiled = solo
    if current_pats:
        groups.append(current_ids)
        dfas.append(compiled)
    return CompiledDictionary(
        patterns=patterns, fold=fold, regex=True, max_states=max_states,
        groups=tuple(tuple(g) for g in groups), dfas=tuple(dfas),
        fingerprint=fingerprint)


def compile_dictionary(patterns: Sequence[Pattern],
                       fold: Optional[FoldMap] = None,
                       regex: bool = False,
                       max_states: int = 1 << 30,
                       cache: Optional[Union["ArtifactCache", str,
                                             os.PathLike]] = None
                       ) -> CompiledDictionary:
    """The one compile path: patterns → :class:`CompiledDictionary`.

    With ``cache`` (an :class:`ArtifactCache` or a directory path), the
    artifact is looked up by content fingerprint first — a hit rebuilds
    the value object from the stored dense tables with **zero**
    Aho–Corasick / determinization work — and stored after a miss.
    """
    if not patterns:
        raise CompileError("dictionary must contain at least one pattern")
    if fold is None:
        fold = case_fold_32()
    raw = _as_bytes(patterns)
    fingerprint = fingerprint_dictionary(raw, fold, regex, max_states)
    if cache is not None and not isinstance(cache, ArtifactCache):
        cache = ArtifactCache(cache)
    if cache is not None:
        hit = cache.load(fingerprint)
        if hit is not None:
            return hit
    builder = _build_regex if regex else _build_exact
    compiled = builder(raw, fold, max_states, fingerprint)
    if cache is not None:
        cache.store(compiled)
    return compiled


# -- the on-disk artifact cache -----------------------------------------------------


def _default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(
        os.environ.get("XDG_CACHE_HOME",
                       pathlib.Path.home() / ".cache")) / "repro-dfa"


def _union_rows_dense(data) -> np.ndarray:
    """v4 section: the union transition matrix stored densely."""
    return data["union_trans"]


def _union_rows_csr(data) -> np.ndarray:
    """v5 section: union rows in the ColdRowStore shared-default-row
    encoding, densified on load."""
    return ColdRowStore(
        data["union_csr_keys"], data["union_csr_vals"],
        data["union_csr_default"],
        int(data["union_csr_rows"][0])).dense_rows()


#: Versioned union-matrix sections, probed in priority order by
#: :meth:`ArtifactCache._load_file`: each entry is ``(marker key,
#: loader)``.  Supporting a future encoding means appending one row
#: here, not growing another ``elif`` chain; every version in
#: :data:`COMPAT_TABLE_FORMAT_VERSIONS` maps onto exactly one section.
_UNION_ROW_SECTIONS = (
    ("union_trans", _union_rows_dense),      # v4
    ("union_csr_keys", _union_rows_csr),     # v5
)


class ArtifactCache:
    """Compiled dictionaries on disk, keyed by fingerprint + format
    version.

    One ``.npz`` per artifact holds the dense transition tables, final
    masks, outputs, groups, patterns and fold — everything needed to
    rebuild a :class:`CompiledDictionary` without touching the
    dictionary compilers.  Flat/weight execution tables are *not*
    stored: they are derived by fast vectorized numpy passes and
    rebuilding them keeps the format independent of in-memory layout
    tweaks.

    Robustness: loads verify magic, format version and fingerprint;
    corrupt or stale files count as misses (``COUNTERS["cache_rejects"]``)
    and never poison a scan.  Stores are atomic (temp file + rename).
    """

    def __init__(self, directory: Optional[Union[str, os.PathLike]] = None
                 ) -> None:
        self.directory = pathlib.Path(directory).expanduser() \
            if directory is not None else _default_cache_dir()

    def path_for(self, fingerprint: str,
                 version: Optional[int] = None) -> pathlib.Path:
        if version is None:
            version = TABLE_FORMAT_VERSION
        return self.directory / f"{fingerprint}-v{version}.npz"

    # -- store ---------------------------------------------------------------------

    def store(self, compiled: CompiledDictionary) -> pathlib.Path:
        """Persist one artifact; returns its path."""
        arrays: Dict[str, np.ndarray] = {}
        meta = {
            "magic": "repro-compiled-dictionary",
            "version": TABLE_FORMAT_VERSION,
            "fingerprint": compiled.fingerprint,
            "regex": compiled.regex,
            "max_states": compiled.max_states,
            "fold_width": compiled.fold.width,
            "num_slices": compiled.num_slices,
        }
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8).copy()
        arrays["fold_table"] = compiled.fold.np_table.copy()
        blob = b"".join(compiled.patterns)
        arrays["patterns_blob"] = np.frombuffer(
            blob, dtype=np.uint8).copy() if blob else \
            np.zeros(0, dtype=np.uint8)
        arrays["pattern_lens"] = np.asarray(
            [len(p) for p in compiled.patterns], dtype=np.int64)
        arrays["group_lens"] = np.asarray(
            [len(g) for g in compiled.groups], dtype=np.int64)
        arrays["groups_flat"] = np.asarray(
            [i for g in compiled.groups for i in g], dtype=np.int64)
        arrays["starts"] = np.asarray(
            [d.start for d in compiled.dfas], dtype=np.int64)
        for i, dfa in enumerate(compiled.dfas):
            arrays[f"trans_{i}"] = dfa.transitions
            arrays[f"final_{i}"] = dfa.final_mask.astype(np.uint8)
            pairs = [(s, p) for s, pats in sorted(dfa.outputs.items())
                     for p in pats]
            arrays[f"outputs_{i}"] = np.asarray(
                pairs, dtype=np.int64).reshape(len(pairs), 2)
        if compiled.num_slices > 1:
            # Multi-slice artifacts carry the stacked table so a warm
            # start skips the stacking pass too.  (Per-slice flat tables
            # stay derived: the fused one covers the hot path and the
            # slice views read straight out of it.)
            fused = compiled.fused_table()
            arrays["fused_flat"] = fused.flat
            arrays["fused_weights"] = fused.weights
            arrays["fused_cell_base"] = fused.cell_base
        if not compiled.regex:
            # v4: the hot/cold layout of the union automaton.  The
            # HotColdFusedTable itself stays derived (it depends on the
            # runtime hot budget); what is expensive and deterministic —
            # the union build, the visit profiling and the union→slice
            # projections — is what gets persisted.
            order, maps = compiled.hot_cold_layout()
            arrays["hotcold_order"] = np.asarray(order, dtype=np.int64)
            arrays["hotcold_slice_maps"] = np.asarray(maps,
                                                     dtype=np.int64)
            if compiled._union_mass is not None:
                arrays["hotcold_mass"] = np.asarray(
                    compiled._union_mass, dtype=np.float64)
            # v5: the composed pair-symbol gather table, so a warm
            # start builds the two-byte stride path with zero fold
            # composition passes.
            arrays["hotcold2_foldpair"] = compiled.foldpair_table()
            if compiled.num_slices > 1:
                union = compiled.union_dfa()
                # v5: union rows ride the ColdRowStore shared-default
                # encoding (most union rows differ from the start row
                # only at trie edges, so the exception list is small).
                store_csr = ColdRowStore.from_rows(
                    np.asarray(union.transitions),
                    np.asarray(union.transitions)[union.start])
                arrays["union_csr_keys"] = store_csr.keys
                arrays["union_csr_vals"] = store_csr.vals
                arrays["union_csr_default"] = store_csr.default_row
                arrays["union_csr_rows"] = np.asarray(
                    [union.num_states], dtype=np.int64)
                arrays["union_final"] = union.final_mask.astype(np.uint8)
                arrays["union_start"] = np.asarray([union.start],
                                                   dtype=np.int64)
                upairs = [(s, p)
                          for s, pats in sorted(union.outputs.items())
                          for p in pats]
                arrays["union_outputs"] = np.asarray(
                    upairs, dtype=np.int64).reshape(len(upairs), 2)

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(compiled.fingerprint)
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(buf.getvalue())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        COUNTERS["cache_stores"] += 1
        return path

    # -- load ----------------------------------------------------------------------

    def load(self, fingerprint: str) -> Optional[CompiledDictionary]:
        """Rebuild an artifact by fingerprint, or ``None`` on miss.

        Corrupt files, stale format versions and fingerprint mismatches
        are all misses — the caller recompiles and overwrites.
        """
        path = None
        candidates = [self.path_for(fingerprint)]
        candidates += [self.path_for(fingerprint, v)
                       for v in COMPAT_TABLE_FORMAT_VERSIONS]
        for candidate in candidates:
            if candidate.exists():
                path = candidate
                break
        if path is None:
            COUNTERS["cache_misses"] += 1
            return None
        try:
            compiled = self._load_file(path, fingerprint)
        except Exception:
            COUNTERS["cache_rejects"] += 1
            COUNTERS["cache_misses"] += 1
            return None
        COUNTERS["cache_hits"] += 1
        return compiled

    def _load_file(self, path: pathlib.Path,
                   fingerprint: str) -> CompiledDictionary:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            if meta.get("magic") != "repro-compiled-dictionary":
                raise ValueError("bad magic")
            if meta.get("version") not in COMPAT_TABLE_FORMAT_VERSIONS:
                raise ValueError("stale table-format version")
            if meta.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            fold = FoldMap(tuple(int(b) for b in data["fold_table"]),
                           int(meta["fold_width"]))
            blob = bytes(data["patterns_blob"])
            patterns: List[bytes] = []
            pos = 0
            for n in data["pattern_lens"]:
                patterns.append(blob[pos:pos + int(n)])
                pos += int(n)
            groups: List[Tuple[int, ...]] = []
            flat = [int(i) for i in data["groups_flat"]]
            pos = 0
            for n in data["group_lens"]:
                groups.append(tuple(flat[pos:pos + int(n)]))
                pos += int(n)
            starts = data["starts"]
            dfas: List[DFA] = []
            for i in range(int(meta["num_slices"])):
                pairs = data[f"outputs_{i}"]
                outputs: Dict[int, Tuple[int, ...]] = {}
                for s, p in pairs:
                    outputs.setdefault(int(s), ())
                    outputs[int(s)] += (int(p),)
                dfas.append(DFA(
                    data[f"trans_{i}"],
                    finals=np.nonzero(data[f"final_{i}"])[0],
                    start=int(starts[i]),
                    outputs=outputs))
            fused = None
            if "fused_flat" in data.files:
                fused = FusedTable(
                    flat=np.ascontiguousarray(data["fused_flat"],
                                              dtype=np.int32),
                    weights=np.ascontiguousarray(data["fused_weights"],
                                                 dtype=np.int32),
                    cell_base=np.ascontiguousarray(data["fused_cell_base"],
                                                   dtype=np.int64),
                    starts=np.asarray([d.start for d in dfas],
                                      dtype=np.int64),
                    num_states=np.asarray([d.num_states for d in dfas],
                                          dtype=np.int64),
                    symbol_width=256)
                if (fused.num_dfas != len(dfas)
                        or fused.flat.size !=
                        sum(d.num_states for d in dfas) * fused.stride):
                    raise ValueError("fused table shape mismatch")
            union = None
            utrans = None
            for marker, loader in _UNION_ROW_SECTIONS:
                if marker in data.files:
                    utrans = loader(data)
                    break
            if utrans is not None:
                upairs = data["union_outputs"]
                uout: Dict[int, Tuple[int, ...]] = {}
                for s, p in upairs:
                    uout.setdefault(int(s), ())
                    uout[int(s)] += (int(p),)
                union = DFA(utrans,
                            finals=np.nonzero(data["union_final"])[0],
                            start=int(data["union_start"][0]),
                            outputs=uout)
            pair_foldpair = None
            if "hotcold2_foldpair" in data.files:
                pair_foldpair = np.ascontiguousarray(
                    data["hotcold2_foldpair"], dtype=np.uint16)
                if pair_foldpair.shape != (65536,):
                    raise ValueError("pair-symbol table shape mismatch")
            union_order = None
            union_mass = None
            slice_maps = None
            if "hotcold_order" in data.files:
                union_order = np.ascontiguousarray(data["hotcold_order"],
                                                   dtype=np.int64)
                if "hotcold_mass" in data.files:
                    union_mass = np.ascontiguousarray(
                        data["hotcold_mass"], dtype=np.float64)
                slice_maps = np.ascontiguousarray(
                    data["hotcold_slice_maps"], dtype=np.int64)
                union_states = union.num_states if union is not None \
                    else int(data["trans_0"].shape[0])
                if (union_order.shape != (union_states,)
                        or slice_maps.shape !=
                        (int(meta["num_slices"]), union_states)):
                    raise ValueError("hot/cold layout shape mismatch")
        regex = bool(meta["regex"])
        max_states = int(meta["max_states"])
        raw = tuple(patterns)
        partition = None
        if not regex:
            folded = tuple(fold.fold_bytes(p) for p in raw)
            partition = PartitionedDictionary(
                patterns=folded, groups=tuple(groups), dfas=tuple(dfas),
                max_states=max_states)
        return CompiledDictionary(
            patterns=raw, fold=fold, regex=regex, max_states=max_states,
            groups=tuple(groups), dfas=tuple(dfas),
            fingerprint=fingerprint, partition=partition, _fused=fused,
            _union=union, _union_order=union_order,
            _union_mass=union_mass, _slice_maps=slice_maps,
            _pair_foldpair=pair_foldpair)

    def __repr__(self) -> str:
        return f"ArtifactCache({str(self.directory)!r})"
